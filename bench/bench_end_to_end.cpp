// Experiment C4 — end-to-end latency between two endpoints.
//
// The paper promised (for the final version) "measurements of end-to-end
// latency of communication between two endpoints... the overhead introduced
// by using XML-based metadata is negligible in the context of the total
// transmission time."
//
// Measured here: request/response round trips over TCP loopback and over
// the in-process backbone queue, with the message marshaled by NDR, XDR,
// and text-XML — plus the one-time cost of HTTP discovery + registration,
// for comparison against a single message exchange.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench_common.hpp"
#include "cdr/cdr.hpp"
#include "core/context.hpp"
#include "http/http.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "textxml/textxml.hpp"
#include "transport/queue.hpp"
#include "transport/tcp.hpp"
#include "xdr/xdr.hpp"

namespace {

using namespace omf;
using namespace omf::bench;

enum class Codec { kNdr, kXdr, kCdr, kTextXml };

/// Echo server + client ping-pong; each iteration is one full round trip
/// (encode, send, server decode+re-encode, receive, decode).
void tcp_round_trip(benchmark::State& state, Codec codec) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("Payload", payload_fields(), sizeof(Payload));
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));

  transport::TcpListener listener(0);
  std::thread server([&] {
    auto conn = listener.accept();
    pbio::Decoder dec(reg);
    Payload echo{};
    pbio::DecodeArena arena;
    Buffer out;
    while (auto msg = conn.receive()) {
      arena.clear();
      out.clear();
      switch (codec) {
        case Codec::kNdr:
          dec.decode(msg->span(), *f, &echo, arena);
          pbio::encode(*f, &echo, out);
          break;
        case Codec::kXdr:
          xdr::decode(*f, msg->span(), &echo, arena);
          xdr::encode(*f, &echo, out);
          break;
        case Codec::kCdr:
          cdr::decode(*f, msg->span(), &echo, arena);
          cdr::encode(*f, &echo, out);
          break;
        case Codec::kTextXml:
          textxml::decode(*f, msg->span(), &echo, arena);
          textxml::encode(*f, &echo, out);
          break;
      }
      conn.send(out);
    }
  });

  {
    auto conn = transport::tcp_connect(listener.port());
    pbio::Decoder dec(reg);
    Payload got{};
    pbio::DecodeArena arena;
    Buffer out;
    for (auto _ : state) {
      arena.clear();
      out.clear();
      switch (codec) {
        case Codec::kNdr: pbio::encode(*f, &p, out); break;
        case Codec::kXdr: xdr::encode(*f, &p, out); break;
        case Codec::kCdr: cdr::encode(*f, &p, out); break;
        case Codec::kTextXml: textxml::encode(*f, &p, out); break;
      }
      conn.send(out);
      auto reply = conn.receive();
      switch (codec) {
        case Codec::kNdr:
          dec.decode(reply->span(), *f, &got, arena);
          break;
        case Codec::kXdr:
          xdr::decode(*f, reply->span(), &got, arena);
          break;
        case Codec::kCdr:
          cdr::decode(*f, reply->span(), &got, arena);
          break;
        case Codec::kTextXml:
          textxml::decode(*f, reply->span(), &got, arena);
          break;
      }
      benchmark::DoNotOptimize(got.values);
    }
  }  // closes the connection; server loop ends
  server.join();
  state.SetItemsProcessed(state.iterations());
}

void BM_TcpRoundTrip_NDR(benchmark::State& state) {
  tcp_round_trip(state, Codec::kNdr);
}
BENCHMARK(BM_TcpRoundTrip_NDR)->Arg(16)->Arg(256)->Arg(4096);

void BM_TcpRoundTrip_XDR(benchmark::State& state) {
  tcp_round_trip(state, Codec::kXdr);
}
BENCHMARK(BM_TcpRoundTrip_XDR)->Arg(16)->Arg(256)->Arg(4096);

void BM_TcpRoundTrip_CDR(benchmark::State& state) {
  tcp_round_trip(state, Codec::kCdr);
}
BENCHMARK(BM_TcpRoundTrip_CDR)->Arg(16)->Arg(256)->Arg(4096);

void BM_TcpRoundTrip_TextXml(benchmark::State& state) {
  tcp_round_trip(state, Codec::kTextXml);
}
BENCHMARK(BM_TcpRoundTrip_TextXml)->Arg(16)->Arg(256)->Arg(4096);

/// In-process backbone delivery: publish + receive + decode.
void BM_Backbone_NDR(benchmark::State& state) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("Payload", payload_fields(), sizeof(Payload));
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));

  transport::MessageQueue queue;
  pbio::Decoder dec(reg);
  Payload got{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    queue.push(pbio::encode(*f, &p));
    auto msg = queue.pop();
    arena.clear();
    dec.decode(msg->span(), *f, &got, arena);
    benchmark::DoNotOptimize(got.values);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Backbone_NDR)->Arg(16)->Arg(256)->Arg(4096);

/// The one-time cost a subscriber pays when it first joins a stream:
/// HTTP fetch of the metadata document + parse + registration + binding.
/// Compare one of these against thousands of the message costs above.
void BM_Discovery_HttpFetchAndRegister(benchmark::State& state) {
  http::Server server;
  server.put_document("/payload.xml", kPayloadSchema);
  std::string url = server.url_for("/payload.xml");
  for (auto _ : state) {
    core::Context ctx;
    auto format = ctx.discover_format(url, "Payload");
    benchmark::DoNotOptimize(ctx.bind_dynamic(format));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Discovery_HttpFetchAndRegister);

}  // namespace

BENCHMARK_MAIN();
