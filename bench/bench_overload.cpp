// C13: overload protection under a stalled subscriber and a flooding
// publisher (EXPERIMENTS.md).
//
// A hand-rolled harness (google-benchmark's steady-state model does not fit
// a chaos scenario): each workload runs once, wall-clocked, and the numbers
// that matter are the overload counters — how much was shed, what the
// healthy subscriber still received, and where the memory budget peaked
// relative to its configured limit. Emits BENCH_overload.json.
//
//   flood/no-stall           both subscribers read; publish-side throughput
//   flood/stalled-subscriber one subscriber stalled via FaultProxy; the
//                            bounded queues shed, the budget stays under its
//                            limit, and the shed counter is scraped back off
//                            a live /metrics endpoint to prove observability
//   admission/publisher-quota a flooding remote publisher against a token
//                            bucket: burst admitted, the rest rejected
//   journal/append           registry durability cost per fsync'd append
//   journal/recover          replay rate on restart
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fault/faulty.hpp"
#include "http/http.hpp"
#include "obs/metrics.hpp"
#include "overload/budget.hpp"
#include "overload/health.hpp"
#include "overload/journal.hpp"
#include "transport/backbone.hpp"
#include "transport/queue.hpp"
#include "transport/remote_backbone.hpp"
#include "util/buffer.hpp"

namespace {

using namespace std::chrono_literals;
using omf::Buffer;
using omf::bench::BenchJson;
using omf::transport::EventBackbone;
using omf::transport::OverflowPolicy;

constexpr std::size_t kMsgBytes = 16 * 1024;
constexpr int kFlood = 600;  // ~9.6 MB, past what loopback TCP buffers hide
constexpr std::size_t kBudgetLimit = 8u << 20;

double elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

std::uint64_t counter_value(const std::string& name) {
  return omf::obs::MetricsRegistry::instance().counter(name).value();
}

Buffer filled_buffer(std::size_t n, char fill = 'x') {
  Buffer b;
  b.append(std::string(n, fill));
  return b;
}

std::string as_text(const Buffer& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void reset_budget() {
  omf::overload::HealthMonitor::instance().set_draining(false);
  omf::overload::MemoryBudget::instance().reset_for_tests();
}

/// Runs the flood against a server with 8-message shed-oldest queues. With
/// `stall_one`, one of the two subscribers sits behind a FaultProxy that
/// stops relaying server→client after a few frames — the TCP connection
/// stays up, so only backpressure (and then shedding) is observable.
void run_flood(BenchJson& json, bool stall_one) {
  reset_budget();
  auto& budget = omf::overload::MemoryBudget::instance();
  budget.set_limit(kBudgetLimit);

  EventBackbone backbone;
  omf::transport::RemoteBackboneServer server(
      backbone, omf::transport::RemoteBackboneServer::Options{
                    .queue = {.max_messages = 8,
                              .policy = OverflowPolicy::kShedOldest},
                    .subscriber_send_timeout = 2000ms});

  std::optional<omf::fault::FaultProxy> proxy;
  if (stall_one) {
    omf::fault::FaultScript script;
    script.push_back({.kind = omf::fault::FaultKind::kStall,
                      .direction = omf::fault::Direction::kServerToClient,
                      .connection = 0,
                      .frame = 2});
    proxy.emplace(server.port(), script);
  }

  omf::transport::RemoteSubscription first(
      stall_one ? proxy->port() : server.port(), "flood");
  omf::transport::RemoteSubscription healthy(server.port(), "flood");
  for (int i = 0; i < 500 && backbone.subscriber_count("flood") < 2; ++i) {
    std::this_thread::sleep_for(2ms);
  }

  std::atomic<int> healthy_received{0};
  std::atomic<bool> healthy_done{false};
  std::thread healthy_reader([&] {
    for (;;) {
      auto msg = healthy.receive();
      if (!msg || as_text(*msg) == "done") break;
      healthy_received.fetch_add(1);
    }
    healthy_done.store(true);
  });
  // In the no-stall run the first subscriber reads too (a second healthy
  // fan-out leg); in the stalled run its client never gets the frames.
  std::thread first_reader;
  if (!stall_one) {
    first_reader = std::thread([&] {
      while (auto msg = first.receive()) {
        if (as_text(*msg) == "done") break;
      }
    });
  }

  const std::uint64_t shed_before = counter_value("transport.backbone.shed");
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kFlood; ++i) {
    backbone.publish("flood", filled_buffer(kMsgBytes));
    // Pace so the healthy reader can keep up with its bounded queue; the
    // stalled path sheds regardless (total volume, not rate, buries it).
    if (i % 8 == 7) std::this_thread::sleep_for(1ms);
  }
  const double publish_ns = elapsed_ns(start) / kFlood;

  // The marker is republished until the healthy reader confirms arrival —
  // it can legitimately be shed from a still-full queue the first few times.
  Buffer done;
  done.append(std::string("done"));
  for (int i = 0; i < 2000 && !healthy_done.load(); ++i) {
    backbone.publish("flood", done);
    std::this_thread::sleep_for(5ms);
  }

  const std::uint64_t shed = counter_value("transport.backbone.shed") -
                             shed_before;
  const std::size_t peak = budget.peak();

  // Prove the counters are live on /metrics, not just in-process: scrape a
  // real exposition endpoint and look for the shed counter's family.
  double metrics_observable = 0;
  {
    omf::http::Server http;
    std::string body =
        omf::http::get(http.url_for("/metrics"),
                       omf::Deadline::from_timeout(std::chrono::seconds(5)))
            .body;
    if (body.find("transport_backbone_shed") != std::string::npos &&
        body.find("admission_rejected_rate") != std::string::npos) {
      metrics_observable = 1;
    }
  }

  // Stopping the server closes the subscriber connections, so a reader that
  // missed every marker still unblocks on EOF (no cross-thread close()).
  server.stop();
  if (proxy) proxy->stop();
  healthy_reader.join();
  if (first_reader.joinable()) first_reader.join();
  first.close();

  const char* name = stall_one ? "flood/stalled-subscriber" : "flood/no-stall";
  json.add(name, publish_ns,
           static_cast<double>(kMsgBytes) / (publish_ns / 1e9) / 1e6,
           {{"messages", kFlood},
            {"msg_bytes", static_cast<double>(kMsgBytes)},
            {"healthy_received", healthy_received.load()},
            {"shed", static_cast<double>(shed)},
            {"budget_peak_bytes", static_cast<double>(peak)},
            {"budget_limit_bytes", static_cast<double>(kBudgetLimit)},
            {"budget_peak_pct",
             100.0 * static_cast<double>(peak) / kBudgetLimit},
            {"metrics_observable", metrics_observable}});
  std::printf("%-26s %9.0f ns/publish  healthy_received=%d shed=%llu "
              "budget_peak=%zu/%zu (%.1f%%)\n",
              name, publish_ns, healthy_received.load(),
              static_cast<unsigned long long>(shed), peak, kBudgetLimit,
              100.0 * static_cast<double>(peak) / kBudgetLimit);
  reset_budget();
}

void run_admission(BenchJson& json) {
  reset_budget();
  constexpr int kBurst = 32;
  constexpr int kPublishes = 512;
  EventBackbone backbone;
  omf::transport::RemoteBackboneServer server(
      backbone,
      omf::transport::RemoteBackboneServer::Options{
          .admission = {.msgs_per_sec = 0.001,
                        .msgs_burst = kBurst}});  // bucket never refills
  auto local = backbone.subscribe("ch");

  const std::uint64_t rejected_before =
      counter_value("omf.admission.rejected.rate");
  omf::transport::RemotePublisher pub(server.port());
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPublishes; ++i) {
    pub.publish("ch", filled_buffer(256));
  }
  const double publish_ns = elapsed_ns(start) / kPublishes;
  for (int i = 0;
       i < 2000 && counter_value("omf.admission.rejected.rate") -
                       rejected_before < kPublishes - kBurst;
       ++i) {
    std::this_thread::sleep_for(2ms);
  }
  const std::uint64_t rejected =
      counter_value("omf.admission.rejected.rate") - rejected_before;
  int delivered = 0;
  while (local.try_receive()) ++delivered;
  server.stop();

  json.add("admission/publisher-quota", publish_ns,
           256.0 / (publish_ns / 1e9) / 1e6,
           {{"publishes", kPublishes},
            {"msgs_burst", kBurst},
            {"admitted", delivered},
            {"rejected_rate", static_cast<double>(rejected)}});
  std::printf("%-26s %9.0f ns/publish  admitted=%d rejected=%llu\n",
              "admission/publisher-quota", publish_ns, delivered,
              static_cast<unsigned long long>(rejected));
}

void run_journal(BenchJson& json) {
  constexpr int kRecords = 2000;
  constexpr std::size_t kRecordBytes = 256;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "omf_bench_overload_journal";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<std::uint8_t> record(kRecordBytes, 0x5a);
  {
    omf::overload::Journal journal(dir);
    journal.recover([](std::span<const std::uint8_t>) {});
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRecords; ++i) {
      journal.append(record);
    }
    const double append_ns = elapsed_ns(start) / kRecords;
    json.add("journal/append", append_ns,
             static_cast<double>(kRecordBytes) / (append_ns / 1e9) / 1e6,
             {{"records", kRecords},
              {"record_bytes", static_cast<double>(kRecordBytes)},
              {"fsync_each_append", 1}});
    std::printf("%-26s %9.0f ns/append (fsync each)\n", "journal/append",
                append_ns);
  }
  {
    omf::overload::Journal journal(dir);
    std::size_t replayed = 0;
    auto start = std::chrono::steady_clock::now();
    auto stats =
        journal.recover([&](std::span<const std::uint8_t>) { ++replayed; });
    const double recover_ns = elapsed_ns(start) / static_cast<double>(
                                                      replayed ? replayed : 1);
    json.add("journal/recover", recover_ns,
             static_cast<double>(kRecordBytes) / (recover_ns / 1e9) / 1e6,
             {{"recovered_records", static_cast<double>(replayed)},
              {"torn_tail", stats.torn_tail ? 1.0 : 0.0}});
    std::printf("%-26s %9.0f ns/record  recovered=%zu\n", "journal/recover",
                recover_ns, replayed);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace

int main() {
  BenchJson json("overload");
  run_flood(json, /*stall_one=*/false);
  run_flood(json, /*stall_one=*/true);
  run_admission(json);
  run_journal(json);
  std::printf("wrote %s\n", json.write().c_str());
  return 0;
}
