// Concurrent receive-path benchmark: how decode throughput scales across
// threads, and what each layer of the receive-path overhaul buys.
//
// Four ablations, extending the C6 heterogeneous-receive story to the
// multi-core server shape the ROADMAP targets:
//
//   * scale/<T>        — aggregate heterogeneous decode throughput with 1..16
//                        threads, every decoder sharing one process-wide
//                        PlanCache (shared lock per lookup, plans compiled
//                        once per pair for the whole process).
//   * cache/*          — connection churn: each "connection" constructs a
//                        fresh Decoder and decodes a handful of messages.
//                        Per-decoder caches recompile every plan per
//                        connection; the shared cache compiles once, ever.
//   * kernels/*        — type-specialized conversion kernels (selected at
//                        plan build, the DRISC stand-in) vs the interpreted
//                        per-element dispatch, single-threaded.
//   * arena/*          — DecodeArena::reset() pooling vs a fresh arena per
//                        message, single-threaded.
//
// Hand-rolled harness (google-benchmark's threading model does not fit the
// churn scenario); results land in BENCH_concurrent_receive.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/plan_cache.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"

namespace {

using namespace omf;
using namespace omf::bench;

constexpr int kValues = 256;  // doubles per message

struct Setup {
  pbio::FormatRegistry registry;
  pbio::FormatHandle native_format;
  pbio::FormatHandle sender_format;
  Buffer wire;

  explicit Setup(const std::string& sender_profile) {
    core::Xml2Wire native_side(registry, arch::native());
    native_format = native_side.register_text(kPayloadSchema)[0];
    core::Xml2Wire sender_side(registry,
                               arch::profile_by_name(sender_profile));
    sender_format = sender_side.register_text(kPayloadSchema)[0];

    pbio::DynamicRecord rec(native_format);
    rec.set_string("tag", "atmos.ozone.ppb");
    std::vector<double> vals(kValues);
    for (int i = 0; i < kValues; ++i) vals[i] = 0.25 * i;
    rec.set_float_array("values", vals);
    wire = pbio::synthesize_wire(*sender_format, rec);
  }
};

/// Runs `per_thread` on `threads` threads after a common start signal and
/// returns the wall time of the slowest thread in nanoseconds.
double timed_parallel(unsigned threads,
                      const std::function<void(unsigned)>& per_thread) {
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::atomic<unsigned> ready{0};
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      per_thread(t);
    });
  }
  while (ready.load() != threads) {
  }
  auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

struct Result {
  double ns_per_op;
  double mb_per_s;
};

Result rate(double wall_ns, std::size_t total_ops, std::size_t bytes_per_op) {
  double ns_per_op = wall_ns / static_cast<double>(total_ops);
  double mb_per_s = static_cast<double>(total_ops) *
                    static_cast<double>(bytes_per_op) /
                    (wall_ns / 1e9) / 1e6;
  return {ns_per_op, mb_per_s};
}

/// Aggregate steady-state decode throughput, all decoders sharing `cache`.
Result scaling_run(Setup& setup, unsigned threads, std::size_t iters,
                   const std::shared_ptr<pbio::PlanCache>& cache) {
  double wall = timed_parallel(threads, [&](unsigned) {
    pbio::Decoder dec(setup.registry, cache);
    pbio::DynamicRecord out(setup.native_format);
    for (std::size_t i = 0; i < iters; ++i) {
      out.from_wire(dec, setup.wire.span());
    }
  });
  return rate(wall, iters * threads, payload_bytes(kValues));
}

/// Connection churn: every op constructs a fresh Decoder ("connection") and
/// decodes `msgs_per_conn` messages through it. With `shared` null each
/// connection pays its own plan compiles.
Result churn_run(Setup& setup, unsigned threads, std::size_t connections,
                 std::size_t msgs_per_conn,
                 const std::shared_ptr<pbio::PlanCache>& shared) {
  double wall = timed_parallel(threads, [&](unsigned) {
    pbio::DynamicRecord out(setup.native_format);
    for (std::size_t c = 0; c < connections; ++c) {
      pbio::Decoder dec(setup.registry, shared);
      for (std::size_t m = 0; m < msgs_per_conn; ++m) {
        out.from_wire(dec, setup.wire.span());
      }
    }
  });
  return rate(wall, threads * connections * msgs_per_conn,
              payload_bytes(kValues));
}

/// Single-threaded decode with explicit plan options (kernel ablation).
Result options_run(Setup& setup, std::size_t iters, pbio::PlanOptions opts) {
  pbio::Decoder dec(setup.registry, nullptr, opts);
  pbio::DynamicRecord out(setup.native_format);
  out.from_wire(dec, setup.wire.span());  // prime the cache
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    out.from_wire(dec, setup.wire.span());
  }
  auto t1 = std::chrono::steady_clock::now();
  return rate(static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()),
              iters, payload_bytes(kValues));
}

/// Batched dispatch: decode_batch over `batch_n`-message bursts with the
/// full plan options — the top rung of the kernel ablation ladder.
Result batch_run(Setup& setup, std::size_t iters, std::size_t batch_n) {
  pbio::Decoder dec(setup.registry, nullptr, pbio::PlanOptions{});
  std::vector<std::span<const std::uint8_t>> spans(batch_n,
                                                   setup.wire.span());
  std::size_t stride = setup.native_format->struct_size();
  std::vector<std::uint8_t> out(batch_n * stride);
  std::vector<void*> ptrs;
  for (std::size_t i = 0; i < batch_n; ++i) {
    ptrs.push_back(out.data() + i * stride);
  }
  pbio::DecodeArena arena;
  dec.decode_batch(spans.data(), batch_n, *setup.native_format, ptrs.data(),
                   arena);  // prime
  std::size_t rounds = iters / batch_n;
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < rounds; ++i) {
    arena.reset();
    dec.decode_batch(spans.data(), batch_n, *setup.native_format, ptrs.data(),
                     arena);
  }
  auto t1 = std::chrono::steady_clock::now();
  return rate(static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()),
              rounds * batch_n, payload_bytes(kValues));
}

/// Arena ablation: decode the same arena-heavy message with one pooled
/// (reset) arena vs a freshly constructed arena per message.
Result arena_run(Setup& setup, std::size_t iters, bool pooled) {
  pbio::Decoder dec(setup.registry);
  pbio::DynamicRecord out(setup.native_format);
  std::vector<std::uint8_t> struct_mem(setup.native_format->struct_size());
  pbio::DecodeArena arena;
  dec.decode(setup.wire.span(), *setup.native_format, struct_mem.data(),
             arena);  // prime plan cache and arena high-water mark
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    if (pooled) {
      arena.reset();
      dec.decode(setup.wire.span(), *setup.native_format, struct_mem.data(),
                 arena);
    } else {
      pbio::DecodeArena fresh;
      dec.decode(setup.wire.span(), *setup.native_format, struct_mem.data(),
                 fresh);
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  return rate(static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()),
              iters, payload_bytes(kValues));
}

}  // namespace

int main() {
  BenchJson json("concurrent_receive");
  Setup hetero("sparc64");   // byte-swapped sender: real conversion work
  Setup remap("sparc32");    // swap + width/offset remap: worst case

  std::printf("%-28s %12s %10s\n", "workload", "ns/op", "MB/s");
  auto report = [&](const std::string& workload, Result r,
                    std::vector<std::pair<std::string, double>> extra = {}) {
    std::printf("%-28s %12.1f %10.1f\n", workload.c_str(), r.ns_per_op,
                r.mb_per_s);
    json.add(workload, r.ns_per_op, r.mb_per_s, std::move(extra));
  };

  // --- Thread scaling with the shared plan cache --------------------------
  constexpr std::size_t kScaleIters = 20000;
  double base_ops_per_s = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    auto cache = std::make_shared<pbio::PlanCache>();
    Result r = scaling_run(hetero, threads, kScaleIters, cache);
    double ops_per_s = 1e9 / r.ns_per_op;
    if (threads == 1) base_ops_per_s = ops_per_s;
    report("scale/threads=" + std::to_string(threads), r,
           {{"threads", threads},
            {"speedup_vs_1", ops_per_s / base_ops_per_s},
            {"plan_compiles", static_cast<double>(cache->stats().compiles)}});
  }

  // --- Shared vs per-decoder cache under connection churn -----------------
  constexpr unsigned kChurnThreads = 8;
  constexpr std::size_t kConnections = 400;
  constexpr std::size_t kMsgsPerConn = 4;
  {
    auto cache = std::make_shared<pbio::PlanCache>();
    Result shared = churn_run(remap, kChurnThreads, kConnections,
                              kMsgsPerConn, cache);
    report("cache/shared", shared,
           {{"threads", kChurnThreads},
            {"plan_compiles", static_cast<double>(cache->stats().compiles)}});
    Result private_cache =
        churn_run(remap, kChurnThreads, kConnections, kMsgsPerConn, nullptr);
    report("cache/per_decoder", private_cache,
           {{"threads", kChurnThreads},
            {"plan_compiles",
             static_cast<double>(kChurnThreads * kConnections)}});
  }

  // --- Kernel ablation ladder ---------------------------------------------
  // interpreted → specialized (PR 1) → fused-scalar → fused-SIMD → batched,
  // all from this one binary; each rung isolates one receive-path
  // optimization.
  constexpr std::size_t kKernelIters = 100000;
  for (auto& [name, setup] :
       {std::pair<const char*, Setup&>{"sparc64", hetero},
        std::pair<const char*, Setup&>{"sparc32", remap}}) {
    std::string prefix = std::string("kernels/");
    Result interpreted = options_run(
        setup, kKernelIters, pbio::PlanOptions{true, false, false, false});
    Result specialized =
        options_run(setup, kKernelIters, pbio::PlanOptions::per_field());
    Result fused_scalar = options_run(
        setup, kKernelIters, pbio::PlanOptions{true, true, true, false});
    Result fused_simd =
        options_run(setup, kKernelIters, pbio::PlanOptions{});
    Result batched = batch_run(setup, kKernelIters, 32);
    auto vs = [&](Result r) {
      return std::vector<std::pair<std::string, double>>{
          {"speedup_vs_interpreted", interpreted.ns_per_op / r.ns_per_op}};
    };
    report(prefix + "interpreted/" + name, interpreted);
    report(prefix + "specialized/" + name, specialized, vs(specialized));
    report(prefix + "fused_scalar/" + name, fused_scalar, vs(fused_scalar));
    report(prefix + "fused_simd/" + name, fused_simd, vs(fused_simd));
    report(prefix + "batched/" + name, batched, vs(batched));
  }

  // --- Arena pooling vs per-message arenas --------------------------------
  constexpr std::size_t kArenaIters = 100000;
  report("arena/pooled", arena_run(hetero, kArenaIters, true));
  report("arena/fresh", arena_run(hetero, kArenaIters, false));

  std::string path = json.write();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
