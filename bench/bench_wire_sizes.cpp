// Experiment C3 — wire sizes and the text-XML expansion factor.
//
// The paper: ASCII-XML encodings are "larger, often substantially larger,
// than the binary original (an expansion factor of 6-8 is not unusual)".
//
// This is a measurement table, not a timing benchmark: for each workload it
// prints the in-memory size and the bytes each wire format actually
// produces, plus the expansion factor relative to NDR.
#include <cstdio>

#include "bench_common.hpp"
#include "cdr/cdr.hpp"
#include "pbio/encode.hpp"
#include "textxml/textxml.hpp"
#include "xdr/xdr.hpp"

namespace {

using namespace omf;
using namespace omf::bench;
using namespace omf::testing;

struct Row {
  std::string name;
  std::size_t logical;  // application bytes (struct + variable data)
  std::size_t ndr;
  std::size_t xdr;
  std::size_t cdr;
  std::size_t text;
};

Row measure(const std::string& name, const pbio::Format& format,
            const void* data, std::size_t logical) {
  Row row;
  row.name = name;
  row.logical = logical;
  row.ndr = pbio::encode(format, data).size();
  row.xdr = xdr::encoded_size(format, data);
  row.cdr = cdr::encoded_size(format, data);
  Buffer text;
  textxml::encode(format, data, text);
  row.text = text.size();
  return row;
}

void print(const std::vector<Row>& rows) {
  std::printf("%-26s %10s %10s %10s %10s %10s %8s\n", "Workload", "in-mem",
              "NDR", "XDR", "CDR", "text-XML", "xml/NDR");
  for (const Row& r : rows) {
    std::printf("%-26s %10zu %10zu %10zu %10zu %10zu %7.1fx\n",
                r.name.c_str(), r.logical, r.ndr, r.xdr, r.cdr, r.text,
                static_cast<double>(r.text) / static_cast<double>(r.ndr));
  }
}

}  // namespace

int main() {
  pbio::FormatRegistry reg;
  auto fa = reg.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  auto [fb, fc] = register_nested_pair(reg);
  auto fp = reg.register_format("Payload", payload_fields(), sizeof(Payload));

  std::vector<Row> rows;

  AsdOff a;
  fill_asdoff(a, 4);
  rows.push_back(measure("A (flat, strings)", *fa, &a, sizeof(a) + 20));

  unsigned long etas[6];
  AsdOffB b;
  fill_asdoffb(b, etas, 6, 2);
  rows.push_back(
      measure("B (arrays)", *fb, &b, sizeof(b) + 6 * sizeof(long) + 20));

  unsigned long e1[2], e2[3], e3[4];
  ThreeAsdOffs c{};
  fill_asdoffb(c.one, e1, 2, 1);
  c.bart = 3.5;
  fill_asdoffb(c.two, e2, 3, 2);
  c.lisa = -1.25;
  fill_asdoffb(c.three, e3, 4, 3);
  rows.push_back(measure("C/D (nested)", *fc, &c,
                         sizeof(c) + 9 * sizeof(long) + 60));

  for (int n : {16, 256, 4096, 65536}) {
    Payload p;
    std::vector<double> storage;
    fill_payload(p, storage, n);
    rows.push_back(measure("Payload doubles[" + std::to_string(n) + "]", *fp,
                           &p, payload_bytes(n)));
  }

  std::printf("=== Wire sizes per format (bytes) ===\n\n");
  print(rows);
  std::printf(
      "\nShape vs paper: text-XML is several-fold larger than the binary\n"
      "encodings (the paper cites 6-8x for typical records; numeric-array\n"
      "payloads here reach that range), while NDR carries a fixed 16-byte\n"
      "header plus the native bytes. XDR is comparable in size to NDR —\n"
      "its cost is conversion CPU, not bytes (see bench_ndr_vs_xdr).\n");
  return 0;
}
