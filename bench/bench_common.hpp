// Shared benchmark workloads.
//
// Reuses the paper's Appendix A structures (via tests/test_structs.hpp) and
// adds a parameterizable bulk-payload message for size sweeps: a tagged
// block of doubles, the shape of the scientific-data streams the paper's
// introduction motivates (atmospheric volumes, chemical concentrations).
#pragma once

#include <vector>

#include "pbio/format.hpp"
#include "test_structs.hpp"

namespace omf::bench {

/// Bulk payload: `count` doubles plus a routing tag.
struct Payload {
  char* tag;
  int count;
  double* values;
};

inline std::vector<pbio::IOField> payload_fields() {
  return {
      {"tag", "string", sizeof(char*), offsetof(Payload, tag)},
      {"count", "integer", sizeof(int), offsetof(Payload, count)},
      {"values", "float[count]", sizeof(double), offsetof(Payload, values)},
  };
}

inline const char* kPayloadSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Payload">
    <xsd:element name="tag" type="xsd:string" />
    <xsd:element name="count" type="xsd:int" />
    <xsd:element name="values" type="xsd:double" maxOccurs="count" />
  </xsd:complexType>
</xsd:schema>
)";

/// Fills a payload backed by `storage` (resized to `count`).
inline void fill_payload(Payload& p, std::vector<double>& storage,
                         int count) {
  storage.resize(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    storage[static_cast<std::size_t>(i)] = 1.0 / (i + 2);
  }
  p.tag = const_cast<char*>("atmos.ozone.ppb");
  p.count = count;
  p.values = count > 0 ? storage.data() : nullptr;
}

/// Logical bytes of application data in a payload message (for MB/s rates).
inline std::size_t payload_bytes(int count) {
  return sizeof(Payload) + static_cast<std::size_t>(count) * sizeof(double);
}

}  // namespace omf::bench
