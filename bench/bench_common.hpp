// Shared benchmark workloads.
//
// Reuses the paper's Appendix A structures (via tests/test_structs.hpp) and
// adds a parameterizable bulk-payload message for size sweeps: a tagged
// block of doubles, the shape of the scientific-data streams the paper's
// introduction motivates (atmospheric volumes, chemical concentrations).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pbio/format.hpp"
#include "test_structs.hpp"

namespace omf::bench {

/// Machine-readable benchmark trajectory. Benches accumulate one row per
/// workload and write `BENCH_<id>.json` into the working directory, so runs
/// can be diffed across commits (google-benchmark binaries get the same via
/// `--benchmark_format=json`; this covers hand-rolled harnesses).
class BenchJson {
public:
  explicit BenchJson(std::string bench_id) : id_(std::move(bench_id)) {}

  /// Adds one result row. `extra` holds workload-specific numeric fields
  /// (thread counts, cache statistics, ...).
  void add(const std::string& workload, double ns_per_op, double mb_per_s,
           std::vector<std::pair<std::string, double>> extra = {}) {
    rows_.push_back(Row{workload, ns_per_op, mb_per_s, std::move(extra)});
  }

  /// Writes BENCH_<id>.json; returns the file name.
  std::string write() const {
    std::string path = "BENCH_" + id_ + ".json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << id_ << "\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << "    {\"workload\": \"" << r.workload
          << "\", \"ns_per_op\": " << fmt(r.ns_per_op)
          << ", \"mb_per_s\": " << fmt(r.mb_per_s);
      for (const auto& [key, value] : r.extra) {
        out << ", \"" << key << "\": " << fmt(value);
      }
      out << (i + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
    return path;
  }

private:
  struct Row {
    std::string workload;
    double ns_per_op;
    double mb_per_s;
    std::vector<std::pair<std::string, double>> extra;
  };

  static std::string fmt(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::string id_;
  std::vector<Row> rows_;
};

/// Bulk payload: `count` doubles plus a routing tag.
struct Payload {
  char* tag;
  int count;
  double* values;
};

inline std::vector<pbio::IOField> payload_fields() {
  return {
      {"tag", "string", sizeof(char*), offsetof(Payload, tag)},
      {"count", "integer", sizeof(int), offsetof(Payload, count)},
      {"values", "float[count]", sizeof(double), offsetof(Payload, values)},
  };
}

inline const char* kPayloadSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Payload">
    <xsd:element name="tag" type="xsd:string" />
    <xsd:element name="count" type="xsd:int" />
    <xsd:element name="values" type="xsd:double" maxOccurs="count" />
  </xsd:complexType>
</xsd:schema>
)";

/// Fills a payload backed by `storage` (resized to `count`).
inline void fill_payload(Payload& p, std::vector<double>& storage,
                         int count) {
  storage.resize(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    storage[static_cast<std::size_t>(i)] = 1.0 / (i + 2);
  }
  p.tag = const_cast<char*>("atmos.ozone.ppb");
  p.count = count;
  p.values = count > 0 ? storage.data() : nullptr;
}

/// Logical bytes of application data in a payload message (for MB/s rates).
inline std::size_t payload_bytes(int count) {
  return sizeof(Payload) + static_cast<std::size_t>(count) * sizeof(double);
}

}  // namespace omf::bench
