// C14: origin-fetch rate vs cache tier for the replicated metadata plane
// (EXPERIMENTS.md).
//
// A hand-rolled harness like C13 (the interesting axis is which tier served
// each resolve, not steady-state throughput): the same 64 metadata documents
// are resolved through metacache::CachedHttpSource in four client states,
// and each row records the wall cost per resolve plus the origin-fetch rate
// (origin HTTP requests per resolve — the number the caching exists to
// drive to zero). Emits BENCH_metacache.json.
//
//   resolve/cold              empty tiers; every resolve pays the origin
//   resolve/warm-memory       same process again; the LRU answers
//   resolve/warm-disk         new process (fresh instance, same directory);
//                             the disk tier answers and promotes
//   resolve/all-replicas-down new process, origin stopped, clock advanced
//                             past max-age + swr: every resolve serves a
//                             stale copy rather than failing
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "http/http.hpp"
#include "metacache/caching_source.hpp"
#include "obs/metrics.hpp"
#include "overload/budget.hpp"

namespace {

using namespace std::chrono_literals;
using omf::bench::BenchJson;

constexpr int kDocs = 64;
constexpr std::size_t kDocBytes = 2048;

std::string doc_path(int i) {
  return "/meta/doc" + std::to_string(i) + ".xml";
}

std::string doc_body(int i) {
  std::string body = "<format id='" + std::to_string(i) + "'>";
  body.append(kDocBytes, 'x');
  body += "</format>";
  return body;
}

double elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

omf::metacache::CachedHttpSourceOptions source_options(
    const std::filesystem::path& dir) {
  omf::metacache::CachedHttpSourceOptions options;
  options.cache.disk_dir = dir;
  options.fetch_timeout = 2000ms;
  options.breaker = {.failure_threshold = 1, .cooldown = 60000ms};
  return options;
}

/// Resolves every document once; returns {ns_per_op, origin requests}.
std::pair<double, double> run_resolves(omf::metacache::CachedHttpSource& source,
                                       const std::string& dead_host_base,
                                       std::size_t origin_requests_before,
                                       const omf::http::Server* origin) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kDocs; ++i) {
    auto text = source.fetch(dead_host_base + doc_path(i));
    if (!text || text->size() < kDocBytes) {
      std::fprintf(stderr, "bench_metacache: resolve %d failed\n", i);
      std::exit(1);
    }
  }
  const double ns = elapsed_ns(start) / kDocs;
  const double fetches =
      origin == nullptr
          ? 0.0
          : static_cast<double>(origin->request_count() -
                                origin_requests_before) /
                kDocs;
  return {ns, fetches};
}

}  // namespace

int main() {
  omf::overload::MemoryBudget::instance().reset_for_tests();
  BenchJson json("metacache");
  auto dir = std::filesystem::temp_directory_path() / "omf_bench_metacache";
  std::filesystem::remove_all(dir);

  auto origin = std::make_unique<omf::http::Server>();
  for (int i = 0; i < kDocs; ++i) {
    origin->put_document(doc_path(i), doc_body(i));
  }
  origin->set_cache_policy(
      {.enabled = true, .max_age = 60s, .stale_while_revalidate = 3600s});
  const std::string base = "http://127.0.0.1:" + std::to_string(origin->port());
  // The locator's host is routing-irrelevant (replicas own the URL space);
  // using a dead host in the locator proves that.
  const std::string locator_base = "http://origin.invalid:1";
  const double mb = static_cast<double>(kDocBytes) / (1024.0 * 1024.0);
  auto& reg = omf::obs::MetricsRegistry::instance();

  {
    omf::metacache::CachedHttpSource source({base}, source_options(dir));
    auto [cold_ns, cold_rate] =
        run_resolves(source, locator_base, 0, origin.get());
    json.add("resolve/cold", cold_ns, mb / (cold_ns / 1e9),
             {{"origin_fetch_rate", cold_rate},
              {"docs", kDocs},
              {"stale_served", 0}});

    const std::size_t before = origin->request_count();
    auto [warm_ns, warm_rate] =
        run_resolves(source, locator_base, before, origin.get());
    json.add("resolve/warm-memory", warm_ns, mb / (warm_ns / 1e9),
             {{"origin_fetch_rate", warm_rate},
              {"memory_hits", static_cast<double>(source.cache().stats().hits)},
              {"stale_served", 0}});
  }

  {
    // "Process restart": a fresh instance over the same directory.
    omf::metacache::CachedHttpSource source({base}, source_options(dir));
    const std::size_t before = origin->request_count();
    auto [disk_ns, disk_rate] =
        run_resolves(source, locator_base, before, origin.get());
    json.add(
        "resolve/warm-disk", disk_ns, mb / (disk_ns / 1e9),
        {{"origin_fetch_rate", disk_rate},
         {"disk_hits", static_cast<double>(source.cache().stats().disk_hits)},
         {"stale_served", 0}});
  }

  {
    // Restart again with every replica down AND the cached copies aged far
    // past max-age + swr: the degraded path must still answer, and fast.
    origin.reset();
    omf::metacache::CachedHttpSource source({base}, source_options(dir));
    std::atomic<std::int64_t> now{omf::metacache::MetaCache::wall_now_ms()};
    now += 10'000'000;  // +10,000 s: beyond 60 s max-age + 3600 s swr
    source.cache().set_now_fn([&now] { return now.load(); });
    const std::uint64_t stale_before =
        reg.counter("omf.metacache.stale_served").value();
    auto [down_ns, down_rate] =
        run_resolves(source, locator_base, 0, nullptr);
    json.add("resolve/all-replicas-down", down_ns, mb / (down_ns / 1e9),
             {{"origin_fetch_rate", down_rate},
              {"stale_served",
               static_cast<double>(
                   reg.counter("omf.metacache.stale_served").value() -
                   stale_before)},
              {"failovers",
               static_cast<double>(
                   reg.counter("omf.replica.failover").value())}});
  }

  std::filesystem::remove_all(dir);
  std::printf("wrote %s\n", json.write().c_str());
  return 0;
}
