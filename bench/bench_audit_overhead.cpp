// Experiment C9 — what does the static metadata audit cost?
//
// The analyzer runs inside the registration and plan-compilation paths
// (Context/Gateway reject-on-error policy), so its cost must be a small
// fraction of the work it piggybacks on. Four measurements:
//
//   * plan compile            — ConversionPlan::build for the worst-case
//                               heterogeneous pair (sparc32 sender, nested
//                               formats with dynamic arrays)
//   * plan audit              — lossiness lattice + bounds proof over the
//                               same compiled plan
//   * bundle register         — deserialize + validate + register a
//                               serialized format bundle (nested closure)
//   * bundle audit            — decode + full descriptor audit of the same
//                               bundle, i.e. the extra work the reject-on-
//                               error policy adds to that path
//
// The audit is a one-time, per-metadata cost: it never runs per message.
#include <benchmark/benchmark.h>

#include "analysis/audit_format.hpp"
#include "analysis/audit_plan.hpp"
#include "analysis/audit_schema.hpp"
#include "bench_common.hpp"
#include "core/context.hpp"
#include "core/xml2wire.hpp"
#include "pbio/convert.hpp"
#include "pbio/metaserde.hpp"
#include "schema/reader.hpp"
#include "xml/parser.hpp"

namespace {

using namespace omf;
using namespace omf::bench;
using omf::testing::kThreeAsdOffsSchema;

// The Appendix-A nested document with the count element declared *before*
// the array it sizes: a fully clean schema (zero diagnostics), so the
// audit-on numbers measure analysis cost, not warning-logging I/O.
constexpr const char* kCleanNestedSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="ASDOffEventB">
    <xsd:element name="cntrId" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:int" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsignedLong" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta_count" type="xsd:int" />
    <xsd:element name="eta" type="xsd:unsignedLong" minOccurs="0" maxOccurs="eta_count" />
  </xsd:complexType>
  <xsd:complexType name="threeASDOffs">
    <xsd:element name="one" type="ASDOffEventB" />
    <xsd:element name="bart" type="xsd:double" />
    <xsd:element name="two" type="ASDOffEventB" />
    <xsd:element name="lisa" type="xsd:double" />
    <xsd:element name="three" type="ASDOffEventB" />
  </xsd:complexType>
</xsd:schema>
)";

struct Setup {
  pbio::FormatRegistry registry;
  pbio::FormatHandle native_format;
  pbio::FormatHandle sender_format;
  Buffer bundle;

  Setup() {
    core::Xml2Wire native_side(registry, arch::native());
    native_format = native_side.register_text(kThreeAsdOffsSchema).back();
    core::Xml2Wire sender_side(registry, arch::profile_by_name("sparc32"));
    sender_format = sender_side.register_text(kThreeAsdOffsSchema).back();
    bundle = pbio::serialize_format_bundle(*sender_format);
  }
};

void BM_PlanCompile(benchmark::State& state) {
  Setup setup;
  for (auto _ : state) {
    pbio::PlanHandle plan = pbio::ConversionPlan::build(
        setup.sender_format, setup.native_format, pbio::PlanOptions{});
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanCompile);

void BM_PlanAudit(benchmark::State& state) {
  Setup setup;
  pbio::PlanHandle plan = pbio::ConversionPlan::build(
      setup.sender_format, setup.native_format, pbio::PlanOptions{});
  for (auto _ : state) {
    std::vector<analysis::Diagnostic> diags = analysis::audit_plan(*plan);
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_PlanAudit);

void BM_BundleRegister(benchmark::State& state) {
  Setup setup;
  for (auto _ : state) {
    pbio::FormatRegistry fresh;
    pbio::FormatHandle f =
        pbio::deserialize_format_bundle(fresh, setup.bundle.span());
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_BundleRegister);

void BM_BundleAudit(benchmark::State& state) {
  Setup setup;
  for (auto _ : state) {
    std::vector<analysis::Diagnostic> diags =
        analysis::audit_bundle(setup.bundle.span());
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_BundleAudit);

// The schema auditors alone, over a pre-parsed document: the exact work
// the audit policy adds to the discovery path above.
void BM_SchemaAudit(benchmark::State& state) {
  xml::Document doc = xml::parse(kCleanNestedSchema);
  schema::SchemaDocument model = schema::read_schema(doc);
  for (auto _ : state) {
    std::vector<analysis::Diagnostic> diags = analysis::audit_schema(model);
    std::vector<analysis::Diagnostic> dom = analysis::audit_schema_xml(doc);
    benchmark::DoNotOptimize(diags);
    benchmark::DoNotOptimize(dom);
  }
}
BENCHMARK(BM_SchemaAudit);

// The trust-boundary path the policy actually guards: discovery + schema
// compile + layout + registration, with the audit on (production default)
// and off. The delta is the real-world overhead per registered document.
void discover_register_loop(benchmark::State& state, bool audit) {
  for (auto _ : state) {
    core::Context ctx;
    if (!audit) {
      analysis::AuditPolicy off;
      off.enabled = false;
      ctx.set_audit_policy(off);
    }
    ctx.compiled_in().add("mem://three.xml", kCleanNestedSchema);
    std::vector<pbio::FormatHandle> handles =
        ctx.discover_and_register("mem://three.xml");
    benchmark::DoNotOptimize(handles);
  }
}

void BM_DiscoverRegister_AuditOn(benchmark::State& state) {
  discover_register_loop(state, true);
}
BENCHMARK(BM_DiscoverRegister_AuditOn);

void BM_DiscoverRegister_AuditOff(benchmark::State& state) {
  discover_register_loop(state, false);
}
BENCHMARK(BM_DiscoverRegister_AuditOff);

void BM_FormatAudit(benchmark::State& state) {
  Setup setup;
  for (auto _ : state) {
    std::vector<analysis::Diagnostic> diags =
        analysis::audit_format(*setup.sender_format);
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_FormatAudit);

}  // namespace

BENCHMARK_MAIN();
