// Experiment C5 — discovery-cost amortization.
//
// The paper: "metadata discovery and registration only occurs at stream
// subscription time or when metadata changes... the associated costs do not
// recur with each message exchange... amortized across the entire set of
// messages sent using a particular metadata format."
//
// Each benchmark measures discover+register+send-N-messages as one unit;
// items/sec therefore reflects the per-message cost *including* the one-time
// discovery. As N grows, xml2wire converges to the compiled-in rate.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/xml2wire.hpp"
#include "pbio/encode.hpp"

namespace {

using namespace omf;
using namespace omf::bench;

void send_n(const pbio::Format& format, const Payload& p, Buffer& wire,
            std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    wire.clear();
    pbio::encode(format, &p, wire);
    benchmark::DoNotOptimize(wire.data());
  }
}

void BM_CompiledIn_Then_N_Messages(benchmark::State& state) {
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, 64);
  auto fields = payload_fields();
  Buffer wire;
  for (auto _ : state) {
    pbio::FormatRegistry reg;
    auto f = reg.register_format("Payload", fields, sizeof(Payload));
    send_n(*f, p, wire, state.range(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompiledIn_Then_N_Messages)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Xml2Wire_Then_N_Messages(benchmark::State& state) {
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, 64);
  Buffer wire;
  for (auto _ : state) {
    pbio::FormatRegistry reg;
    core::Xml2Wire x2w(reg);
    auto f = x2w.register_text(kPayloadSchema)[0];
    send_n(*f, p, wire, state.range(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Xml2Wire_Then_N_Messages)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
