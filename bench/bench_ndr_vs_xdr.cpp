// Experiment C1 — NDR vs XDR processing cost.
//
// The paper: "when transmitting structured binary data, we show substantial
// (often exceeding 50%) performance gains compared to commercial platforms
// that use XDR-based data representations."
//
// Both codecs run on identical field metadata and identical data, so the
// measured difference is purely the wire-format strategy:
//   NDR:  sender memcpy + pointer fixups; homogeneous receiver does a
//         coalesced copy (or zero work in the in-place mode).
//   XDR:  every scalar is converted to canonical big-endian 4/8-byte units
//         on the sender AND converted back on the receiver, even between
//         identical machines.
//
// Sweep: bulk payloads of 8..32768 doubles plus the paper's structure B.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "cdr/cdr.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "xdr/xdr.hpp"

namespace {

using namespace omf;
using namespace omf::bench;
using namespace omf::testing;

pbio::FormatRegistry& registry() {
  static pbio::FormatRegistry* reg = [] {
    auto* r = new pbio::FormatRegistry();
    r->register_format("Payload", payload_fields(), sizeof(Payload));
    r->register_format("ASDOffEventB", asdoffb_fields(), sizeof(AsdOffB));
    return r;
  }();
  return *reg;
}

// --- Encode -------------------------------------------------------------------

void BM_Encode_NDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer out;
  for (auto _ : state) {
    out.clear();
    pbio::encode(*f, &p, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_Encode_NDR_Payload)->Range(8, 32768);

void BM_Encode_XDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer out;
  for (auto _ : state) {
    out.clear();
    xdr::encode(*f, &p, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_Encode_XDR_Payload)->Range(8, 32768);

// --- Decode (homogeneous receiver) ----------------------------------------------

void BM_Decode_NDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer wire = pbio::encode(*f, &p);

  pbio::Decoder dec(registry());
  Payload out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    arena.clear();
    dec.decode(wire.span(), *f, &out, arena);
    benchmark::DoNotOptimize(out.values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_Decode_NDR_Payload)->Range(8, 32768);

void BM_Decode_NDR_InPlace_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer wire = pbio::encode(*f, &p);

  // Patching mutates the buffer, so each iteration decodes a fresh copy —
  // the memcpy stands in for the receive-buffer fill a real NIC does.
  std::vector<std::uint8_t> scratch(wire.size());
  for (auto _ : state) {
    std::memcpy(scratch.data(), wire.data(), wire.size());
    auto* out = static_cast<Payload*>(
        pbio::Decoder::decode_in_place(*f, scratch.data(), scratch.size()));
    benchmark::DoNotOptimize(out->values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_Decode_NDR_InPlace_Payload)->Range(8, 32768);

void BM_Decode_XDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer wire = xdr::encode_buffer(*f, &p);

  Payload out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    arena.clear();
    xdr::decode(*f, wire.span(), &out, arena);
    benchmark::DoNotOptimize(out.values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_Decode_XDR_Payload)->Range(8, 32768);

// --- Full round trips (sender cost + receiver cost) -------------------------------

void BM_RoundTrip_NDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  pbio::Decoder dec(registry());
  Buffer wire;
  Payload out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    wire.clear();
    arena.clear();
    pbio::encode(*f, &p, wire);
    dec.decode(wire.span(), *f, &out, arena);
    benchmark::DoNotOptimize(out.values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_RoundTrip_NDR_Payload)->Range(8, 32768);

void BM_RoundTrip_XDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer wire;
  Payload out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    wire.clear();
    arena.clear();
    xdr::encode(*f, &p, wire);
    xdr::decode(*f, wire.span(), &out, arena);
    benchmark::DoNotOptimize(out.values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_RoundTrip_XDR_Payload)->Range(8, 32768);

// --- CDR (IIOP-style, reader-makes-right): the third design point ------------------

void BM_Encode_CDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer out;
  for (auto _ : state) {
    out.clear();
    cdr::encode(*f, &p, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_Encode_CDR_Payload)->Range(8, 32768);

void BM_Decode_CDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer wire = cdr::encode_buffer(*f, &p);
  Payload out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    arena.clear();
    cdr::decode(*f, wire.span(), &out, arena);
    benchmark::DoNotOptimize(out.values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_Decode_CDR_Payload)->Range(8, 32768);

void BM_RoundTrip_CDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer wire;
  Payload out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    wire.clear();
    arena.clear();
    cdr::encode(*f, &p, wire);
    cdr::decode(*f, wire.span(), &out, arena);
    benchmark::DoNotOptimize(out.values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_RoundTrip_CDR_Payload)->Range(8, 32768);

// --- The paper's structure B (strings + arrays, small message) ---------------------

void BM_RoundTrip_NDR_StructB(benchmark::State& state) {
  auto f = registry().by_name("ASDOffEventB");
  unsigned long etas[8];
  AsdOffB in;
  fill_asdoffb(in, etas, 8, 1);
  pbio::Decoder dec(registry());
  Buffer wire;
  AsdOffB out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    wire.clear();
    arena.clear();
    pbio::encode(*f, &in, wire);
    dec.decode(wire.span(), *f, &out, arena);
    benchmark::DoNotOptimize(out.eta);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoundTrip_NDR_StructB);

void BM_RoundTrip_XDR_StructB(benchmark::State& state) {
  auto f = registry().by_name("ASDOffEventB");
  unsigned long etas[8];
  AsdOffB in;
  fill_asdoffb(in, etas, 8, 1);
  Buffer wire;
  AsdOffB out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    wire.clear();
    arena.clear();
    xdr::encode(*f, &in, wire);
    xdr::decode(*f, wire.span(), &out, arena);
    benchmark::DoNotOptimize(out.eta);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoundTrip_XDR_StructB);

}  // namespace

BENCHMARK_MAIN();
