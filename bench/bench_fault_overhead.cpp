// C10: happy-path cost of the fault-tolerance machinery.
//
// The receive path gained poll(2)-guarded deadlines and a CRC-32 frame
// trailer; the claim (EXPERIMENTS.md C10) is that an unfaulted echo
// round-trip pays < 3% for the deadline plumbing. Three measurements:
//
//   echo/never-deadline    TcpConnection round-trip, no timeouts configured
//                          (Deadline::never() fast path)
//   echo/armed-deadline    same round-trip with 1 s send/recv timeouts, so
//                          every poll carries a computed timeout
//   crc32                  the checksum alone, for per-byte context
//
// Loopback TCP round-trips are microseconds; the deadline arithmetic is
// nanoseconds. Run both echo variants and compare.
#include <benchmark/benchmark.h>

#include <thread>

#include "transport/tcp.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace {

using namespace omf;
using namespace omf::transport;
using namespace std::chrono_literals;

Buffer payload_of(std::size_t size) {
  Rng rng(0xC10);
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return Buffer(std::move(bytes));
}

/// Echo server + connected client for one benchmark run.
struct EchoPair {
  EchoPair() : listener(0) {
    server = std::thread([this] {
      TcpConnection conn = listener.accept();
      for (;;) {
        auto msg = conn.receive();
        if (!msg) break;
        conn.send(*msg);
      }
    });
    client = tcp_connect(listener.port());
  }
  ~EchoPair() {
    client.close();
    server.join();
  }

  TcpListener listener;
  std::thread server;
  TcpConnection client;
};

void BM_EchoNeverDeadline(benchmark::State& state) {
  EchoPair pair;
  Buffer msg = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pair.client.send(msg);
    auto echo = pair.client.receive();
    benchmark::DoNotOptimize(echo);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_EchoNeverDeadline)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EchoArmedDeadline(benchmark::State& state) {
  EchoPair pair;
  pair.client.set_timeouts({.connect = 1000ms, .send = 1000ms, .recv = 1000ms});
  Buffer msg = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pair.client.send(msg);
    auto echo = pair.client.receive();
    benchmark::DoNotOptimize(echo);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_EchoArmedDeadline)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Crc32(benchmark::State& state) {
  Buffer msg = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(msg.data(), msg.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
