// Experiment C7 (motivation) — server fan-out scalability.
//
// The paper's introduction motivates binary transmission with "scalability
// to many information clients and sources implies the need to reduce
// per-client or per-source processing and transmission requirements" and
// "server-based applications in which single servers must provide
// information to large numbers of clients."
//
// Measured: the publisher-side cost of delivering one event to N
// subscribers. NDR encodes once and fans the same bytes out; a text-XML
// server pays the ASCII conversion in the same loop. The per-client gap is
// what caps a server's client count.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pbio/encode.hpp"
#include "textxml/textxml.hpp"
#include "transport/backbone.hpp"

namespace {

using namespace omf;
using namespace omf::bench;

constexpr int kValues = 128;

void drain_all(std::vector<transport::EventBackbone::Subscription>& subs) {
  for (auto& s : subs) {
    while (s.try_receive()) {
    }
  }
}

void BM_Fanout_NDR(benchmark::State& state) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("Payload", payload_fields(), sizeof(Payload));
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, kValues);

  transport::EventBackbone backbone;
  std::vector<transport::EventBackbone::Subscription> subs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    subs.push_back(backbone.subscribe("bulk"));
  }

  Buffer wire;
  for (auto _ : state) {
    wire.clear();
    pbio::encode(*f, &p, wire);  // encode ONCE
    backbone.publish("bulk", wire);
    drain_all(subs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fanout_NDR)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_Fanout_TextXml(benchmark::State& state) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("Payload", payload_fields(), sizeof(Payload));
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, kValues);

  transport::EventBackbone backbone;
  std::vector<transport::EventBackbone::Subscription> subs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    subs.push_back(backbone.subscribe("bulk"));
  }

  Buffer wire;
  for (auto _ : state) {
    wire.clear();
    textxml::encode(*f, &p, wire);
    backbone.publish("bulk", wire);
    drain_all(subs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fanout_TextXml)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

// The gateway variant: a broker re-encoding per client (e.g. per-client
// format scoping done by re-marshaling) pays the codec N times. This
// bounds how expensive any per-client transformation is allowed to be.
void BM_Fanout_NDR_ReencodePerClient(benchmark::State& state) {
  pbio::FormatRegistry reg;
  auto f = reg.register_format("Payload", payload_fields(), sizeof(Payload));
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, kValues);

  transport::EventBackbone backbone;
  std::vector<transport::EventBackbone::Subscription> subs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    subs.push_back(backbone.subscribe("bulk"));
  }

  Buffer wire;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      wire.clear();
      pbio::encode(*f, &p, wire);  // once per client
    }
    backbone.publish("bulk", wire);
    drain_all(subs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fanout_NDR_ReencodePerClient)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
