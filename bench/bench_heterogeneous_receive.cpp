// Experiment C6 (ablation) — receiver-side conversion cost by sender
// architecture, and what conversion-plan machinery buys.
//
// NDR moves all conversion work to the receiver, and only when needed:
//   * homogeneous sender  -> coalesced block copy (or zero-copy in place)
//   * big-endian sender   -> per-field byte swap
//   * 32-bit sender       -> width changes + offset remapping
//
// Two ablations quantify the "compile once, run per message" design:
//   * coalescing off      -> field-at-a-time ops even when copyable
//   * no plan cache       -> plan rebuilt for every message (what a naive
//                            implementation that re-derives conversion per
//                            message would pay; the stand-in for PBIO's
//                            dynamic-code-generation amortization argument)
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"

namespace {

using namespace omf;
using namespace omf::bench;

constexpr int kValues = 256;  // doubles per message

struct Setup {
  pbio::FormatRegistry registry;
  pbio::FormatHandle native_format;
  pbio::FormatHandle sender_format;
  Buffer wire;

  explicit Setup(const std::string& sender_profile) {
    core::Xml2Wire native_side(registry, arch::native());
    native_format = native_side.register_text(kPayloadSchema)[0];
    core::Xml2Wire sender_side(registry,
                               arch::profile_by_name(sender_profile));
    sender_format = sender_side.register_text(kPayloadSchema)[0];

    pbio::DynamicRecord rec(native_format);
    rec.set_string("tag", "atmos.ozone.ppb");
    std::vector<double> vals(kValues);
    for (int i = 0; i < kValues; ++i) vals[i] = 0.25 * i;
    rec.set_float_array("values", vals);
    wire = pbio::synthesize_wire(*sender_format, rec);
  }
};

void decode_loop(benchmark::State& state, Setup& setup, bool coalesce) {
  pbio::Decoder dec(setup.registry, coalesce);
  pbio::DynamicRecord out(setup.native_format);
  // Prime the plan cache; steady-state receive is what we measure.
  out.from_wire(dec, setup.wire.span());
  for (auto _ : state) {
    out.from_wire(dec, setup.wire.span());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(kValues)));
}

void BM_Receive_From_x86_64(benchmark::State& state) {
  Setup setup("x86_64");  // identical ABI: the homogeneous fast path
  decode_loop(state, setup, true);
}
BENCHMARK(BM_Receive_From_x86_64);

void BM_Receive_From_sparc64(benchmark::State& state) {
  Setup setup("sparc64");  // byte swap only (same widths)
  decode_loop(state, setup, true);
}
BENCHMARK(BM_Receive_From_sparc64);

void BM_Receive_From_i386(benchmark::State& state) {
  Setup setup("i386");  // width + layout remap, no swap
  decode_loop(state, setup, true);
}
BENCHMARK(BM_Receive_From_i386);

void BM_Receive_From_sparc32(benchmark::State& state) {
  Setup setup("sparc32");  // swap AND remap: the worst case
  decode_loop(state, setup, true);
}
BENCHMARK(BM_Receive_From_sparc32);

// --- Ablation 1: block-copy coalescing off ------------------------------------

void BM_Receive_Homogeneous_NoCoalescing(benchmark::State& state) {
  Setup setup("x86_64");
  decode_loop(state, setup, false);
}
BENCHMARK(BM_Receive_Homogeneous_NoCoalescing);

// --- Ablation 2: plan rebuilt per message ---------------------------------------

void BM_Receive_sparc64_PlanRebuiltPerMessage(benchmark::State& state) {
  Setup setup("sparc64");
  pbio::DynamicRecord out(setup.native_format);
  pbio::DecodeArena arena;
  for (auto _ : state) {
    auto plan = pbio::ConversionPlan::build(setup.sender_format,
                                            setup.native_format);
    arena.clear();
    BufferReader in(setup.wire);
    pbio::WireHeader header = pbio::WireHeader::read(in);
    const std::uint8_t* body = in.read_bytes(header.body_length);
    plan->execute(body, header.body_length, body,
                  static_cast<std::uint8_t*>(out.data()), arena);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(kValues)));
}
BENCHMARK(BM_Receive_sparc64_PlanRebuiltPerMessage);

// --- For scale: plan compilation cost itself -------------------------------------

void BM_CompilePlan_Homogeneous(benchmark::State& state) {
  Setup setup("x86_64");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbio::ConversionPlan::build(
        setup.sender_format, setup.native_format));
  }
}
BENCHMARK(BM_CompilePlan_Homogeneous);

void BM_CompilePlan_Heterogeneous(benchmark::State& state) {
  Setup setup("sparc32");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbio::ConversionPlan::build(
        setup.sender_format, setup.native_format));
  }
}
BENCHMARK(BM_CompilePlan_Heterogeneous);

}  // namespace

BENCHMARK_MAIN();
