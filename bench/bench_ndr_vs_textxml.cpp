// Experiment C2 — NDR vs XML-as-wire-format processing cost.
//
// The paper: "when transmitting XML data, our NDR-based approach to data
// transmission demonstrates performance an entire order of magnitude larger
// than existing, text-based XML transmission approaches."
//
// Both sides carry the same logical message; the text path pays
// binary→ASCII printing, a full XML parse, and ASCII→binary conversion.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "textxml/textxml.hpp"

namespace {

using namespace omf;
using namespace omf::bench;
using namespace omf::testing;

pbio::FormatRegistry& registry() {
  static pbio::FormatRegistry* reg = [] {
    auto* r = new pbio::FormatRegistry();
    r->register_format("Payload", payload_fields(), sizeof(Payload));
    r->register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
    return r;
  }();
  return *reg;
}

void BM_Encode_TextXml_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer out;
  for (auto _ : state) {
    out.clear();
    textxml::encode(*f, &p, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_Encode_TextXml_Payload)->Range(8, 8192);

void BM_Decode_TextXml_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer wire;
  textxml::encode(*f, &p, wire);

  Payload out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    arena.clear();
    textxml::decode(*f, wire.span(), &out, arena);
    benchmark::DoNotOptimize(out.values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_Decode_TextXml_Payload)->Range(8, 8192);

void BM_RoundTrip_TextXml_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  Buffer wire;
  Payload out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    wire.clear();
    arena.clear();
    textxml::encode(*f, &p, wire);
    textxml::decode(*f, wire.span(), &out, arena);
    benchmark::DoNotOptimize(out.values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_RoundTrip_TextXml_Payload)->Range(8, 8192);

// NDR counterparts at the same sizes, so ratios read off one report.
void BM_RoundTrip_NDR_Payload(benchmark::State& state) {
  auto f = registry().by_name("Payload");
  Payload p;
  std::vector<double> storage;
  fill_payload(p, storage, static_cast<int>(state.range(0)));
  pbio::Decoder dec(registry());
  Buffer wire;
  Payload out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    wire.clear();
    arena.clear();
    pbio::encode(*f, &p, wire);
    dec.decode(wire.span(), *f, &out, arena);
    benchmark::DoNotOptimize(out.values);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes(p.count)));
}
BENCHMARK(BM_RoundTrip_NDR_Payload)->Range(8, 8192);

// The paper's flat flight-event record: the small-message case.
void BM_RoundTrip_TextXml_StructA(benchmark::State& state) {
  auto f = registry().by_name("ASDOffEvent");
  AsdOff in;
  fill_asdoff(in, 5);
  Buffer wire;
  AsdOff out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    wire.clear();
    arena.clear();
    textxml::encode(*f, &in, wire);
    textxml::decode(*f, wire.span(), &out, arena);
    benchmark::DoNotOptimize(out.cntrId);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoundTrip_TextXml_StructA);

void BM_RoundTrip_NDR_StructA(benchmark::State& state) {
  auto f = registry().by_name("ASDOffEvent");
  AsdOff in;
  fill_asdoff(in, 5);
  pbio::Decoder dec(registry());
  Buffer wire;
  AsdOff out{};
  pbio::DecodeArena arena;
  for (auto _ : state) {
    wire.clear();
    arena.clear();
    pbio::encode(*f, &in, wire);
    dec.decode(wire.span(), *f, &out, arena);
    benchmark::DoNotOptimize(out.cntrId);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoundTrip_NDR_StructA);

}  // namespace

BENCHMARK_MAIN();
