// Batched SIMD decode benchmark (EXPERIMENTS.md C12).
//
// Three questions, each an ablation ladder from one binary:
//
//   * bulk/*    — mismatched-endianness bulk arrays (the scientific-data
//                 shape): what do run fusion, SIMD kernels, and N-message
//                 batch dispatch each buy over the PR 1 specialized
//                 per-field kernels?
//   * fields/*  — a flat struct of 64 individual int32 fields (the
//                 paper-style telemetry record): run fusion collapses 64
//                 kernel dispatches into one 64-element SIMD run, and
//                 batching amortizes the per-message fixed costs on top.
//   * matched/* — matched-layout messages, where the plan is trivial: the
//                 batch path must sit within striking distance of a raw
//                 memcpy of the same bytes.
//
// Every row decodes into raw struct memory (no DynamicRecord) so the
// kernels, not record bookkeeping, dominate. Results land in
// BENCH_batch_decode.json with explicit speedup ratios.
#include <chrono>
#include <memory>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"

namespace {

using namespace omf;
using namespace omf::bench;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Workload {
  pbio::FormatRegistry reg;
  pbio::FormatHandle native;
  pbio::FormatHandle foreign;
  Buffer wire;
  std::size_t body_bytes = 0;
};

/// A `count`-double bulk array, synthesized from a big-endian sender: every
/// element is an 8-byte swap, fusible into a single run. Swept across
/// message sizes: small messages are dominated by per-message fixed costs
/// (header parse, plan lookup, dispatch) that batching amortizes; large
/// ones by the swap kernel itself.
std::unique_ptr<Workload> bulk_doubles(int count) {
  auto wp = std::make_unique<Workload>();
  Workload& w = *wp;
  std::vector<pbio::IOField> fields = {
      {"vals", "float[" + std::to_string(count) + "]", 8, 0}};
  std::size_t bytes = static_cast<std::size_t>(count) * 8;
  std::string name = "Bulk" + std::to_string(count);
  w.native = w.reg.register_format(name, fields, bytes, arch::native());
  w.foreign = w.reg.register_format(name, fields, bytes, arch::sparc64());
  pbio::DynamicRecord r(w.native);
  std::vector<double> vals(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    vals[static_cast<std::size_t>(i)] = 0.25 * i;
  }
  r.set_float_array("vals", vals);
  w.wire = pbio::synthesize_wire(*w.foreign, r);
  w.body_bytes = bytes;
  return wp;
}

std::unique_ptr<Workload> bulk_32() { return bulk_doubles(32); }
std::unique_ptr<Workload> bulk_64() { return bulk_doubles(64); }
std::unique_ptr<Workload> bulk_512() { return bulk_doubles(512); }

/// Width-changing bulk conversion: a sparc32 sender's long[512] (4-byte,
/// big-endian) widens to this machine's 8-byte int64 — swap + sign-extend
/// per element, the shape the AVX2 vpmovsx kernels target.
std::unique_ptr<Workload> bulk_widen() {
  auto wp = std::make_unique<Workload>();
  Workload& w = *wp;
  const arch::Profile& s32 = arch::profile_by_name("sparc32");
  std::vector<pbio::IOField> native_fields = {{"vals", "integer[512]", 8, 0}};
  std::vector<pbio::IOField> foreign_fields = {{"vals", "integer[512]", 4, 0}};
  w.native =
      w.reg.register_format("Widen", native_fields, 4096, arch::native());
  w.foreign = w.reg.register_format("Widen", foreign_fields, 2048, s32);
  pbio::DynamicRecord r(w.native);
  std::vector<std::int64_t> vals(512);
  for (int i = 0; i < 512; ++i) {
    vals[static_cast<std::size_t>(i)] = (i % 2 ? -1 : 1) * i * 65537;
  }
  r.set_int_array("vals", vals);
  w.wire = pbio::synthesize_wire(*w.foreign, r);
  w.body_bytes = 2048;
  return wp;
}

/// 64 individual int32 fields: the per-field plan runs 64 one-element
/// kernel dispatches; the fused plan runs one 64-element kernel.
std::unique_ptr<Workload> flat_fields() {
  auto wp = std::make_unique<Workload>();
  Workload& w = *wp;
  std::vector<pbio::IOField> fields;
  for (int i = 0; i < 64; ++i) {
    fields.push_back(
        {"f" + std::to_string(i), "integer", 4, static_cast<std::size_t>(i) * 4});
  }
  w.native = w.reg.register_format("Flat", fields, 256, arch::native());
  w.foreign = w.reg.register_format("Flat", fields, 256, arch::sparc64());
  pbio::DynamicRecord r(w.native);
  for (int i = 0; i < 64; ++i) {
    r.set_int("f" + std::to_string(i), i * 1000003);
  }
  w.wire = pbio::synthesize_wire(*w.foreign, r);
  w.body_bytes = 256;
  return wp;
}

/// Matched layout: the sender is this architecture, the plan is trivial.
std::unique_ptr<Workload> matched() {
  auto wp = std::make_unique<Workload>();
  Workload& w = *wp;
  std::vector<pbio::IOField> fields = {{"vals", "float[512]", 8, 0}};
  w.native = w.reg.register_format("Same", fields, 4096, arch::native());
  w.foreign = w.native;
  pbio::DynamicRecord r(w.native);
  std::vector<double> vals(512);
  for (int i = 0; i < 512; ++i) vals[static_cast<std::size_t>(i)] = 0.25 * i;
  r.set_float_array("vals", vals);
  w.wire = pbio::encode(*w.native, r.data());
  w.body_bytes = 4096;
  return wp;
}

struct Result {
  double ns_per_msg;
  double mb_per_s;
};

/// Per-message decode with explicit plan options.
Result single_run(Workload& w, pbio::PlanOptions opts, std::size_t iters) {
  pbio::Decoder dec(w.reg, nullptr, opts);
  std::vector<std::uint8_t> out(w.native->struct_size());
  pbio::DecodeArena arena;
  dec.decode(w.wire.span(), *w.native, out.data(), arena);  // prime
  double t0 = now_ns();
  for (std::size_t i = 0; i < iters; ++i) {
    dec.decode(w.wire.span(), *w.native, out.data(), arena);
  }
  double wall = now_ns() - t0;
  return {wall / static_cast<double>(iters),
          static_cast<double>(iters) * static_cast<double>(w.body_bytes) /
              (wall / 1e9) / 1e6};
}

/// decode_batch over `batch_n`-message bursts (full plan options).
Result batch_run(Workload& w, std::size_t batch_n, std::size_t iters) {
  pbio::Decoder dec(w.reg, nullptr, pbio::PlanOptions{});
  std::vector<std::span<const std::uint8_t>> spans(batch_n, w.wire.span());
  std::vector<std::uint8_t> out(batch_n * w.native->struct_size());
  std::vector<void*> ptrs;
  for (std::size_t i = 0; i < batch_n; ++i) {
    ptrs.push_back(out.data() + i * w.native->struct_size());
  }
  pbio::DecodeArena arena;
  dec.decode_batch(spans.data(), batch_n, *w.native, ptrs.data(), arena);
  std::size_t rounds = iters / batch_n;
  double t0 = now_ns();
  for (std::size_t i = 0; i < rounds; ++i) {
    arena.reset();
    dec.decode_batch(spans.data(), batch_n, *w.native, ptrs.data(), arena);
  }
  double wall = now_ns() - t0;
  double msgs = static_cast<double>(rounds * batch_n);
  return {wall / msgs,
          msgs * static_cast<double>(w.body_bytes) / (wall / 1e9) / 1e6};
}

/// The floor: a bare memcpy of the same struct bytes, same batch shape.
Result memcpy_run(Workload& w, std::size_t batch_n, std::size_t iters) {
  std::size_t stride = w.native->struct_size();
  std::vector<std::uint8_t> src(batch_n * stride, 0x5A);
  std::vector<std::uint8_t> dst(batch_n * stride);
  std::size_t rounds = iters / batch_n;
  double t0 = now_ns();
  for (std::size_t i = 0; i < rounds; ++i) {
    for (std::size_t k = 0; k < batch_n; ++k) {
      std::memcpy(dst.data() + k * stride, src.data() + k * stride, stride);
    }
    // Keep the copies observable.
    asm volatile("" : : "r"(dst.data()) : "memory");
  }
  double wall = now_ns() - t0;
  double msgs = static_cast<double>(rounds * batch_n);
  return {wall / msgs,
          msgs * static_cast<double>(w.body_bytes) / (wall / 1e9) / 1e6};
}

}  // namespace

int main() {
  BenchJson json("batch_decode");
  std::printf("%-30s %12s %10s\n", "workload", "ns/msg", "MB/s");
  auto report = [&](const std::string& workload, Result r,
                    std::vector<std::pair<std::string, double>> extra = {}) {
    std::printf("%-30s %12.1f %10.1f\n", workload.c_str(), r.ns_per_msg,
                r.mb_per_s);
    json.add(workload, r.ns_per_msg, r.mb_per_s, std::move(extra));
  };

  constexpr std::size_t kIters = 200000;
  constexpr std::size_t kBatch = 32;

  // interpreted → specialized(per-field, PR 1) → fused-scalar → fused-SIMD
  // → batched, per workload.
  const pbio::PlanOptions kInterpreted{true, false, false, false};
  const pbio::PlanOptions kPerField = pbio::PlanOptions::per_field();
  const pbio::PlanOptions kFusedScalar{true, true, true, false};
  const pbio::PlanOptions kFusedSimd{};

  using Maker = std::unique_ptr<Workload> (*)();
  for (auto& [name, make] :
       {std::pair<const char*, Maker>{"bulk32", bulk_32},
        std::pair<const char*, Maker>{"bulk64", bulk_64},
        std::pair<const char*, Maker>{"bulk512", bulk_512},
        std::pair<const char*, Maker>{"widen", bulk_widen},
        std::pair<const char*, Maker>{"fields", flat_fields}}) {
    auto wp = make();
    Workload& w = *wp;
    std::string prefix = std::string(name) + "/";
    Result interpreted = single_run(w, kInterpreted, kIters / 4);
    Result per_field = single_run(w, kPerField, kIters);
    Result fused_scalar = single_run(w, kFusedScalar, kIters);
    Result fused_simd = single_run(w, kFusedSimd, kIters);
    Result batched = batch_run(w, kBatch, kIters);
    report(prefix + "interpreted", interpreted);
    report(prefix + "per_field", per_field,
           {{"speedup_vs_interpreted",
             interpreted.ns_per_msg / per_field.ns_per_msg}});
    report(prefix + "fused_scalar", fused_scalar,
           {{"speedup_vs_per_field",
             per_field.ns_per_msg / fused_scalar.ns_per_msg}});
    report(prefix + "fused_simd", fused_simd,
           {{"speedup_vs_per_field",
             per_field.ns_per_msg / fused_simd.ns_per_msg}});
    report(prefix + "batched", batched,
           {{"batch_n", static_cast<double>(kBatch)},
            {"speedup_vs_per_field",
             per_field.ns_per_msg / batched.ns_per_msg}});
  }

  {
    auto wp = matched();
    Workload& w = *wp;
    Result copy = memcpy_run(w, kBatch, kIters);
    Result batched = batch_run(w, kBatch, kIters);
    Result single = single_run(w, kFusedSimd, kIters);
    report("matched/raw_memcpy", copy);
    report("matched/batched", batched,
           {{"batch_n", static_cast<double>(kBatch)},
            {"ratio_vs_memcpy", batched.ns_per_msg / copy.ns_per_msg}});
    report("matched/single", single,
           {{"ratio_vs_memcpy", single.ns_per_msg / copy.ns_per_msg}});
  }

  std::string path = json.write();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
