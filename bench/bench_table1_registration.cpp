// Experiment T1 — the paper's Table 1: format registration costs.
//
// Columns reproduced: structure size (bytes), encoded size under both
// registration paths (identical by construction — xml2wire registers the
// same formats PBIO-native registration does), and format registration
// time for (a) PBIO-native compiled-in IOField metadata and (b) xml2wire,
// which additionally parses the XML Schema description.
//
// Paper's shape (on 2000-era hardware): both sub-millisecond, xml2wire
// ~1.9-2x the native cost, both growing roughly linearly with structure
// size. Structures are Appendix A's A (flat), B (arrays), C/D (nesting).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/xml2wire.hpp"
#include "schema/reader.hpp"
#include "pbio/encode.hpp"
#include "test_structs.hpp"

namespace {

using namespace omf;
using namespace omf::testing;

// --- The static columns of Table 1 ------------------------------------------

void print_table1_sizes() {
  pbio::FormatRegistry reg_native, reg_xml;
  auto a_native =
      reg_native.register_format("ASDOffEvent", asdoff_fields(), sizeof(AsdOff));
  auto [b_native, c_native] = register_nested_pair(reg_native);

  core::Xml2Wire x2w(reg_xml);
  auto a_xml = x2w.register_text(kAsdOffSchema)[0];
  auto bc = x2w.register_text(kThreeAsdOffsSchema);

  AsdOff va;
  fill_asdoff(va);
  unsigned long etas[3];
  AsdOffB vb;
  fill_asdoffb(vb, etas, 3);
  unsigned long e1[2], e2[1], e3[3];
  ThreeAsdOffs vc{};
  fill_asdoffb(vc.one, e1, 2, 1);
  vc.bart = 1.0;
  fill_asdoffb(vc.two, e2, 1, 2);
  vc.lisa = 2.0;
  fill_asdoffb(vc.three, e3, 3, 3);

  struct Row {
    const char* name;
    std::size_t struct_size;
    std::size_t encoded_pbio;
    std::size_t encoded_xml2wire;
    bool ids_match;
  } rows[] = {
      {"A (flat, strings)", sizeof(AsdOff),
       pbio::encode(*a_native, &va).size(), pbio::encode(*a_xml, &va).size(),
       a_native->id() == a_xml->id()},
      {"B (static+dynamic arrays)", sizeof(AsdOffB),
       pbio::encode(*b_native, &vb).size(), pbio::encode(*bc[0], &vb).size(),
       b_native->id() == bc[0]->id()},
      {"C/D (nested composition)", sizeof(ThreeAsdOffs),
       pbio::encode(*c_native, &vc).size(), pbio::encode(*bc[1], &vc).size(),
       c_native->id() == bc[1]->id()},
  };

  std::printf("\n=== Table 1: structure and encoded sizes (registration times "
              "below) ===\n");
  std::printf("%-28s %14s %20s %20s %10s\n", "Structure", "Struct (bytes)",
              "Encoded, PBIO", "Encoded, xml2wire", "ids match");
  for (const Row& r : rows) {
    std::printf("%-28s %14zu %20zu %20zu %10s\n", r.name, r.struct_size,
                r.encoded_pbio, r.encoded_xml2wire,
                r.ids_match ? "yes" : "NO");
  }
  std::printf("(paper, 32-bit testbed: 32/52/180-byte structs encode to "
              "72/104/268 bytes;\n identical between the two registration "
              "paths, as here)\n\n");
}

// --- Registration timing ------------------------------------------------------

void BM_RegisterPbioNative_A(benchmark::State& state) {
  auto fields = asdoff_fields();
  for (auto _ : state) {
    pbio::FormatRegistry reg;
    benchmark::DoNotOptimize(
        reg.register_format("ASDOffEvent", fields, sizeof(AsdOff)));
  }
}
BENCHMARK(BM_RegisterPbioNative_A);

void BM_RegisterXml2Wire_A(benchmark::State& state) {
  for (auto _ : state) {
    pbio::FormatRegistry reg;
    core::Xml2Wire x2w(reg);
    benchmark::DoNotOptimize(x2w.register_text(kAsdOffSchema));
  }
}
BENCHMARK(BM_RegisterXml2Wire_A);

void BM_RegisterPbioNative_B(benchmark::State& state) {
  auto fields = asdoffb_fields();
  for (auto _ : state) {
    pbio::FormatRegistry reg;
    benchmark::DoNotOptimize(
        reg.register_format("ASDOffEventB", fields, sizeof(AsdOffB)));
  }
}
BENCHMARK(BM_RegisterPbioNative_B);

void BM_RegisterXml2Wire_B(benchmark::State& state) {
  for (auto _ : state) {
    pbio::FormatRegistry reg;
    core::Xml2Wire x2w(reg);
    benchmark::DoNotOptimize(x2w.register_text(kAsdOffBSchema));
  }
}
BENCHMARK(BM_RegisterXml2Wire_B);

void BM_RegisterPbioNative_CD(benchmark::State& state) {
  auto b_fields = asdoffb_fields();
  auto c_fields = three_asdoffs_fields();
  for (auto _ : state) {
    pbio::FormatRegistry reg;
    reg.register_format("ASDOffEventB", b_fields, sizeof(AsdOffB));
    benchmark::DoNotOptimize(
        reg.register_format("threeASDOffs", c_fields, sizeof(ThreeAsdOffs)));
  }
}
BENCHMARK(BM_RegisterPbioNative_CD);

void BM_RegisterXml2Wire_CD(benchmark::State& state) {
  for (auto _ : state) {
    pbio::FormatRegistry reg;
    core::Xml2Wire x2w(reg);
    benchmark::DoNotOptimize(x2w.register_text(kThreeAsdOffsSchema));
  }
}
BENCHMARK(BM_RegisterXml2Wire_CD);

// The two components of xml2wire registration, separated: parsing the XML
// document vs converting + registering the PBIO metadata.
void BM_Xml2Wire_ParseOnly_CD(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(schema::read_schema_text(kThreeAsdOffsSchema));
  }
}
BENCHMARK(BM_Xml2Wire_ParseOnly_CD);

void BM_Xml2Wire_RegisterOnly_CD(benchmark::State& state) {
  schema::SchemaDocument doc = schema::read_schema_text(kThreeAsdOffsSchema);
  for (auto _ : state) {
    pbio::FormatRegistry reg;
    core::Xml2Wire x2w(reg);
    benchmark::DoNotOptimize(x2w.register_schema(doc));
  }
}
BENCHMARK(BM_Xml2Wire_RegisterOnly_CD);

}  // namespace

int main(int argc, char** argv) {
  print_table1_sizes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
