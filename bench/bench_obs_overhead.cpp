// C11: what always-on observability costs the hot path.
//
// The obs layer's contract is near-zero hot-path cost: per-message counters
// and histogram buckets batch in thread-local storage (folding into the
// shared registry every 64 messages), and span timing is *sampled* so
// steady-state decode almost never reads the clock.
// This bench prices each piece against the C8 decode workload (256-double
// sparc64 payload through the specialized-kernel path, ~200 ns/msg):
//
//   decode/default-sampling   the shipped configuration (spans 1-in-64)
//   decode/trace-every        worst case: a span + two clock reads per msg
//   decode/tracer-disabled    counters only (sample() short-circuits)
//   primitive/*               counter add, histogram record, sample() skip,
//                             full ScopedSpan, attribution charge, flight-
//                             recorder append — the unit costs
//   exposition/render         /metrics render (scrape cost, off hot path)
//
// Run the same binary from a -DOMF_NO_METRICS=ON build to get the true
// zero baseline: every primitive row collapses to ~0 and the decode rows
// price the compiled-out configuration. The acceptance gate (≤ 3 % decode
// overhead, EXPERIMENTS.md C11) is the default-sampling row of the normal
// build vs the decode row of the OMF_NO_METRICS build.
//
// Results land in BENCH_obs_overhead.json with a `metrics_enabled` field
// so the two configurations diff cleanly.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/xml2wire.hpp"
#include "obs/attribution.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pbio/decode.hpp"
#include "pbio/record.hpp"
#include "pbio/synth.hpp"

namespace {

using namespace omf;
using namespace omf::bench;

constexpr int kValues = 256;  // the C8 message: 256 doubles + tag

#ifdef OMF_NO_METRICS
constexpr double kMetricsEnabled = 0;
#else
constexpr double kMetricsEnabled = 1;
#endif

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimum-of-5 timing of `op` run `iters` times; returns ns per op. The
/// minimum over several reps filters scheduler noise, which on a shared
/// machine swamps the few-ns effects this bench prices.
template <typename F>
double time_op(std::size_t iters, F&& op) {
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    double t0 = now_ns();
    for (std::size_t i = 0; i < iters; ++i) op();
    double per = (now_ns() - t0) / static_cast<double>(iters);
    if (per < best) best = per;
  }
  return best;
}

struct Setup {
  pbio::FormatRegistry registry;
  pbio::FormatHandle native_format;
  pbio::FormatHandle sender_format;
  Buffer wire;

  Setup() {
    core::Xml2Wire native_side(registry, arch::native());
    native_format = native_side.register_text(kPayloadSchema)[0];
    core::Xml2Wire sender_side(registry, arch::profile_by_name("sparc64"));
    sender_format = sender_side.register_text(kPayloadSchema)[0];

    pbio::DynamicRecord rec(native_format);
    rec.set_string("tag", "atmos.ozone.ppb");
    std::vector<double> vals(kValues);
    for (int i = 0; i < kValues; ++i) vals[i] = 0.25 * i;
    rec.set_float_array("values", vals);
    wire = pbio::synthesize_wire(*sender_format, rec);
  }
};

double decode_run(Setup& setup, std::size_t iters) {
  pbio::Decoder dec(setup.registry);
  pbio::DynamicRecord out(setup.native_format);
  out.from_wire(dec, setup.wire.span());  // warm: plan compile + arena
  return time_op(iters, [&] { out.from_wire(dec, setup.wire.span()); });
}

}  // namespace

int main() {
  BenchJson json("obs_overhead");
  Setup setup;
  auto& tracer = obs::Tracer::instance();
  const std::size_t kDecodeIters = 300000;
  const double bytes = static_cast<double>(payload_bytes(kValues));
  auto mbps = [&](double ns) { return bytes / (ns / 1e9) / 1e6; };

  tracer.set_sample_every(64);
  double dflt = decode_run(setup, kDecodeIters);
  json.add("decode/default-sampling", dflt, mbps(dflt),
           {{"metrics_enabled", kMetricsEnabled}, {"sample_every", 64}});
  std::printf("decode/default-sampling   %8.1f ns/msg\n", dflt);

  tracer.set_sample_every(1);
  double every = decode_run(setup, kDecodeIters);
  json.add("decode/trace-every", every, mbps(every),
           {{"metrics_enabled", kMetricsEnabled}, {"sample_every", 1}});
  std::printf("decode/trace-every        %8.1f ns/msg\n", every);

  tracer.set_sample_every(64);
  tracer.set_enabled(false);
  double disabled = decode_run(setup, kDecodeIters);
  json.add("decode/tracer-disabled", disabled, mbps(disabled),
           {{"metrics_enabled", kMetricsEnabled}});
  std::printf("decode/tracer-disabled    %8.1f ns/msg\n", disabled);
  tracer.set_enabled(true);

  // Unit costs of the primitives (ns each). In the OMF_NO_METRICS build
  // these are empty inline bodies and should read as ~0.
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& counter = reg.counter("bench.obs.counter");
  double c = time_op(10000000, [&] { counter.add(); });
  json.add("primitive/counter-add", c, 0,
           {{"metrics_enabled", kMetricsEnabled}});
  std::printf("primitive/counter-add     %8.2f ns\n", c);

  obs::Histogram& hist = reg.histogram("bench.obs.histogram");
  std::uint64_t v = 0;
  double h = time_op(10000000, [&] { hist.record(v++ & 0xFFFF); });
  json.add("primitive/histogram-record", h, 0,
           {{"metrics_enabled", kMetricsEnabled}});
  std::printf("primitive/histogram-record%8.2f ns\n", h);

  double s = time_op(10000000, [&] {
    if (tracer.sample()) counter.add();
  });
  json.add("primitive/sample-skip", s, 0,
           {{"metrics_enabled", kMetricsEnabled}, {"sample_every", 64}});
  std::printf("primitive/sample-skip     %8.2f ns\n", s);

  double span = time_op(1000000, [&] {
    obs::ScopedSpan sp(obs::Phase::kMarshal, "bench.obs.span");
  });
  json.add("primitive/scoped-span", span, 0,
           {{"metrics_enabled", kMetricsEnabled}});
  std::printf("primitive/scoped-span     %8.2f ns\n", span);

  // Event-site costs: what a per-batch attribution charge and a flight-
  // recorder append cost the paths that call them (never per-message).
  auto& attr = obs::Attribution::instance();
  double charge = time_op(2000000, [&] {
    attr.charge(0x42, "bench-peer", {.messages = 1, .decode_ns = 10});
  });
  json.add("primitive/attribution-charge", charge, 0,
           {{"metrics_enabled", kMetricsEnabled}});
  std::printf("primitive/attr-charge     %8.2f ns\n", charge);

  obs::FlightRecorder flight("BENCH_flight_scratch.bin", 256 * 1024);
  double record = time_op(1000000, [&] {
    flight.append("bench", "steady-state event");
  });
  json.add("primitive/flight-record", record, 0,
           {{"metrics_enabled", kMetricsEnabled}});
  std::printf("primitive/flight-record   %8.2f ns\n", record);
  std::remove("BENCH_flight_scratch.bin");

  double render = time_op(2000, [] {
    std::string text = obs::render_prometheus();
    if (text.size() == 1) std::abort();  // keep the call alive
  });
  json.add("exposition/render-prometheus", render, 0,
           {{"metrics_enabled", kMetricsEnabled}});
  std::printf("exposition/render         %8.1f ns\n", render);

  std::printf("\ntrace-every overhead vs tracer-disabled: %+.1f%%\n",
              (every / disabled - 1.0) * 100.0);
  std::printf("default-sampling overhead vs tracer-disabled: %+.1f%%\n",
              (dflt / disabled - 1.0) * 100.0);
  std::printf("wrote %s\n", json.write().c_str());
  return 0;
}
