// Fuzz entry points for every parser that consumes bytes from outside the
// process: the .fmt descriptor text, OBMF format bundles, XML schema
// documents, NDR connection frames, and batched NDR message decoding.
//
// Each function is the body of one libFuzzer target (fuzz_*.cpp wraps it in
// LLVMFuzzerTestOneInput) and is also called directly by the corpus-replay
// unit test, so every committed seed runs under the normal test matrix and
// its sanitizers even when libFuzzer itself is unavailable (gcc builds).
//
// Contract: a harness returns 0 and may throw nothing. Rejecting the input
// via the library's own omf::Error hierarchy is the expected outcome for
// hostile bytes; any other escape (segfault, sanitizer report, foreign
// exception) is a finding.
#pragma once

#include <cstddef>
#include <cstdint>

namespace omf::fuzz {

/// .fmt descriptor text → analysis::parse_fmt_text + the metadata audits.
int descriptor_one(const std::uint8_t* data, std::size_t size);

/// OBMF bundle bytes → frame decode, then full registry deserialization.
int bundle_one(const std::uint8_t* data, std::size_t size);

/// XML schema text → DOM parse, schema compile, wire-format registration.
int schema_one(const std::uint8_t* data, std::size_t size);

/// Raw connection frame → transport::parse_ndr_frame, then the payload
/// parser the tag selects (bundle decode for 'F', header peek for 'M'/'T').
int ndr_frame_one(const std::uint8_t* data, std::size_t size);

/// NDR messages → Decoder::decode_batch against a fixed native format with
/// strings, static and dynamic arrays. Bodies are framed with valid headers
/// so the fuzzer explores the plan walk, not just header rejection.
int decode_batch_one(const std::uint8_t* data, std::size_t size);

}  // namespace omf::fuzz
