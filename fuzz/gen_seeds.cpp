// Regenerates the committed seed corpus under fuzz/corpus/. Run after
// changing any wire format:
//
//   cmake --build build --target omf-gen-fuzz-seeds
//   ./build/fuzz/omf-gen-fuzz-seeds fuzz/corpus
//
// Seeds are deliberately small and structurally valid (or near-valid): the
// fuzzer mutates from parseable inputs toward interesting rejections far
// faster than from random bytes. Every file written here is also replayed
// as a plain unit test by tests/test_fuzz_corpus.cpp.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>

#include "arch/profile.hpp"
#include "core/xml2wire.hpp"
#include "pbio/format.hpp"
#include "pbio/metaserde.hpp"
#include "pbio/record.hpp"
#include "pbio/wire.hpp"
#include "util/buffer.hpp"

namespace fs = std::filesystem;
using namespace omf;

namespace {

void write_file(const fs::path& path, std::string_view bytes) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    std::exit(1);
  }
}

void write_file(const fs::path& path, const Buffer& bytes) {
  write_file(path, std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                    bytes.size()));
}

const char* kSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="FuzzEvent">
    <xsd:element name="tag" type="xsd:string" />
    <xsd:element name="seq" type="xsd:int" />
    <xsd:element name="coords" type="xsd:double" minOccurs="3" maxOccurs="3" />
    <xsd:element name="samples" type="xsd:unsignedLong"
                 minOccurs="0" maxOccurs="samples_count" />
    <xsd:element name="samples_count" type="xsd:int" />
    <xsd:element name="note" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
)";

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: omf-gen-fuzz-seeds <corpus-dir>\n");
    return 2;
  }
  fs::path root(argv[1]);

  // --- descriptor: .fmt text ------------------------------------------------
  write_file(root / "descriptor/telemetry_pair.fmt",
             "format Telemetry size=32 profile=sparc64\n"
             "field seq unsigned 8 0\n"
             "field a integer 8 8\n"
             "field b integer 8 16\n"
             "field c integer 8 24\n"
             "format TelemetryHost size=16\n"
             "field seq unsigned 4 0\n"
             "field a integer 4 4\n"
             "field b integer 2 8\n"
             "field c unsigned 2 10\n"
             "convert Telemetry TelemetryHost\n");
  write_file(root / "descriptor/dyn_array.fmt",
             "format Burst size=24\n"
             "field n integer 4 0\n"
             "field data unsigned[n] 8 8\n"
             "field tail integer 4 16\n");
  write_file(root / "descriptor/bad_type.fmt",
             "format BadType size=8\n"
             "field a integer[ 4 0\n");

  // --- schema: XML text -----------------------------------------------------
  write_file(root / "schema/fuzz_event.xsd", kSchema);
  write_file(root / "schema/minimal.xsd",
             "<?xml version=\"1.0\"?>\n"
             "<xsd:schema xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">\n"
             "  <xsd:complexType name=\"P\">\n"
             "    <xsd:element name=\"x\" type=\"xsd:int\" />\n"
             "  </xsd:complexType>\n"
             "</xsd:schema>\n");
  write_file(root / "schema/unclosed.xsd",
             "<?xml version=\"1.0\"?>\n"
             "<xsd:schema xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">\n"
             "  <xsd:complexType name=\"P\">\n");

  // --- bundle + ndr_frame + decode_batch: binary, from the real encoders ----
  pbio::FormatRegistry registry;
  core::Xml2Wire x2w(registry, arch::native());
  pbio::FormatHandle format = x2w.register_text(kSchema)[0];

  Buffer bundle = pbio::serialize_format_bundle(*format);
  write_file(root / "bundle/fuzz_event.obmf", bundle);
  write_file(root / "bundle/truncated.obmf",
             std::string_view(reinterpret_cast<const char*>(bundle.data()),
                              bundle.size() / 2));

  pbio::DynamicRecord rec(format);
  rec.set_string("tag", "seed");
  rec.set_int("seq", 7);
  double coords[3] = {1.5, -2.5, 3.25};
  rec.set_float_array("coords", coords);
  std::uint64_t samples[2] = {10, 20};
  rec.set_uint_array("samples", samples);
  rec.set_string("note", "fuzz corpus seed");
  Buffer message = rec.encode();

  {
    Buffer frame(message.size() + 1);
    char tag = 'M';
    frame.append(&tag, 1);
    frame.append(message.span());
    write_file(root / "ndr_frame/message.bin", frame);
  }
  {
    Buffer frame(message.size() + 17);
    char tag = 'T';
    frame.append(&tag, 1);
    std::uint8_t trace_id[8] = {0xEF, 0xBE, 0xAD, 0xDE, 0, 0, 0, 0};
    frame.append(trace_id, 8);
    std::uint8_t parent_span[8] = {0xBE, 0xBA, 0xFE, 0xCA, 0, 0, 0, 0};
    frame.append(parent_span, 8);
    frame.append(message.span());
    write_file(root / "ndr_frame/traced.bin", frame);
  }
  {
    Buffer frame(bundle.size() + 1);
    char tag = 'F';
    frame.append(&tag, 1);
    frame.append(bundle.span());
    write_file(root / "ndr_frame/format.bin", frame);
  }
  write_file(root / "ndr_frame/bad_tag.bin", std::string_view("Xjunk", 5));

  // decode_batch seeds: steer byte + raw bodies (the harness frames them).
  std::string_view body(reinterpret_cast<const char*>(message.data()) +
                            pbio::WireHeader::kSize,
                        message.size() - pbio::WireHeader::kSize);
  write_file(root / "decode_batch/native_single.bin",
             std::string("\x00", 1) + std::string(body));
  write_file(root / "decode_batch/native_burst4.bin",
             std::string("\x03", 1) + std::string(body) + std::string(body) +
                 std::string(body) + std::string(body));
  write_file(root / "decode_batch/foreign_pair.bin",
             std::string("\x05", 1) + std::string(body) + std::string(body));
  {
    std::string raw("\x08", 1);
    raw.append(reinterpret_cast<const char*>(message.data()), message.size());
    write_file(root / "decode_batch/raw_message.bin", raw);
  }

  std::printf("seed corpus written under %s\n", root.string().c_str());
  return 0;
}
