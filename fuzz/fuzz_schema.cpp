#include "harnesses.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return omf::fuzz::schema_one(data, size);
}
