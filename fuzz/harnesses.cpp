#include "harnesses.hpp"

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.hpp"
#include "arch/profile.hpp"
#include "core/xml2wire.hpp"
#include "pbio/arena.hpp"
#include "pbio/decode.hpp"
#include "pbio/format.hpp"
#include "pbio/metaserde.hpp"
#include "pbio/plan_cache.hpp"
#include "pbio/wire.hpp"
#include "transport/ndr_connection.hpp"
#include "util/buffer.hpp"
#include "util/error.hpp"

namespace omf::fuzz {
namespace {

std::string_view as_text(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

}  // namespace

int descriptor_one(const std::uint8_t* data, std::size_t size) {
  // lint_buffer never throws by contract: malformed text becomes OMF001
  // diagnostics. The catch guards that contract rather than relying on it.
  try {
    analysis::lint_buffer("fuzz.fmt", as_text(data, size));
  } catch (const Error&) {
  }
  return 0;
}

int bundle_one(const std::uint8_t* data, std::size_t size) {
  std::span<const std::uint8_t> bytes(data, size);
  try {
    pbio::decode_format_bundle(bytes);
  } catch (const Error&) {
  }
  try {
    pbio::FormatRegistry scratch;
    pbio::deserialize_format_bundle(scratch, bytes);
  } catch (const Error&) {
  }
  return 0;
}

int schema_one(const std::uint8_t* data, std::size_t size) {
  try {
    pbio::FormatRegistry scratch;
    core::Xml2Wire x2w(scratch, arch::native());
    x2w.register_text(as_text(data, size));
  } catch (const Error&) {
  }
  return 0;
}

int ndr_frame_one(const std::uint8_t* data, std::size_t size) {
  try {
    transport::NdrFrame frame =
        transport::parse_ndr_frame(std::span<const std::uint8_t>(data, size));
    if (frame.tag == 'F') {
      pbio::decode_format_bundle(frame.payload);
    } else {
      pbio::Decoder::peek_header(frame.payload);
    }
  } catch (const Error&) {
  }
  return 0;
}

namespace {

/// The decode_batch fixture: one native format and one byte-swapped foreign
/// variant of it, covering every body feature the decoder interprets from
/// the wire — strings (offset chasing), a static array run, and a
/// count-field-driven dynamic array.
struct BatchFixture {
  pbio::FormatRegistry registry;
  pbio::Decoder decoder{registry, nullptr};
  pbio::FormatHandle native;
  pbio::FormatHandle foreign;

  BatchFixture() {
    static const char* kSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="FuzzEvent">
    <xsd:element name="tag" type="xsd:string" />
    <xsd:element name="seq" type="xsd:int" />
    <xsd:element name="coords" type="xsd:double" minOccurs="3" maxOccurs="3" />
    <xsd:element name="samples" type="xsd:unsignedLong"
                 minOccurs="0" maxOccurs="samples_count" />
    <xsd:element name="samples_count" type="xsd:int" />
    <xsd:element name="note" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
)";
    core::Xml2Wire native_side(registry, arch::native());
    native = native_side.register_text(kSchema)[0];
    core::Xml2Wire foreign_side(registry, arch::profile_by_name("sparc64"));
    foreign = foreign_side.register_text(kSchema)[0];
  }

  static BatchFixture& get() {
    static BatchFixture fixture;
    return fixture;
  }
};

}  // namespace

int decode_batch_one(const std::uint8_t* data, std::size_t size) {
  BatchFixture& fx = BatchFixture::get();
  if (size == 0) return 0;

  // Byte 0 steers the shape: low bits pick the burst size (1..4), bit 2
  // picks the wire format (native fast path vs byte-swapped conversion),
  // bit 3 feeds the raw input as one unframed message instead (fuzzes the
  // header parser through the batch path).
  const std::uint8_t steer = data[0];
  const std::uint8_t* body = data + 1;
  const std::size_t body_size = size - 1;

  std::vector<Buffer> frames;
  std::vector<std::span<const std::uint8_t>> messages;
  if ((steer & 0x08) != 0) {
    messages.emplace_back(body, body_size);
  } else {
    const pbio::Format& wire_fmt =
        (steer & 0x04) != 0 ? *fx.foreign : *fx.native;
    const std::size_t n = (steer & 0x03) + 1;
    const std::size_t slice = body_size / n;
    frames.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pbio::WireHeader header;
      header.byte_order = wire_fmt.profile().byte_order;
      header.format_id = wire_fmt.id();
      header.body_length = static_cast<std::uint32_t>(slice);
      Buffer frame(pbio::WireHeader::kSize + slice);
      header.write(frame);
      frame.append(std::span<const std::uint8_t>(body + i * slice, slice));
      frames.push_back(std::move(frame));
    }
    messages.reserve(n);
    for (const Buffer& f : frames) messages.push_back(f.span());
  }

  std::vector<std::vector<std::uint8_t>> structs(
      messages.size(), std::vector<std::uint8_t>(fx.native->struct_size()));
  std::vector<void*> outs;
  outs.reserve(structs.size());
  for (auto& s : structs) outs.push_back(s.data());

  try {
    pbio::DecodeArena arena;
    fx.decoder.decode_batch(messages.data(), messages.size(), *fx.native,
                            outs.data(), arena);
  } catch (const Error&) {
  }
  return 0;
}

}  // namespace omf::fuzz
