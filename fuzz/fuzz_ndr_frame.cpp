#include "harnesses.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return omf::fuzz::ndr_frame_one(data, size);
}
