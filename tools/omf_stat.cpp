// omf-stat: observability snapshot viewer.
//
//   omf-stat <url>              scrape an OMF process's /metrics endpoint
//                               (e.g. http://127.0.0.1:8080/metrics) and
//                               print the Prometheus text it serves
//   omf-stat --watch <secs> <url>
//                               scrape repeatedly, printing per-second
//                               deltas for every counter that moved
//   omf-stat --postmortem <file>
//                               reconstruct the last seconds before a crash
//                               from a flight-recorder file (OMFFLT1)
//   omf-stat --local            print this process's snapshot (human text)
//   omf-stat --local --prom     ...as Prometheus text instead
//   omf-stat --local --spans    ...plus the retained trace trees as JSONL
//   omf-stat --local --top      ...plus per-{format, peer} cost attribution
//                               sorted by decode time
//   omf-stat --demo [...]       run a small discover/bind/marshal pipeline
//                               first so the local snapshot has data; the
//                               smoke test for the whole obs layer
//   omf-stat --metrics-md       print docs/METRICS.md regenerated from the
//                               metric registry's name/kind/help table
//
// Exit status: 0 = success, 1 = scrape/parse failed, 2 = usage error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "http/http.hpp"
#include "obs/attribution.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overload/budget.hpp"
#include "overload/health.hpp"
#include "util/error.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <url>\n"
               "       %s --watch <seconds> <url>\n"
               "       %s --postmortem <flight-recorder-file>\n"
               "       %s [--demo] --local [--prom] [--spans] [--top]\n"
               "       %s --metrics-md\n"
               "\n"
               "Scrapes a /metrics endpoint (once, or repeatedly with\n"
               "--watch), replays a crash's flight recorder, or dumps this\n"
               "process's own metrics/trace snapshot (use --demo to\n"
               "generate traffic).\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

struct DemoQuote {
  char* symbol;
  double price;
  int volume;
};

const char* kDemoSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="DemoQuote">
    <xsd:element name="symbol" type="xsd:string" />
    <xsd:element name="price" type="xsd:double" />
    <xsd:element name="volume" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>
)";

// Exercises discovery, binding, and both marshal directions so every core
// metric family has nonzero values in the snapshot.
void run_demo() {
  omf::obs::Tracer::instance().set_sample_every(1);  // trace everything
  omf::core::Context ctx;
  ctx.compiled_in().add("demo-metadata", kDemoSchema);
  auto format = ctx.discover_format("demo-metadata", "DemoQuote");
  auto channel = ctx.bind<DemoQuote>(format);

  DemoQuote quote{};
  quote.symbol = const_cast<char*>("OMF");
  quote.price = 19.97;
  quote.volume = 1024;

  omf::pbio::DecodeArena arena;
  // A multiple of the hot-path batch interval (64), so the thread-local
  // decode/encode accumulators flush fully and the snapshot shows exact
  // per-message counts.
  for (int i = 0; i < 128; ++i) {
    omf::Buffer wire = channel.encode(&quote);
    DemoQuote decoded{};
    channel.decode(wire.span(), &decoded, arena);
    arena.reset();
  }
}

// The overload-protection state at a glance: health, the memory budget, and
// every shed/reject counter an operator reaches for first during an incident.
void print_overload_summary() {
  auto& reg = omf::obs::MetricsRegistry::instance();
  auto counter = [&](const char* name) { return reg.counter(name).value(); };
  auto& budget = omf::overload::MemoryBudget::instance();
  std::printf("== overload ==\n");
  std::printf("  health                 %s\n",
              omf::overload::health_name(
                  omf::overload::HealthMonitor::instance().state()));
  std::printf("  budget.used/peak       %zu / %zu bytes\n", budget.used(),
              budget.peak());
  std::printf("  budget.limit           %zu bytes%s\n", budget.limit(),
              budget.limit() == 0 ? " (unlimited)" : "");
  std::printf("  budget.degraded        %s\n",
              budget.degraded() ? "yes" : "no");
  std::printf("  queue.depth            %lld\n",
              static_cast<long long>(
                  reg.gauge("transport.backbone.queue_depth").value()));
  std::printf("  backbone.shed          %llu (overflow disconnects %llu)\n",
              static_cast<unsigned long long>(
                  counter("transport.backbone.shed")),
              static_cast<unsigned long long>(
                  counter("transport.backbone.overflow_disconnects")));
  std::printf("  admission.admitted     %llu\n",
              static_cast<unsigned long long>(
                  counter("omf.admission.admitted")));
  std::printf("  admission.rejected     conn=%llu rate=%llu bytes=%llu "
              "degraded=%llu\n",
              static_cast<unsigned long long>(
                  counter("omf.admission.rejected.connections")),
              static_cast<unsigned long long>(
                  counter("omf.admission.rejected.rate")),
              static_cast<unsigned long long>(
                  counter("omf.admission.rejected.bytes")),
              static_cast<unsigned long long>(
                  counter("omf.admission.rejected.degraded")));
  std::printf("  journal                appends=%llu compactions=%llu "
              "torn_tails=%llu\n",
              static_cast<unsigned long long>(counter("omf.journal.appends")),
              static_cast<unsigned long long>(
                  counter("omf.journal.compactions")),
              static_cast<unsigned long long>(
                  counter("omf.journal.torn_tails")));
}

// The metadata cache plane: hit-tier breakdown, revalidation traffic, the
// degraded-mode stale serves, and replica failovers — the panel that answers
// "are clients still resolving formats, and what is it costing the origin?"
void print_metacache_summary() {
  auto& reg = omf::obs::MetricsRegistry::instance();
  auto counter = [&](const char* name) {
    return static_cast<unsigned long long>(reg.counter(name).value());
  };
  std::printf("== metacache ==\n");
  std::printf("  hit/miss               %llu / %llu (disk hits %llu)\n",
              counter("omf.metacache.hit"), counter("omf.metacache.miss"),
              counter("omf.metacache.disk_hit"));
  std::printf("  memory                 %lld bytes (evictions %llu)\n",
              static_cast<long long>(
                  reg.gauge("omf.metacache.memory_bytes").value()),
              counter("omf.metacache.evictions"));
  std::printf("  revalidations          %llu (server 304s %llu, "
              "tcp not-modified %llu)\n",
              counter("omf.metacache.revalidate"),
              counter("http.server.revalidations"),
              counter("transport.format_service.not_modified"));
  std::printf("  stale_served           %llu\n",
              counter("omf.metacache.stale_served"));
  std::printf("  disk installs/rejects  %llu / %llu\n",
              counter("omf.metacache.disk_installs"),
              counter("omf.metacache.disk_rejects"));
  std::printf("  replica.failover       %llu\n",
              counter("omf.replica.failover"));
  std::printf("  retry_after_waits      %llu\n",
              counter("http.client.retry_after_waits"));
}

// Per-{format, peer} cost attribution, heaviest decode bill first — the
// "who is costing me CPU" panel.
void print_attribution_top() {
  std::vector<omf::obs::AttrRow> rows =
      omf::obs::Attribution::instance().snapshot();
  std::sort(rows.begin(), rows.end(),
            [](const omf::obs::AttrRow& a, const omf::obs::AttrRow& b) {
              return a.totals.decode_ns > b.totals.decode_ns;
            });
  std::printf("== attribution: top by decode time ==\n");
  std::printf("  %-16s  %-15s  %12s  %10s  %12s  %6s  %6s\n", "format",
              "peer", "decode_ns", "msgs", "bytes", "drops", "stale");
  for (const omf::obs::AttrRow& row : rows) {
    std::printf("  %016llx  %-15s  %12llu  %10llu  %12llu  %6llu  %6llu\n",
                static_cast<unsigned long long>(row.format_id),
                row.peer.c_str(),
                static_cast<unsigned long long>(row.totals.decode_ns),
                static_cast<unsigned long long>(row.totals.messages),
                static_cast<unsigned long long>(row.totals.bytes),
                static_cast<unsigned long long>(row.totals.drops),
                static_cast<unsigned long long>(row.totals.stale_serves));
  }
  if (rows.empty()) std::printf("  (no attribution charges recorded)\n");
}

/// Replays a flight-recorder file: the last seconds before a crash, in
/// order, with the recovery's integrity summary. Exit 1 on a bad header.
int run_postmortem(const std::string& file) {
  omf::obs::FlightRecovery rec;
  try {
    rec = omf::obs::FlightRecorder::recover(file);
  } catch (const omf::Error& e) {
    std::fprintf(stderr, "omf-stat: postmortem failed: %s\n", e.what());
    return 1;
  }
  std::printf("== flight recorder postmortem: %s ==\n", file.c_str());
  std::printf("  ring capacity      %llu bytes\n",
              static_cast<unsigned long long>(rec.capacity));
  std::printf("  header acked       seq=%llu total=%llu bytes\n",
              static_cast<unsigned long long>(rec.header_seq),
              static_cast<unsigned long long>(rec.header_total));
  std::printf("  recovered events   %zu (sequence gaps: %llu)\n",
              rec.events.size(),
              static_cast<unsigned long long>(rec.gaps));
  const std::uint64_t last_ms =
      rec.events.empty() ? 0 : rec.events.back().wall_ms;
  for (const omf::obs::FlightEvent& ev : rec.events) {
    // Relative age reads better than absolute wall time in a postmortem:
    // "-2.133s breaker ..." is the answer to "what happened right before?".
    double age_s =
        static_cast<double>(last_ms - ev.wall_ms) / 1000.0;
    std::printf("  [%6llu] -%7.3fs  %-10s %s\n",
                static_cast<unsigned long long>(ev.seq), age_s,
                ev.category.c_str(), ev.message.c_str());
  }
  return 0;
}

int scrape(const std::string& url, std::string& body) {
  try {
    omf::http::Response resp = omf::http::get(
        url, omf::Deadline::from_timeout(std::chrono::seconds(5)));
    if (resp.status != 200) {
      std::fprintf(stderr, "omf-stat: %s returned HTTP %d\n", url.c_str(),
                   resp.status);
      return 1;
    }
    body = std::move(resp.body);
    return 0;
  } catch (const omf::Error& e) {
    std::fprintf(stderr, "omf-stat: scrape failed: %s\n", e.what());
    return 1;
  }
}

/// Scrape every `interval` seconds forever, rendering per-second rates for
/// the counters that moved between consecutive scrapes.
int run_watch(const std::string& url, double interval) {
  std::string body;
  if (scrape(url, body) != 0) return 1;
  std::map<std::string, omf::obs::PromSample> prev =
      omf::obs::parse_prometheus(body);
  for (;;) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    if (scrape(url, body) != 0) return 1;
    std::map<std::string, omf::obs::PromSample> cur =
        omf::obs::parse_prometheus(body);
    std::printf("-- %s (every %.1fs) --\n", url.c_str(), interval);
    std::fputs(omf::obs::render_counter_deltas(prev, cur, interval).c_str(),
               stdout);
    std::fflush(stdout);
    prev = std::move(cur);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool local = false;
  bool demo = false;
  bool prom = false;
  bool spans = false;
  bool top = false;
  std::string url;
  std::string postmortem_file;
  double watch_interval = 0;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--local") == 0) {
      local = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
      local = true;
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      prom = true;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      spans = true;
    } else if (std::strcmp(argv[i], "--top") == 0) {
      top = true;
    } else if (std::strcmp(argv[i], "--metrics-md") == 0) {
      std::fputs(omf::obs::metrics_markdown().c_str(), stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--postmortem") == 0) {
      if (++i >= argc) return usage(argv[0]);
      postmortem_file = argv[i];
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      if (++i >= argc) return usage(argv[0]);
      watch_interval = std::atof(argv[i]);
      if (watch_interval <= 0) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      url = argv[i];
    }
  }

  if (!postmortem_file.empty()) {
    return run_postmortem(postmortem_file);
  }

  if (!local) {
    if (url.empty()) return usage(argv[0]);
    if (watch_interval > 0) return run_watch(url, watch_interval);
    std::string body;
    if (scrape(url, body) != 0) return 1;
    std::fputs(body.c_str(), stdout);
    return 0;
  }

  if (demo) {
    try {
      run_demo();
    } catch (const omf::Error& e) {
      std::fprintf(stderr, "omf-stat: demo pipeline failed: %s\n", e.what());
      return 1;
    }
  }

  if (prom) {
    std::fputs(omf::obs::render_prometheus().c_str(), stdout);
  } else {
    print_overload_summary();
    print_metacache_summary();
    std::fputs(omf::obs::render_text(omf::obs::stats_snapshot()).c_str(),
               stdout);
  }
  if (top) {
    print_attribution_top();
  }
  if (spans) {
    // Trace trees, one JSON object per retained trace (tail-sampled).
    omf::obs::Tracer::instance().export_trace_trees(std::cout);
  }
  return 0;
}
