// omf-stat: observability snapshot viewer.
//
//   omf-stat <url>              scrape an OMF process's /metrics endpoint
//                               (e.g. http://127.0.0.1:8080/metrics) and
//                               print the Prometheus text it serves
//   omf-stat --local            print this process's snapshot (human text)
//   omf-stat --local --prom     ...as Prometheus text instead
//   omf-stat --local --spans    ...plus the span ring as JSONL
//   omf-stat --demo [...]       run a small discover/bind/marshal pipeline
//                               first so the local snapshot has data; the
//                               smoke test for the whole obs layer
//
// Exit status: 0 = success, 1 = scrape failed, 2 = usage error.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/context.hpp"
#include "http/http.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overload/budget.hpp"
#include "overload/health.hpp"
#include "util/error.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <url>\n"
               "       %s [--demo] --local [--prom] [--spans]\n"
               "\n"
               "Scrapes a /metrics endpoint, or dumps this process's own\n"
               "metrics/span snapshot (use --demo to generate traffic).\n",
               argv0, argv0);
  return 2;
}

struct DemoQuote {
  char* symbol;
  double price;
  int volume;
};

const char* kDemoSchema = R"(<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="DemoQuote">
    <xsd:element name="symbol" type="xsd:string" />
    <xsd:element name="price" type="xsd:double" />
    <xsd:element name="volume" type="xsd:int" />
  </xsd:complexType>
</xsd:schema>
)";

// Exercises discovery, binding, and both marshal directions so every core
// metric family has nonzero values in the snapshot.
void run_demo() {
  omf::obs::Tracer::instance().set_sample_every(1);  // trace everything
  omf::core::Context ctx;
  ctx.compiled_in().add("demo-metadata", kDemoSchema);
  auto format = ctx.discover_format("demo-metadata", "DemoQuote");
  auto channel = ctx.bind<DemoQuote>(format);

  DemoQuote quote{};
  quote.symbol = const_cast<char*>("OMF");
  quote.price = 19.97;
  quote.volume = 1024;

  omf::pbio::DecodeArena arena;
  // A multiple of the hot-path batch interval (64), so the thread-local
  // decode/encode accumulators flush fully and the snapshot shows exact
  // per-message counts.
  for (int i = 0; i < 128; ++i) {
    omf::Buffer wire = channel.encode(&quote);
    DemoQuote decoded{};
    channel.decode(wire.span(), &decoded, arena);
    arena.reset();
  }
}

// The overload-protection state at a glance: health, the memory budget, and
// every shed/reject counter an operator reaches for first during an incident.
void print_overload_summary() {
  auto& reg = omf::obs::MetricsRegistry::instance();
  auto counter = [&](const char* name) { return reg.counter(name).value(); };
  auto& budget = omf::overload::MemoryBudget::instance();
  std::printf("== overload ==\n");
  std::printf("  health                 %s\n",
              omf::overload::health_name(
                  omf::overload::HealthMonitor::instance().state()));
  std::printf("  budget.used/peak       %zu / %zu bytes\n", budget.used(),
              budget.peak());
  std::printf("  budget.limit           %zu bytes%s\n", budget.limit(),
              budget.limit() == 0 ? " (unlimited)" : "");
  std::printf("  budget.degraded        %s\n",
              budget.degraded() ? "yes" : "no");
  std::printf("  queue.depth            %lld\n",
              static_cast<long long>(
                  reg.gauge("transport.backbone.queue_depth").value()));
  std::printf("  backbone.shed          %llu (overflow disconnects %llu)\n",
              static_cast<unsigned long long>(
                  counter("transport.backbone.shed")),
              static_cast<unsigned long long>(
                  counter("transport.backbone.overflow_disconnects")));
  std::printf("  admission.admitted     %llu\n",
              static_cast<unsigned long long>(
                  counter("omf.admission.admitted")));
  std::printf("  admission.rejected     conn=%llu rate=%llu bytes=%llu "
              "degraded=%llu\n",
              static_cast<unsigned long long>(
                  counter("omf.admission.rejected.connections")),
              static_cast<unsigned long long>(
                  counter("omf.admission.rejected.rate")),
              static_cast<unsigned long long>(
                  counter("omf.admission.rejected.bytes")),
              static_cast<unsigned long long>(
                  counter("omf.admission.rejected.degraded")));
  std::printf("  journal                appends=%llu compactions=%llu "
              "torn_tails=%llu\n",
              static_cast<unsigned long long>(counter("omf.journal.appends")),
              static_cast<unsigned long long>(
                  counter("omf.journal.compactions")),
              static_cast<unsigned long long>(
                  counter("omf.journal.torn_tails")));
}

// The metadata cache plane: hit-tier breakdown, revalidation traffic, the
// degraded-mode stale serves, and replica failovers — the panel that answers
// "are clients still resolving formats, and what is it costing the origin?"
void print_metacache_summary() {
  auto& reg = omf::obs::MetricsRegistry::instance();
  auto counter = [&](const char* name) {
    return static_cast<unsigned long long>(reg.counter(name).value());
  };
  std::printf("== metacache ==\n");
  std::printf("  hit/miss               %llu / %llu (disk hits %llu)\n",
              counter("omf.metacache.hit"), counter("omf.metacache.miss"),
              counter("omf.metacache.disk_hit"));
  std::printf("  memory                 %lld bytes (evictions %llu)\n",
              static_cast<long long>(
                  reg.gauge("omf.metacache.memory_bytes").value()),
              counter("omf.metacache.evictions"));
  std::printf("  revalidations          %llu (server 304s %llu, "
              "tcp not-modified %llu)\n",
              counter("omf.metacache.revalidate"),
              counter("http.server.revalidations"),
              counter("transport.format_service.not_modified"));
  std::printf("  stale_served           %llu\n",
              counter("omf.metacache.stale_served"));
  std::printf("  disk installs/rejects  %llu / %llu\n",
              counter("omf.metacache.disk_installs"),
              counter("omf.metacache.disk_rejects"));
  std::printf("  replica.failover       %llu\n",
              counter("omf.replica.failover"));
  std::printf("  retry_after_waits      %llu\n",
              counter("http.client.retry_after_waits"));
}

}  // namespace

int main(int argc, char** argv) {
  bool local = false;
  bool demo = false;
  bool prom = false;
  bool spans = false;
  std::string url;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--local") == 0) {
      local = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
      local = true;
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      prom = true;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      spans = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      url = argv[i];
    }
  }

  if (!local) {
    if (url.empty()) return usage(argv[0]);
    try {
      omf::http::Response resp = omf::http::get(
          url, omf::Deadline::from_timeout(std::chrono::seconds(5)));
      if (resp.status != 200) {
        std::fprintf(stderr, "omf-stat: %s returned HTTP %d\n", url.c_str(),
                     resp.status);
        return 1;
      }
      std::fputs(resp.body.c_str(), stdout);
      return 0;
    } catch (const omf::Error& e) {
      std::fprintf(stderr, "omf-stat: scrape failed: %s\n", e.what());
      return 1;
    }
  }

  if (demo) {
    try {
      run_demo();
    } catch (const omf::Error& e) {
      std::fprintf(stderr, "omf-stat: demo pipeline failed: %s\n", e.what());
      return 1;
    }
  }

  if (prom) {
    std::fputs(omf::obs::render_prometheus().c_str(), stdout);
  } else {
    print_overload_summary();
    print_metacache_summary();
    std::fputs(omf::obs::render_text(omf::obs::stats_snapshot()).c_str(),
               stdout);
  }
  if (spans) {
    omf::obs::Tracer::instance().export_jsonl(std::cout);
  }
  return 0;
}
