#!/usr/bin/env bash
# Blocking clang-tidy gate with a committed baseline.
#
#   tools/tidy-gate.sh           # fail if the run produces findings not in
#                                # .clang-tidy-baseline
#   tools/tidy-gate.sh --update  # rewrite the baseline from the current run
#
# Requires a compile database: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# (override the build dir with BUILD_DIR=...).
#
# Findings are normalized to "file: severity: message [check]" — line and
# column numbers are stripped so edits *above* an accepted finding don't
# churn the baseline, while any new diagnostic (new site, new check, new
# message) is a hard failure.
set -u

MODE=check
if [ "${1:-}" = "--update" ]; then
  MODE=update
elif [ -n "${1:-}" ]; then
  echo "usage: tools/tidy-gate.sh [--update]" >&2
  exit 2
fi

BUILD_DIR=${BUILD_DIR:-build}
BASELINE=.clang-tidy-baseline
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$REPO_ROOT"

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy-gate: $BUILD_DIR/compile_commands.json not found" >&2
  echo "tidy-gate: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

RUN_CLANG_TIDY=$(command -v run-clang-tidy || command -v run-clang-tidy.py)
if [ -z "$RUN_CLANG_TIDY" ]; then
  echo "tidy-gate: run-clang-tidy not found in PATH" >&2
  exit 2
fi

raw=$(mktemp)
findings=$(mktemp)
trap 'rm -f "$raw" "$findings"' EXIT

# run-clang-tidy exits non-zero whenever any diagnostic fires; the gate
# decides pass/fail itself, so the exit status is ignored here.
"$RUN_CLANG_TIDY" -p "$BUILD_DIR" -quiet \
  "$REPO_ROOT/src/.*" "$REPO_ROOT/tools/.*" "$REPO_ROOT/fuzz/.*" \
  >"$raw" 2>/dev/null || true

grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error): .*\[[A-Za-z0-9.,-]+\]$' "$raw" \
  | sed -E "s|^$REPO_ROOT/||" \
  | sed -E 's/:[0-9]+:[0-9]+: / /' \
  | LC_ALL=C sort -u >"$findings"

if [ "$MODE" = update ]; then
  {
    echo "# clang-tidy findings accepted as pre-existing. Regenerate with"
    echo "# tools/tidy-gate.sh --update after fixing or accepting findings."
    cat "$findings"
  } >"$BASELINE"
  echo "tidy-gate: baseline updated ($(wc -l <"$findings") finding(s))"
  exit 0
fi

accepted=$(mktemp)
trap 'rm -f "$raw" "$findings" "$accepted"' EXIT
grep -v '^#' "$BASELINE" 2>/dev/null | LC_ALL=C sort -u >"$accepted"

new=$(LC_ALL=C comm -13 "$accepted" "$findings")
gone=$(LC_ALL=C comm -23 "$accepted" "$findings")

if [ -n "$gone" ]; then
  echo "tidy-gate: $(printf '%s\n' "$gone" | wc -l) baseline finding(s) no longer fire" \
       "- consider tools/tidy-gate.sh --update to shrink the baseline"
fi
if [ -n "$new" ]; then
  echo "tidy-gate: NEW clang-tidy findings (not in $BASELINE):" >&2
  printf '%s\n' "$new" >&2
  exit 1
fi
echo "tidy-gate: clean ($(wc -l <"$findings") total, all baselined)"
