// omf-verify: bounds certification of compiled conversion plans.
//
//   omf-verify [--quiet] [--json] [--cert] <file.plan|file.fmt>...
//   omf-verify --kernels
//
// The static half of the PR 7 correctness gate: an interval-domain abstract
// interpretation proves every plan read fits the wire struct region of the
// minimum admissible message and every write fits the native struct — or
// emits an OMF4xx diagnostic carrying a concrete counterexample message
// length. `.plan` inputs are raw op programs (the hostile-mutant corpus
// format); `.fmt` inputs have each `convert` directive compiled with
// production options and certified. --cert prints the machine-checkable
// certificate for every proven plan. --kernels runs the dynamic oracle
// instead: the exhaustive SIMD-vs-scalar equivalence sweep.
//
// The driver lives in analysis::verify_cli so the exit-code contract is
// regression-tested without spawning this binary.
#include <string>
#include <vector>

#include "analysis/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return omf::analysis::verify_cli(args, stdout, stderr);
}
