// omf-lint: static analyzer for OMF metadata.
//
//   omf-lint [--quiet] [--werror] [--json] <file>...
//   omf-lint --codes | --codes-md
//
// Inputs may be XML Schema documents (*.xsd / *.xml), textual format
// descriptors (*.fmt), or serialized format bundles ("OBMF" magic). Every
// diagnostic is printed GCC-style (file:line:col: severity[CODE]: message)
// so editors and CI annotate them natively; --json emits one JSON array
// instead. Exit codes (also in --help): 0 = no errors (warnings allowed),
// 1 = errors found (or warnings under --werror), 2 = usage error.
//
// The driver lives in analysis::lint_cli so the exit-code contract is
// regression-tested without spawning this binary.
#include <string>
#include <vector>

#include "analysis/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return omf::analysis::lint_cli(args, stdout, stderr);
}
