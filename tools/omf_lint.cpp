// omf-lint: static analyzer for OMF metadata.
//
//   omf-lint [options] <file>...
//
// Inputs may be XML Schema documents (*.xsd / *.xml), textual format
// descriptors (*.fmt), or serialized format bundles ("OBMF" magic). Every
// diagnostic is printed GCC-style (file:line:col: severity[CODE]: message)
// so editors and CI annotate them natively.
//
// Exit status: 0 = no errors (warnings allowed), 1 = errors found,
// 2 = usage error. --werror promotes warnings to a failing exit status.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/lint.hpp"

namespace {

int print_codes() {
  std::printf("%-8s %-8s %s\n", "code", "severity", "summary");
  for (const omf::analysis::CodeInfo& info :
       omf::analysis::diagnostic_codes()) {
    std::printf("%-8s %-8s %s\n", info.code,
                info.severity == omf::analysis::Severity::kError ? "error"
                                                                 : "warning",
                info.summary);
  }
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quiet] [--werror] <file>...\n"
               "       %s --codes\n"
               "\n"
               "Statically audits OMF metadata: XML Schema documents,\n"
               "textual descriptor files (*.fmt), and serialized format\n"
               "bundles. Exits nonzero if any error diagnostic is found.\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  bool werror = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--codes") == 0) return print_codes();
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], argv[i]);
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) return usage(argv[0]);

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const std::string& file : files) {
    omf::analysis::LintResult result = omf::analysis::lint_file(file);
    errors += result.errors;
    warnings += result.warnings;
    if (!quiet) {
      for (const omf::analysis::Diagnostic& d : result.diagnostics) {
        std::fprintf(stderr, "%s\n", omf::analysis::render(d).c_str());
      }
    }
  }
  if (!quiet && (errors != 0 || warnings != 0)) {
    std::fprintf(stderr, "omf-lint: %zu error(s), %zu warning(s) in %zu file(s)\n",
                 errors, warnings, files.size());
  }
  return (errors != 0 || (werror && warnings != 0)) ? 1 : 0;
}
