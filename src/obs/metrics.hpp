// Process-wide metrics: counters, gauges, and log2 latency histograms.
//
// The paper's evaluation measures the three BCM steps — discovery, binding,
// marshaling — with one-off benchmarks; a deployed server needs the same
// numbers continuously. MetricsRegistry is the always-on substrate: metrics
// are registered once under stable dotted names ("pbio.plan_cache.hits",
// "transport.bytes_rx", ...) and incremented from hot paths at near-zero
// cost — a relaxed atomic add on a thread-striped cache line, no locks, no
// allocation after the first registration. The idiom at an instrumentation
// site is a function-local static reference, so the name lookup happens once
// per process:
//
//   static obs::Counter& hits =
//       obs::MetricsRegistry::instance().counter("pbio.plan_cache.hits");
//   hits.add();
//
// The per-*message* sites (decode, encode, plan-cache hit) go one step
// further: even a relaxed fetch_add is ~6 ns of a ~180 ns decode, so they
// accumulate in plain thread-local structs and fold into the registry every
// 64 messages and at thread exit (see DecodeTls in pbio/decode.cpp).
// Registry values there can lag a busy thread by up to 63 events; they are
// exact at quiescence.
//
// Compile-time disable: building with -DOMF_NO_METRICS (CMake option
// OMF_NO_METRICS) replaces every mutation with an empty inline body and the
// registry with an empty shell, so the layer costs literally nothing —
// the acceptance configuration for environments that want the seed-state
// binary back.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace omf::obs {

/// Monotonic nanoseconds from an unspecified epoch (steady_clock); the
/// timebase for histograms, spans, and overhead measurements.
inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#ifndef OMF_NO_METRICS

namespace detail {
/// Small dense per-thread slot index, assigned on first use, used to stripe
/// counter shards so concurrent increments rarely share a cache line.
inline unsigned thread_slot() noexcept {
  static std::atomic<unsigned> next{0};
  static thread_local unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace detail

/// Monotonic event counter. Increments are relaxed atomic adds striped over
/// cache-line-sized shards; value() sums the shards, and is exact once the
/// incrementing threads are quiescent (relaxed RMWs never lose updates).
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_slot() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Zeroes the counter (tests; not expected to race with add()).
  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Instantaneous signed value (queue depths, connection counts).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) noexcept {
    v_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket base-2 histogram. Bucket k counts values whose bit width is
/// k, i.e. v in [2^(k-1), 2^k); equivalently every value in bucket k
/// satisfies v <= 2^k - 1, which is the `le` bound exposition emits. The
/// last bucket absorbs everything wider (le="+Inf"). record() is two relaxed
/// atomic adds — cheap enough for per-message sizes and latencies.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;  // le up to 2^39-1 (~9 min in ns)

  void record(std::uint64_t v) noexcept {
    std::size_t b = static_cast<std::size_t>(std::bit_width(v));
    if (b >= kBuckets) b = kBuckets - 1;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Upper bound (inclusive) of bucket `b`; the final bucket is unbounded.
  static constexpr std::uint64_t le(std::size_t b) noexcept {
    return (std::uint64_t{1} << b) - 1;
  }

  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Bulk merge for thread-local batching (see pbio's hot-path batches):
  /// adds `count` observations to bucket `b` and `sum` to the total.
  void add_bucket(std::size_t b, std::uint64_t count,
                  std::uint64_t sum) noexcept {
    if (b >= kBuckets) b = kBuckets - 1;
    buckets_[b].fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

#else  // OMF_NO_METRICS — same API, empty bodies, zero storage.

class Counter {
 public:
  static constexpr std::size_t kShards = 1;
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t = 1) noexcept {}
  void sub(std::int64_t = 1) noexcept {}
  std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 1;
  void record(std::uint64_t) noexcept {}
  void add_bucket(std::size_t, std::uint64_t, std::uint64_t) noexcept {}
  static constexpr std::uint64_t le(std::size_t) noexcept { return 0; }
  std::uint64_t count() const noexcept { return 0; }
  std::uint64_t sum() const noexcept { return 0; }
  std::uint64_t bucket(std::size_t) const noexcept { return 0; }
  void reset() noexcept {}
};

#endif  // OMF_NO_METRICS

/// One row of the stable instrumentation table: every core metric's name,
/// kind ("counter" | "gauge" | "histogram"), and one-line help string. The
/// table drives pre-registration, docs/METRICS.md generation, and the
/// Prometheus # HELP lines, so the three can never drift apart.
struct MetricInfo {
  const char* name;
  const char* kind;
  const char* help;
};

/// The full core table, sorted by name. Available in every build (it is
/// just data) so docs can be generated even under OMF_NO_METRICS.
const std::vector<MetricInfo>& core_metrics();

/// Help text for a core metric name; empty for ad-hoc names.
std::string_view metric_help(std::string_view name) noexcept;

/// Renders the core table as the docs/METRICS.md markdown document.
std::string metrics_markdown();

/// Point-in-time copy of every registered metric, ordered by name (the
/// shape exposition and omf-stat render from).
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count;
    std::uint64_t sum;
    std::vector<std::uint64_t> buckets;  // non-cumulative, kBuckets entries
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};

/// The process-wide registry. counter()/gauge()/histogram() return a stable
/// reference for the lifetime of the process, registering the name on first
/// use (a name can only ever name one metric kind; reusing it for another
/// kind throws). The core instrumentation names (README "Observability"
/// table) are pre-registered so /metrics always exposes them, zero-valued
/// or not.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric's value (names and addresses stay registered).
  /// For tests; not expected to race with hot-path increments.
  void reset_values();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry();

#ifndef OMF_NO_METRICS
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
#endif
};

/// Records the elapsed nanoseconds of a scope into a histogram. Use on
/// coarse-grained paths (discovery fetches, plan compiles) — it pays two
/// steady_clock reads, which per-message hot paths avoid (they count, and
/// leave timing to the sampled span tracer).
class ScopedTimer {
 public:
#ifndef OMF_NO_METRICS
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(&h), start_(monotonic_ns()) {}
  ~ScopedTimer() { h_->record(monotonic_ns() - start_); }

 private:
  Histogram* h_;
  std::uint64_t start_;
#else
  explicit ScopedTimer(Histogram&) noexcept {}
#endif
 public:
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

}  // namespace omf::obs
