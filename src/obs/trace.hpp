// Span tracing for a message's journey through the paper's three phases.
//
// Every BCM performs discovery, binding, and marshaling (§2); this tracer
// stamps each phase with monotonic timestamps so the per-phase costs the
// paper tabulates are visible in deployment, per message, not just in
// bench/. A span is a fixed-size POD (no allocation on the record path)
// holding a 64-bit trace id, the phase, a short detail string (locator,
// format name), and start/duration in nanoseconds. Spans land in a
// preallocated ring buffer; readers snapshot or export JSONL for offline
// analysis.
//
// Trace ids propagate: the thread-local current trace id set by a
// ScopedSpan (or explicitly) is carried across NdrConnection frames in a
// 'T'-tagged frame header, so a receiver's unmarshal span joins the
// sender's marshal span under one id — Dapper-style propagation scaled to
// this repo's loopback world.
//
// Hot-path discipline: marshal/unmarshal spans are *sampled* (default one
// in 64 messages per thread, power-of-two mask, a thread-local increment on
// the skip path — no shared-cacheline traffic) so steady-state decode pays
// ~no clock reads; discovery and plan-compile spans are always recorded —
// those paths are millisecond-scale and rare.
// Building with -DOMF_NO_METRICS compiles all of it out.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string_view>
#include <vector>

#ifndef OMF_NO_METRICS
#include <atomic>
#include <mutex>
#endif

namespace omf::obs {

/// The paper's phase taxonomy, plus transport for frame-level events.
enum class Phase : std::uint8_t {
  kDiscover = 0,   ///< locating metadata (DiscoveryManager)
  kBind = 1,       ///< metadata -> usable plan (PlanCache compile)
  kMarshal = 2,    ///< native struct -> wire bytes (encode)
  kUnmarshal = 3,  ///< wire bytes -> native struct (decode)
  kTransport = 4,  ///< frame-level send/receive
};

std::string_view phase_name(Phase p) noexcept;

/// One recorded phase of one traced operation. Fixed-size so ring writes
/// never allocate. Deliberately has no default member initializers:
/// ScopedSpan embeds one that stays *uninitialized* on the unsampled hot
/// path (zeroing 56 bytes per message is measurable); value-initialize
/// (`Span{}`) when you need a blank one.
struct Span {
  std::uint64_t trace_id;
  std::uint64_t start_ns;         ///< monotonic_ns() at phase entry
  std::uint64_t duration_ns;
  Phase phase;
  bool ok;                        ///< false when the phase threw
  char name[30];                  ///< NUL-terminated detail, truncated to fit
};

/// The trace id active on this thread (0 = none). Set by ScopedSpan for the
/// root span of an operation, and by NdrConnection::receive when a traced
/// frame arrives.
std::uint64_t current_trace_id() noexcept;
void set_current_trace_id(std::uint64_t id) noexcept;

/// Allocates a fresh, process-unique 64-bit trace id (SplitMix64 over an
/// atomic sequence — never 0).
std::uint64_t new_trace_id() noexcept;

#ifndef OMF_NO_METRICS

/// Process-wide span sink: a fixed-capacity ring (default 4096 spans,
/// overwriting the oldest) plus the sampling decision for hot paths.
class Tracer {
 public:
  static Tracer& instance();

  /// Master switch; disabled() makes sample() false and record() a no-op.
  /// Static (the tracer is a process singleton) so the hot-path reads below
  /// compile to plain global loads with no init-guard check.
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Marshal/unmarshal spans fire once per `n` messages (rounded up to a
  /// power of two; 1 = every message). Discovery/bind spans ignore this.
  static void set_sample_every(std::uint32_t n) noexcept;
  static std::uint32_t sample_every() noexcept {
    return sample_mask_.load(std::memory_order_relaxed) + 1;
  }

  /// The per-message sampling decision: a thread-local increment and a mask
  /// — no shared-cacheline RMW and no singleton lookup on the skip path.
  /// Each thread runs its own 1-in-N sequence (and samples its first
  /// message).
  static bool sample() noexcept {
    if (!enabled()) return false;
    std::uint32_t mask = sample_mask_.load(std::memory_order_relaxed);
    if (mask == 0) return true;
    static thread_local std::uint32_t seq = 0;
    return (seq++ & mask) == 0;
  }

  /// Appends one span to the ring (no allocation; overwrites the oldest
  /// when full).
  void record(const Span& span) noexcept;

  /// Ring capacity; resizing clears recorded spans.
  void set_capacity(std::size_t spans);

  /// Spans currently in the ring, oldest first.
  std::vector<Span> snapshot() const;

  /// Writes one JSON object per span: {"trace":"%016x","phase":"marshal",
  /// "name":"...","start_ns":N,"dur_ns":N,"ok":true}.
  void export_jsonl(std::ostream& out) const;

  /// Drops recorded spans (capacity and switches unchanged).
  void clear();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();

  static inline std::atomic<bool> enabled_{true};
  static inline std::atomic<std::uint32_t> sample_mask_{63};  // 1 in 64
  mutable std::mutex mutex_;
  std::vector<Span> ring_;
  std::size_t next_ = 0;    // ring write cursor
  std::uint64_t total_ = 0; // spans ever recorded
};

/// RAII phase span. Construct with sampled=false to make it inert (the
/// pattern for hot paths: `ScopedSpan span(phase, name, tracer.sample())`).
/// If no trace id is active on this thread, a fresh one is installed for
/// the span's extent and cleared on exit, so nested phases (e.g. a decode
/// that triggers a plan compile) share the root's id. A span whose scope
/// unwinds via exception records ok=false.
class ScopedSpan {
 public:
  /// The unsampled path is the hot one (decode constructs a span per
  /// message with `sampled = tracer.sample()`), so construction and
  /// destruction inline to a branch; the recording machinery lives
  /// out-of-line in init()/finish().
  ScopedSpan(Phase phase, std::string_view name, bool sampled = true) noexcept {
    if (sampled) init(phase, name);
  }
  ~ScopedSpan() {
    if (active_) finish();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const noexcept { return active_; }
  std::uint64_t trace_id() const noexcept {
    return active_ ? span_.trace_id : 0;
  }

 private:
  void init(Phase phase, std::string_view name) noexcept;
  void finish() noexcept;

  Span span_;  // fields written by init()/finish(); untouched when inactive
  bool active_ = false;
  bool owns_trace_ = false;  // we installed the thread's current trace id
  int exceptions_ = 0;
};

#else  // OMF_NO_METRICS

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }
  static void set_enabled(bool) noexcept {}
  static bool enabled() noexcept { return false; }
  static void set_sample_every(std::uint32_t) noexcept {}
  static std::uint32_t sample_every() noexcept { return 0; }
  static bool sample() noexcept { return false; }
  void record(const Span&) noexcept {}
  void set_capacity(std::size_t) {}
  std::vector<Span> snapshot() const { return {}; }
  void export_jsonl(std::ostream&) const {}
  void clear() {}
};

class ScopedSpan {
 public:
  ScopedSpan(Phase, std::string_view, bool = true) noexcept {}
  bool active() const noexcept { return false; }
  std::uint64_t trace_id() const noexcept { return 0; }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // OMF_NO_METRICS

}  // namespace omf::obs
