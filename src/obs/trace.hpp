// Causal span tracing for a message's journey through the paper's phases.
//
// Every BCM performs discovery, binding, and marshaling (§2); this tracer
// stamps each phase with monotonic timestamps so the per-phase costs the
// paper tabulates are visible in deployment, per message, not just in
// bench/. A span is a fixed-size POD (no allocation on the record path)
// holding a 64-bit trace id, its own span id and parent span id (so spans
// form Dapper-style causal trees), the phase, a short detail string
// (locator, format name), and start/duration in nanoseconds. Spans land in
// a preallocated ring buffer; readers snapshot or export JSONL trace trees
// for offline analysis.
//
// Trace context propagates: the thread-local (trace id, current span id)
// pair set by a ScopedSpan (or explicitly) is carried across NdrConnection
// frames in a 'T'-tagged frame header, appended to format-service 'C'
// conditional fetches, and sent as an X-Omf-Trace header on HTTP origin
// requests — so a receiver's unmarshal span joins the sender's marshal
// span under one id with a true parent link.
//
// Retention is *tail-sampled*: the ring no longer blindly overwrites the
// oldest span. A trace whose span was slow (>= the configurable latency
// threshold) or errored is pinned, as is any trace explicitly marked by an
// event site (circuit-breaker trip, stale serve, replica failover);
// eviction skips pinned traces and reclaims boring ones first, so the ring
// keeps the evidence an incident review needs instead of the last N
// uninteresting messages.
//
// Hot-path discipline: marshal/unmarshal spans are *sampled* (default one
// in 64 messages per thread, power-of-two mask, a thread-local increment on
// the skip path — no shared-cacheline traffic) so steady-state decode pays
// ~no clock reads; discovery and plan-compile spans are always recorded —
// those paths are millisecond-scale and rare. Pin state lives in a fixed
// open-addressed table, so recording and pinning never allocate.
// Building with -DOMF_NO_METRICS compiles all of it out.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string_view>
#include <vector>

#ifndef OMF_NO_METRICS
#include <array>
#include <atomic>
#include <mutex>
#endif

namespace omf::obs {

/// The paper's phase taxonomy, plus transport for frame-level events and
/// `event` for incident annotations attached to a trace by mark_trace().
enum class Phase : std::uint8_t {
  kDiscover = 0,   ///< locating metadata (DiscoveryManager)
  kBind = 1,       ///< metadata -> usable plan (PlanCache compile)
  kMarshal = 2,    ///< native struct -> wire bytes (encode)
  kUnmarshal = 3,  ///< wire bytes -> native struct (decode)
  kTransport = 4,  ///< frame-level send/receive
  kEvent = 5,      ///< zero-duration annotation (breaker trip, stale serve)
};

std::string_view phase_name(Phase p) noexcept;

/// One recorded phase of one traced operation. Fixed-size so ring writes
/// never allocate. Deliberately has no default member initializers:
/// ScopedSpan embeds one that stays *uninitialized* on the unsampled hot
/// path (zeroing 72 bytes per message is measurable); value-initialize
/// (`Span{}`) when you need a blank one.
struct Span {
  std::uint64_t trace_id;
  std::uint64_t span_id;          ///< unique within the process, never 0
  std::uint64_t parent_id;        ///< 0 = root of its trace tree
  std::uint64_t start_ns;         ///< monotonic_ns() at phase entry
  std::uint64_t duration_ns;
  Phase phase;
  bool ok;                        ///< false when the phase threw
  char name[30];                  ///< NUL-terminated detail, truncated to fit
};

/// The trace id active on this thread (0 = none). Set by ScopedSpan for the
/// root span of an operation, and by the transport receive paths when a
/// traced frame/request arrives.
std::uint64_t current_trace_id() noexcept;
void set_current_trace_id(std::uint64_t id) noexcept;

/// The span id new child spans on this thread parent under (0 = none).
/// ScopedSpan pushes its own id for its extent; receive paths install the
/// sender's span id so the first local span becomes the sender's child.
std::uint64_t current_span_id() noexcept;

/// Adopts a propagated trace context: subsequent spans on this thread join
/// `trace_id` as children of `parent_span_id`. (0, 0) clears it.
void set_current_trace(std::uint64_t trace_id,
                       std::uint64_t parent_span_id) noexcept;

/// Allocates a fresh, process-unique 64-bit id (SplitMix64 over an atomic
/// sequence — never 0). Used for both trace ids and span ids.
std::uint64_t new_trace_id() noexcept;

#ifndef OMF_NO_METRICS

/// Process-wide span sink: a fixed-capacity ring (default 4096 spans) with
/// tail-sampled eviction, plus the sampling decision for hot paths.
class Tracer {
 public:
  static Tracer& instance();

  /// Master switch; disabled() makes sample() false and record() a no-op.
  /// Static (the tracer is a process singleton) so the hot-path reads below
  /// compile to plain global loads with no init-guard check.
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Marshal/unmarshal spans fire once per `n` messages (rounded up to a
  /// power of two; 1 = every message). Discovery/bind spans ignore this.
  static void set_sample_every(std::uint32_t n) noexcept;
  static std::uint32_t sample_every() noexcept {
    return sample_mask_.load(std::memory_order_relaxed) + 1;
  }

  /// A completed span at least this slow pins its trace (tail sampling).
  /// Default 10 ms — discovery/network hiccups qualify, per-message decode
  /// never does.
  static void set_latency_threshold_ns(std::uint64_t ns) noexcept {
    latency_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  static std::uint64_t latency_threshold_ns() noexcept {
    return latency_threshold_ns_.load(std::memory_order_relaxed);
  }

  /// The per-message sampling decision: a thread-local increment and a mask
  /// — no shared-cacheline RMW and no singleton lookup on the skip path.
  /// Each thread runs its own 1-in-N sequence (and samples its first
  /// message).
  static bool sample() noexcept {
    if (!enabled()) return false;
    std::uint32_t mask = sample_mask_.load(std::memory_order_relaxed);
    if (mask == 0) return true;
    static thread_local std::uint32_t seq = 0;
    return (seq++ & mask) == 0;
  }

  /// Appends one span to the ring (no allocation). When the ring is full,
  /// eviction scans forward past spans of pinned traces (bounded scan) and
  /// overwrites the first boring span; a span that finished slow or not-ok
  /// pins its own trace.
  void record(const Span& span) noexcept;

  /// Pins `trace_id` (its spans survive eviction) and records a
  /// zero-duration Phase::kEvent span named `reason` attached to the
  /// thread's current span when this thread is inside that trace. The hook
  /// for incident sites: breaker trips, stale serves, replica failovers.
  void mark_trace(std::uint64_t trace_id, std::string_view reason) noexcept;

  /// True when `trace_id` is currently pinned.
  bool trace_pinned(std::uint64_t trace_id) const noexcept;

  /// Ring capacity; resizing clears recorded spans and pins.
  void set_capacity(std::size_t spans);

  /// Spans currently in the ring, oldest first (insertion order; with
  /// pinned traces interleaved where eviction skipped them).
  std::vector<Span> snapshot() const;

  /// Writes one JSON object per span: {"trace":"%016x","span":"%016x",
  /// "parent":"%016x","phase":"marshal","name":"...","start_ns":N,
  /// "dur_ns":N,"ok":true,"pinned":false}.
  void export_jsonl(std::ostream& out) const;

  /// Writes one JSON object per *trace*, spans sorted by start time:
  /// {"trace":"%016x","pinned":true,"spans":[{"span":...,"parent":...,
  /// "phase":...,"name":...,"start_ns":N,"dur_ns":N,"ok":true},...]}.
  /// Traces are ordered by their earliest span.
  void export_trace_trees(std::ostream& out) const;

  /// Drops recorded spans and pins (capacity and switches unchanged).
  void clear();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();

  // Fixed open-addressed pin table (no allocation, bounded cardinality).
  void pin_locked(std::uint64_t trace_id) noexcept;
  bool pinned_locked(std::uint64_t trace_id) const noexcept;

  static inline std::atomic<bool> enabled_{true};
  static inline std::atomic<std::uint32_t> sample_mask_{63};  // 1 in 64
  static inline std::atomic<std::uint64_t> latency_threshold_ns_{10'000'000};

  static constexpr std::size_t kPinSlots = 512;   // power of two
  static constexpr std::size_t kPinProbes = 8;    // probe window per id
  static constexpr std::size_t kEvictScan = 64;   // max pinned spans skipped

  mutable std::mutex mutex_;
  std::vector<Span> ring_;
  std::array<std::uint64_t, kPinSlots> pins_{};   // 0 = empty slot
  std::size_t next_ = 0;     // ring write cursor
  std::uint64_t total_ = 0;  // spans ever recorded
};

/// RAII phase span. Construct with sampled=false to make it inert (the
/// pattern for hot paths: `ScopedSpan span(phase, name, tracer.sample())`).
/// If no trace id is active on this thread, a fresh one is installed for
/// the span's extent and cleared on exit, so nested phases (e.g. a decode
/// that triggers a plan compile) share the root's id; nested ScopedSpans
/// parent under the enclosing span's id. A span whose scope unwinds via
/// exception records ok=false.
class ScopedSpan {
 public:
  /// The unsampled path is the hot one (decode constructs a span per
  /// message with `sampled = tracer.sample()`), so construction and
  /// destruction inline to a branch; the recording machinery lives
  /// out-of-line in init()/finish().
  ScopedSpan(Phase phase, std::string_view name, bool sampled = true) noexcept {
    if (sampled) init(phase, name);
  }
  ~ScopedSpan() {
    if (active_) finish();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const noexcept { return active_; }
  std::uint64_t trace_id() const noexcept {
    return active_ ? span_.trace_id : 0;
  }
  std::uint64_t span_id() const noexcept {
    return active_ ? span_.span_id : 0;
  }

 private:
  void init(Phase phase, std::string_view name) noexcept;
  void finish() noexcept;

  Span span_;  // fields written by init()/finish(); untouched when inactive
  bool active_ = false;
  bool owns_trace_ = false;  // we installed the thread's current trace id
  int exceptions_ = 0;
  std::uint64_t prev_span_ = 0;  // enclosing span id, restored on finish
};

#else  // OMF_NO_METRICS

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }
  static void set_enabled(bool) noexcept {}
  static bool enabled() noexcept { return false; }
  static void set_sample_every(std::uint32_t) noexcept {}
  static std::uint32_t sample_every() noexcept { return 0; }
  static void set_latency_threshold_ns(std::uint64_t) noexcept {}
  static std::uint64_t latency_threshold_ns() noexcept { return 0; }
  static bool sample() noexcept { return false; }
  void record(const Span&) noexcept {}
  void mark_trace(std::uint64_t, std::string_view) noexcept {}
  bool trace_pinned(std::uint64_t) const noexcept { return false; }
  void set_capacity(std::size_t) {}
  std::vector<Span> snapshot() const { return {}; }
  void export_jsonl(std::ostream&) const {}
  void export_trace_trees(std::ostream&) const {}
  void clear() {}
};

class ScopedSpan {
 public:
  ScopedSpan(Phase, std::string_view, bool = true) noexcept {}
  bool active() const noexcept { return false; }
  std::uint64_t trace_id() const noexcept { return 0; }
  std::uint64_t span_id() const noexcept { return 0; }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // OMF_NO_METRICS

}  // namespace omf::obs
