// Exposition: turning the registry and tracer into text.
//
// Two renderings:
//  * render_prometheus — the Prometheus text exposition format (version
//    0.0.4): `# TYPE` comments, mangled names (dots -> underscores, "omf_"
//    prefix), cumulative `_bucket{le="..."}` series for histograms. Served
//    by http::Server's /metrics endpoint and scraped by anything that
//    speaks Prometheus.
//  * render_text — a human-oriented dump of a full StatsSnapshot (metrics,
//    recent spans, last captured errors) used by tools/omf-stat and
//    post-mortem diagnostics.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace omf::obs {

/// Everything observable about the process at one instant: metric values,
/// the tracer's span ring, and the last captured warning/error log lines.
struct StatsSnapshot {
  MetricsSnapshot metrics;
  std::vector<Span> spans;
  std::vector<std::string> recent_errors;
};

/// Captures the process-wide snapshot (registry + tracer + log ring).
StatsSnapshot stats_snapshot();

/// Mangles a dotted metric name into a valid Prometheus metric name:
/// "pbio.plan_cache.hits" -> "omf_pbio_plan_cache_hits".
std::string prometheus_name(const std::string& dotted);

/// Renders a metrics snapshot as Prometheus text (content type
/// "text/plain; version=0.0.4").
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Convenience: snapshot the process registry and render it.
std::string render_prometheus();

/// Human-readable multi-section dump of a StatsSnapshot.
std::string render_text(const StatsSnapshot& snapshot);

}  // namespace omf::obs
