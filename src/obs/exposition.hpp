// Exposition: turning the registry, tracer, and attribution into text.
//
// Renderings:
//  * render_prometheus — the Prometheus text exposition format (version
//    0.0.4): `# HELP`/`# TYPE` comments, mangled names (dots ->
//    underscores, "omf_" prefix), cumulative `_bucket{le="..."}` series
//    for histograms, and the labeled per-{format, peer} attribution
//    families (`omf_attr_*_total{format=...,peer=...}`). Served by
//    http::Server's /metrics endpoint and scraped by anything that speaks
//    Prometheus.
//  * render_text — a human-oriented dump of a full StatsSnapshot (metrics,
//    attribution, recent spans, last captured errors) used by
//    tools/omf-stat and post-mortem diagnostics.
//  * parse_prometheus / render_counter_deltas — the scrape-side half:
//    parses exposition text back into samples and renders per-second
//    counter rates between two scrapes (`omf-stat --watch`).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace omf::obs {

/// Everything observable about the process at one instant: metric values,
/// the attribution family, the tracer's span ring, and the last captured
/// warning/error log lines.
struct StatsSnapshot {
  MetricsSnapshot metrics;
  std::vector<AttrRow> attribution;
  std::vector<Span> spans;
  std::vector<std::string> recent_errors;
};

/// Captures the process-wide snapshot (registry + attribution + tracer +
/// log ring).
StatsSnapshot stats_snapshot();

/// Mangles a dotted metric name into a valid Prometheus metric name:
/// "pbio.plan_cache.hits" -> "omf_pbio_plan_cache_hits".
std::string prometheus_name(const std::string& dotted);

/// Renders a metrics snapshot as Prometheus text (content type
/// "text/plain; version=0.0.4").
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Renders the labeled attribution families as Prometheus text.
std::string render_prometheus_attribution(const std::vector<AttrRow>& rows);

/// Convenience: snapshot the process registry + attribution and render
/// both (what /metrics serves).
std::string render_prometheus();

/// Human-readable multi-section dump of a StatsSnapshot.
std::string render_text(const StatsSnapshot& snapshot);

/// One sample parsed back out of Prometheus exposition text.
struct PromSample {
  double value = 0;
  std::string type;  ///< "counter" | "gauge" | "histogram" | "" (unknown)
};

/// Parses exposition text into name -> sample. Labeled series keep their
/// label block in the name (`omf_attr_bytes_total{format="...",...}`, typed
/// from their family's # TYPE line); histogram component series (_bucket,
/// _sum, _count) appear under their own names with type "histogram".
std::map<std::string, PromSample> parse_prometheus(const std::string& text);

/// Renders per-second rates for every counter whose value advanced between
/// two scrapes `seconds` apart — the body of one `omf-stat --watch` frame.
/// Counters that did not move are omitted; a counter that went backwards
/// (process restart) renders as a reset marker.
std::string render_counter_deltas(const std::map<std::string, PromSample>& prev,
                                  const std::map<std::string, PromSample>& cur,
                                  double seconds);

}  // namespace omf::obs
