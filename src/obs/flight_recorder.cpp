#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace omf::obs {

namespace {

constexpr char kMagic[8] = {'O', 'M', 'F', 'F', 'L', 'T', '1', '\0'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kRecMagic = 0x544C4652u;  // "RFLT" little-endian
constexpr std::size_t kRecHeader = 16;            // magic + len + seq
constexpr std::size_t kRecTrailer = 4;            // crc

std::uint64_t wall_ms_now() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  std::memcpy(p, &v, 4);
}
void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  std::memcpy(p, &v, 8);
}
std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::atomic<FlightRecorder*> g_recorder{nullptr};

void log_tap(std::string_view line) { flight_record("log", line); }

}  // namespace

FlightRecorder::FlightRecorder(const std::string& path,
                               std::size_t capacity_bytes)
    : path_(path),
      capacity_(std::max(capacity_bytes, kMinCapacity)) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw Error("flight recorder: open " + path + ": " +
                std::strerror(errno));
  }
  std::size_t file_size = kHeaderSize + capacity_;
  if (::ftruncate(fd_, static_cast<off_t>(file_size)) != 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("flight recorder: ftruncate " + path + ": " +
                std::strerror(err));
  }
  void* m = ::mmap(nullptr, file_size, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd_, 0);
  if (m == MAP_FAILED) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("flight recorder: mmap " + path + ": " + std::strerror(err));
  }
  map_ = static_cast<std::uint8_t*>(m);
  scratch_.resize(kRecHeader + 17 + 256 + kMaxPayload + kRecTrailer);
  std::memcpy(map_, kMagic, sizeof(kMagic));
  put_u32(map_ + 8, kVersion);
  put_u32(map_ + 12, static_cast<std::uint32_t>(kHeaderSize));
  put_u64(map_ + 16, capacity_);
  put_u64(map_ + 24, 0);  // total
  put_u64(map_ + 32, 0);  // seq
  put_u64(map_ + 40, wall_ms_now());
  std::memset(map_ + 48, 0, kHeaderSize - 48);
}

FlightRecorder::~FlightRecorder() {
  if (map_ != nullptr) {
    ::msync(map_, kHeaderSize + capacity_, MS_ASYNC);
    ::munmap(map_, kHeaderSize + capacity_);
  }
  if (fd_ >= 0) ::close(fd_);
}

void FlightRecorder::store_header_u64(std::size_t offset,
                                      std::uint64_t v) noexcept {
  put_u64(map_ + offset, v);
}

void FlightRecorder::ring_write(std::uint64_t pos, const std::uint8_t* data,
                                std::size_t n) noexcept {
  std::uint64_t off = pos % capacity_;
  std::size_t first = static_cast<std::size_t>(
      std::min<std::uint64_t>(n, capacity_ - off));
  std::memcpy(map_ + kHeaderSize + off, data, first);
  if (first < n) std::memcpy(map_ + kHeaderSize, data + first, n - first);
}

std::uint64_t FlightRecorder::append(std::string_view category,
                                     std::string_view message) noexcept {
  if (category.size() > 255) category = category.substr(0, 255);
  std::size_t text_max = kMaxPayload - 17 - category.size();
  if (message.size() > text_max) message = message.substr(0, text_max);
  std::size_t payload = 17 + category.size() + message.size();
  std::size_t size = kRecHeader + payload + kRecTrailer;

  std::lock_guard lock(mutex_);
  std::uint64_t seq = seq_;
  std::uint8_t* r = scratch_.data();
  put_u32(r, kRecMagic);
  put_u32(r + 4, static_cast<std::uint32_t>(payload));
  put_u64(r + 8, seq);
  put_u64(r + 16, wall_ms_now());
  put_u64(r + 24, monotonic_ns());
  r[32] = static_cast<std::uint8_t>(category.size());
  std::memcpy(r + 33, category.data(), category.size());
  std::memcpy(r + 33 + category.size(), message.data(), message.size());
  // CRC covers everything after the record magic (len, seq, payload).
  put_u32(r + kRecHeader + payload,
          crc32(r + 4, kRecHeader - 4 + payload));

  // Record bytes first, header ack second: a crash between the two leaves
  // an un-acked but CRC-valid record (recover() still finds it); a crash
  // mid-memcpy leaves a CRC-invalid tail that recovery drops.
  ring_write(total_, r, size);
  total_ += size;
  seq_ += 1;
  store_header_u64(24, total_);
  store_header_u64(32, seq_);

  static Counter& records =
      MetricsRegistry::instance().counter("obs.flight.records");
  static Counter& bytes =
      MetricsRegistry::instance().counter("obs.flight.bytes");
  records.add();
  bytes.add(payload);
  return seq;
}

void FlightRecorder::install(const std::string& path,
                             std::size_t capacity_bytes) {
  auto* fresh = new FlightRecorder(path, capacity_bytes);
  FlightRecorder* old = g_recorder.exchange(fresh, std::memory_order_acq_rel);
  set_log_capture_hook(&log_tap);
  fresh->append("flight", "recorder installed");
  delete old;
}

FlightRecorder* FlightRecorder::installed() noexcept {
  static std::once_flag env_once;
  std::call_once(env_once, [] {
    if (g_recorder.load(std::memory_order_acquire) != nullptr) return;
    const char* path = std::getenv("OMF_FLIGHT_RECORDER");
    if (path == nullptr || *path == '\0') return;
    std::size_t bytes = 1u << 20;
    if (const char* sz = std::getenv("OMF_FLIGHT_RECORDER_BYTES")) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(sz, &end, 10);
      if (end != sz && v > 0) bytes = static_cast<std::size_t>(v);
    }
    try {
      install(path, bytes);
    } catch (const Error&) {
      // Black-boxing is best effort; a bad path must not take the process.
    }
  });
  return g_recorder.load(std::memory_order_acquire);
}

void FlightRecorder::uninstall() noexcept {
  set_log_capture_hook(nullptr);
  delete g_recorder.exchange(nullptr, std::memory_order_acq_rel);
}

FlightRecovery FlightRecorder::recover(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw Error("flight recorder: open " + path + ": " +
                std::strerror(errno));
  }
  std::vector<std::uint8_t> file;
  {
    off_t end = ::lseek(fd, 0, SEEK_END);
    if (end < static_cast<off_t>(kHeaderSize)) {
      ::close(fd);
      throw Error("flight recorder: " + path + " is too small to be a ring");
    }
    file.resize(static_cast<std::size_t>(end));
    ::lseek(fd, 0, SEEK_SET);
    std::size_t got = 0;
    while (got < file.size()) {
      ssize_t r = ::read(fd, file.data() + got, file.size() - got);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) break;
      got += static_cast<std::size_t>(r);
    }
    ::close(fd);
    if (got < file.size()) {
      throw Error("flight recorder: short read of " + path);
    }
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw Error("flight recorder: " + path + " has no OMFFLT1 header");
  }
  if (get_u32(file.data() + 8) != kVersion) {
    throw Error("flight recorder: " + path + ": unsupported version");
  }
  std::uint32_t header_size = get_u32(file.data() + 12);
  std::uint64_t capacity = get_u64(file.data() + 16);
  if (header_size < kHeaderSize || capacity == 0 ||
      header_size + capacity > file.size()) {
    throw Error("flight recorder: " + path + ": header geometry is corrupt");
  }

  FlightRecovery out;
  out.capacity = capacity;
  out.header_total = get_u64(file.data() + 24);
  out.header_seq = get_u64(file.data() + 32);

  const std::uint8_t* ring = file.data() + header_size;
  auto ring_at = [&](std::uint64_t off, std::uint8_t* dst, std::size_t n) {
    std::uint64_t o = off % capacity;
    std::size_t first =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, capacity - o));
    std::memcpy(dst, ring + o, first);
    if (first < n) std::memcpy(dst + first, ring, n - first);
  };

  // Byte-scan for CRC-valid records. A torn write, an overwritten older
  // record, or random bytes all fail the CRC; false positives need a
  // 1-in-2^32 collision *and* a sane length, which we accept.
  std::vector<std::uint8_t> rec(kRecHeader + kMaxPayload + kRecTrailer);
  std::uint64_t off = 0;
  while (off < capacity) {
    std::uint8_t head[kRecHeader];
    ring_at(off, head, kRecHeader);
    if (get_u32(head) != kRecMagic) {
      ++off;
      continue;
    }
    std::uint32_t payload = get_u32(head + 4);
    if (payload < 17 || payload > kMaxPayload ||
        kRecHeader + payload + kRecTrailer > capacity) {
      ++off;
      continue;
    }
    std::size_t size = kRecHeader + payload + kRecTrailer;
    ring_at(off, rec.data(), size);
    std::uint32_t want = get_u32(rec.data() + kRecHeader + payload);
    if (crc32(rec.data() + 4, kRecHeader - 4 + payload) != want) {
      ++off;
      continue;
    }
    FlightEvent ev;
    ev.seq = get_u64(rec.data() + 8);
    ev.wall_ms = get_u64(rec.data() + 16);
    ev.mono_ns = get_u64(rec.data() + 24);
    std::size_t cat_len = rec[32];
    if (33 + cat_len <= kRecHeader + payload) {
      ev.category.assign(reinterpret_cast<const char*>(rec.data() + 33),
                         cat_len);
      ev.message.assign(
          reinterpret_cast<const char*>(rec.data() + 33 + cat_len),
          payload - 17 - cat_len);
      out.events.push_back(std::move(ev));
    }
    off += size;
  }

  std::sort(out.events.begin(), out.events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  out.events.erase(std::unique(out.events.begin(), out.events.end(),
                               [](const FlightEvent& a, const FlightEvent& b) {
                                 return a.seq == b.seq;
                               }),
                   out.events.end());
  for (std::size_t i = 1; i < out.events.size(); ++i) {
    out.gaps += out.events[i].seq - out.events[i - 1].seq - 1;
  }
  return out;
}

void flight_record(std::string_view category,
                   std::string_view message) noexcept {
  if (FlightRecorder* r = FlightRecorder::installed()) {
    r->append(category, message);
  }
}

}  // namespace omf::obs
