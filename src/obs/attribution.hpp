// Per-{format id, peer} cost attribution.
//
// The registry's counters answer "how much work is the process doing";
// they cannot answer "which format, from which peer, is costing us". This
// family charges decode nanoseconds, bytes, messages, queue drops, and
// stale serves to a (format id, peer) label pair — the instance-focused
// accounting BSML/Tamayo-style per-binding measurement argues for —
// exposed as labeled Prometheus series (`omf_attr_*_total{format=...,
// peer=...}`) and as the `omf-stat --top` panel.
//
// Cardinality is bounded: label sets are first-come-first-served up to
// max_keys (default 1024); once the bound is hit, new pairs are charged to
// a single overflow bucket (format 0, peer "~overflow") and counted in
// obs.attr.overflow, so a peer spraying format ids cannot grow the map
// without limit. Charges take one shard mutex (16 shards, keyed by label
// hash) — they belong on per-connection / per-batch paths, not inside the
// per-message decode loop (which batches in thread-locals and charges per
// flush).
//
// OMF_NO_METRICS compiles the family down to empty inline no-ops.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef OMF_NO_METRICS
#include <array>
#include <atomic>
#include <map>
#include <mutex>
#endif

namespace omf::obs {

/// One charge (all fields default 0; set what you know).
struct AttrDelta {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t decode_ns = 0;
  std::uint64_t drops = 0;
  std::uint64_t stale_serves = 0;
};

/// One accumulated row of the family.
struct AttrRow {
  std::uint64_t format_id = 0;
  std::string peer;
  AttrDelta totals;
};

#ifndef OMF_NO_METRICS

class Attribution {
 public:
  /// The peer label every over-bound charge collapses into.
  static constexpr std::string_view kOverflowPeer = "~overflow";

  static Attribution& instance();

  /// Adds `d` to the (format_id, peer) cell, creating it if the cardinality
  /// bound allows; otherwise charges the overflow bucket.
  void charge(std::uint64_t format_id, std::string_view peer,
              const AttrDelta& d) noexcept;

  /// Every cell, sorted by (format_id, peer).
  std::vector<AttrRow> snapshot() const;

  /// Cardinality bound (existing cells are kept even if above a new bound).
  void set_max_keys(std::size_t n) noexcept {
    max_keys_.store(n, std::memory_order_relaxed);
  }
  std::size_t max_keys() const noexcept {
    return max_keys_.load(std::memory_order_relaxed);
  }

  /// Drops every cell (tests).
  void reset();

  Attribution(const Attribution&) = delete;
  Attribution& operator=(const Attribution&) = delete;

 private:
  Attribution() = default;

  struct Key {
    std::uint64_t format_id;
    std::string peer;
    bool operator<(const Key& o) const noexcept {
      return format_id != o.format_id ? format_id < o.format_id
                                      : peer < o.peer;
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<Key, AttrDelta> cells;
  };

  static constexpr std::size_t kShards = 16;

  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> keys_{0};
  std::atomic<std::size_t> max_keys_{1024};
};

#else  // OMF_NO_METRICS

class Attribution {
 public:
  static constexpr std::string_view kOverflowPeer = "~overflow";
  static Attribution& instance() {
    static Attribution a;
    return a;
  }
  void charge(std::uint64_t, std::string_view, const AttrDelta&) noexcept {}
  std::vector<AttrRow> snapshot() const { return {}; }
  void set_max_keys(std::size_t) noexcept {}
  std::size_t max_keys() const noexcept { return 0; }
  void reset() {}
};

#endif  // OMF_NO_METRICS

}  // namespace omf::obs
