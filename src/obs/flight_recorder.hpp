// Black-box flight recorder: a crash-surviving ring of recent events.
//
// The chaos and kill -9 scenarios CI exercises leave no evidence behind:
// the warn+ log ring, admission rejects, breaker transitions, and replica
// failovers all live in process memory and die with it. This recorder
// streams those events into a fixed-size mmap'd file so a `kill -9` (or
// any crash) leaves the last N seconds on disk — dirty page-cache pages
// survive process death; only power loss can take them (the same contract
// as the PR 8 journal's page-cache window, minus its fsync, because a
// black box that fsync'd per event would not be allowed near hot paths).
//
// File layout ("OMFFLT1" discipline, torn-tail tolerant like the journal):
//
//   header (64 bytes):
//     [0..8)   magic "OMFFLT1\0"
//     [8..12)  u32 version (1)       [12..16) u32 header size (64)
//     [16..24) u64 ring capacity     [24..32) u64 total bytes written
//     [32..40) u64 next sequence     [40..48) u64 epoch wall-clock ms
//     [48..64) reserved (zero)
//   ring (capacity bytes, records written circularly, byte-wise wrap):
//     u32 record magic | u32 payload len | u64 seq | payload | u32 CRC-32
//     payload: u64 wall ms | u64 mono ns | u8 category len | category | text
//
// The CRC covers (len, seq, payload). append() writes the record bytes
// first and only then advances the header's total/seq — so a record whose
// append() returned is recoverable, and a record torn mid-write simply
// fails its CRC. recover() byte-scans the ring for CRC-valid records and
// orders them by sequence: the torn tail is dropped, every record before
// the tear survives, and wrap-around overwrites show up as a sequence gap
// at the front, not corruption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace omf::obs {

/// One recovered event.
struct FlightEvent {
  std::uint64_t seq = 0;
  std::uint64_t wall_ms = 0;   ///< ms since Unix epoch at append
  std::uint64_t mono_ns = 0;   ///< monotonic_ns() at append
  std::string category;        ///< "log", "admission", "breaker", ...
  std::string message;
};

/// What recover() reconstructs from a flight-recorder file.
struct FlightRecovery {
  std::vector<FlightEvent> events;  ///< sorted by seq, ascending
  std::uint64_t capacity = 0;       ///< ring bytes, from the header
  std::uint64_t header_total = 0;   ///< logical bytes the header acked
  std::uint64_t header_seq = 0;     ///< next sequence the header acked
  std::uint64_t gaps = 0;           ///< missing seqs inside [first, last]
};

class FlightRecorder {
 public:
  static constexpr std::size_t kHeaderSize = 64;
  static constexpr std::size_t kMaxPayload = 4096;  // larger text truncates
  // A ring must hold at least one max-size record, or a single write would
  // lap itself.
  static constexpr std::size_t kMinCapacity = 8192;

  /// Creates (truncating any previous content) an mmap'd ring of
  /// `capacity_bytes` at `path`. Throws omf::Error on I/O failure.
  FlightRecorder(const std::string& path, std::size_t capacity_bytes);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event (thread-safe, never throws, never blocks on I/O —
  /// the kernel owns writeback). Returns the record's sequence number.
  std::uint64_t append(std::string_view category,
                       std::string_view message) noexcept;

  const std::string& path() const noexcept { return path_; }

  /// Installs a process-wide recorder fed by flight_record() and the warn+
  /// log capture hook. Replaces (and destroys) any previous one.
  static void install(const std::string& path, std::size_t capacity_bytes);

  /// The process-wide recorder, or nullptr. The first call consults the
  /// OMF_FLIGHT_RECORDER environment variable (a file path; size override
  /// in OMF_FLIGHT_RECORDER_BYTES) so any omf process can be black-boxed
  /// without a code change.
  static FlightRecorder* installed() noexcept;

  /// Tears down the process-wide recorder (tests).
  static void uninstall() noexcept;

  /// Parses a flight-recorder file offline. Throws omf::Error when the
  /// header is not a valid OMFFLT1 header; torn or overwritten records are
  /// silently dropped (that is the point).
  static FlightRecovery recover(const std::string& path);

 private:
  void store_header_u64(std::size_t offset, std::uint64_t v) noexcept;
  void ring_write(std::uint64_t pos, const std::uint8_t* data,
                  std::size_t n) noexcept;

  std::string path_;
  std::size_t capacity_ = 0;
  int fd_ = -1;
  std::uint8_t* map_ = nullptr;  // kHeaderSize + capacity_ bytes
  std::mutex mutex_;
  std::uint64_t total_ = 0;  // logical bytes written (mirror of header)
  std::uint64_t seq_ = 0;    // next sequence (mirror of header)
  std::vector<std::uint8_t> scratch_;  // record assembly buffer
};

/// Appends to the process-wide recorder; a cheap no-op (one atomic load)
/// when none is installed. The emit hook every event site calls.
void flight_record(std::string_view category, std::string_view message) noexcept;

}  // namespace omf::obs
