#include "obs/trace.hpp"

#include <atomic>
#include <ostream>

#include "obs/metrics.hpp"

namespace omf::obs {

std::string_view phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kDiscover: return "discover";
    case Phase::kBind: return "bind";
    case Phase::kMarshal: return "marshal";
    case Phase::kUnmarshal: return "unmarshal";
    case Phase::kTransport: return "transport";
  }
  return "?";
}

#ifndef OMF_NO_METRICS

namespace {
thread_local std::uint64_t t_current_trace = 0;
}  // namespace

std::uint64_t current_trace_id() noexcept { return t_current_trace; }
void set_current_trace_id(std::uint64_t id) noexcept { t_current_trace = id; }

std::uint64_t new_trace_id() noexcept {
  // SplitMix64 over a process-wide sequence: unique, well-mixed, never 0.
  static std::atomic<std::uint64_t> seq{0};
  std::uint64_t z = (seq.fetch_add(1, std::memory_order_relaxed) + 1) *
                    0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() { ring_.resize(4096); }

void Tracer::set_sample_every(std::uint32_t n) noexcept {
  if (n <= 1) {
    sample_mask_.store(0, std::memory_order_relaxed);
    return;
  }
  std::uint32_t mask = 1;
  while (mask + 1 < n) mask = (mask << 1) | 1;
  sample_mask_.store(mask, std::memory_order_relaxed);
}

void Tracer::record(const Span& span) noexcept {
  if (!enabled()) return;
  static Counter& recorded =
      MetricsRegistry::instance().counter("obs.spans.recorded");
  static Counter& dropped =
      MetricsRegistry::instance().counter("obs.spans.dropped");
  recorded.add();
  std::lock_guard lock(mutex_);
  if (ring_.empty()) return;
  if (total_ >= ring_.size()) dropped.add();  // overwrote the oldest
  ring_[next_] = span;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

void Tracer::set_capacity(std::size_t spans) {
  std::lock_guard lock(mutex_);
  ring_.assign(spans, Span{});
  next_ = 0;
  total_ = 0;
}

std::vector<Span> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Span> out;
  std::size_t n = total_ < ring_.size() ? total_ : ring_.size();
  out.reserve(n);
  // Oldest first: when the ring has wrapped, the oldest span sits at next_.
  std::size_t start = total_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::export_jsonl(std::ostream& out) const {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const Span& s : snapshot()) {
    char id[17];
    for (int i = 0; i < 16; ++i) {
      id[i] = kHex[(s.trace_id >> (60 - 4 * i)) & 0xF];
    }
    id[16] = '\0';
    out << "{\"trace\":\"" << id << "\",\"phase\":\"" << phase_name(s.phase)
        << "\",\"name\":\"";
    for (const char* p = s.name; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') out << '\\';
      out << *p;
    }
    out << "\",\"start_ns\":" << s.start_ns
        << ",\"dur_ns\":" << s.duration_ns
        << ",\"ok\":" << (s.ok ? "true" : "false") << "}\n";
  }
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  next_ = 0;
  total_ = 0;
}

void ScopedSpan::init(Phase phase, std::string_view name) noexcept {
  if (!Tracer::instance().enabled()) return;
  active_ = true;
  if (t_current_trace == 0) {
    t_current_trace = new_trace_id();
    owns_trace_ = true;
  }
  span_.trace_id = t_current_trace;
  span_.phase = phase;
  std::size_t n = name.size() < sizeof(span_.name) - 1 ? name.size()
                                                       : sizeof(span_.name) - 1;
  std::memcpy(span_.name, name.data(), n);
  span_.name[n] = '\0';
  exceptions_ = std::uncaught_exceptions();
  span_.start_ns = monotonic_ns();
}

void ScopedSpan::finish() noexcept {
  span_.duration_ns = monotonic_ns() - span_.start_ns;
  span_.ok = std::uncaught_exceptions() == exceptions_;
  Tracer::instance().record(span_);
  if (owns_trace_) t_current_trace = 0;
}

#else  // OMF_NO_METRICS

std::uint64_t current_trace_id() noexcept { return 0; }
void set_current_trace_id(std::uint64_t) noexcept {}
std::uint64_t new_trace_id() noexcept { return 0; }

#endif  // OMF_NO_METRICS

}  // namespace omf::obs
