#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <ostream>

#include "obs/metrics.hpp"

namespace omf::obs {

std::string_view phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kDiscover: return "discover";
    case Phase::kBind: return "bind";
    case Phase::kMarshal: return "marshal";
    case Phase::kUnmarshal: return "unmarshal";
    case Phase::kTransport: return "transport";
    case Phase::kEvent: return "event";
  }
  return "?";
}

#ifndef OMF_NO_METRICS

namespace {
thread_local std::uint64_t t_current_trace = 0;
thread_local std::uint64_t t_current_span = 0;

void hex16(std::uint64_t v, char out[17]) noexcept {
  static constexpr char kHex[] = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) out[i] = kHex[(v >> (60 - 4 * i)) & 0xF];
  out[16] = '\0';
}

void json_escaped(std::ostream& out, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out << '\\';
    out << *p;
  }
}

void span_fields_json(std::ostream& out, const Span& s) {
  char id[17];
  hex16(s.span_id, id);
  out << "\"span\":\"" << id << "\",\"parent\":\"";
  hex16(s.parent_id, id);
  out << id << "\",\"phase\":\"" << phase_name(s.phase) << "\",\"name\":\"";
  json_escaped(out, s.name);
  out << "\",\"start_ns\":" << s.start_ns << ",\"dur_ns\":" << s.duration_ns
      << ",\"ok\":" << (s.ok ? "true" : "false");
}

}  // namespace

std::uint64_t current_trace_id() noexcept { return t_current_trace; }
void set_current_trace_id(std::uint64_t id) noexcept {
  t_current_trace = id;
  if (id == 0) t_current_span = 0;
}

std::uint64_t current_span_id() noexcept { return t_current_span; }
void set_current_trace(std::uint64_t trace_id,
                       std::uint64_t parent_span_id) noexcept {
  t_current_trace = trace_id;
  t_current_span = trace_id == 0 ? 0 : parent_span_id;
}

std::uint64_t new_trace_id() noexcept {
  // SplitMix64 over a process-wide sequence: unique, well-mixed, never 0.
  static std::atomic<std::uint64_t> seq{0};
  std::uint64_t z = (seq.fetch_add(1, std::memory_order_relaxed) + 1) *
                    0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() { ring_.resize(4096); }

void Tracer::set_sample_every(std::uint32_t n) noexcept {
  if (n <= 1) {
    sample_mask_.store(0, std::memory_order_relaxed);
    return;
  }
  std::uint32_t mask = 1;
  while (mask + 1 < n) mask = (mask << 1) | 1;
  sample_mask_.store(mask, std::memory_order_relaxed);
}

bool Tracer::pinned_locked(std::uint64_t trace_id) const noexcept {
  if (trace_id == 0) return false;
  // Ids are SplitMix64 output, already uniform: probe linearly from the low
  // bits. Insertion may overwrite within the window, so scan the whole
  // window rather than stopping at the first empty slot.
  std::size_t h = static_cast<std::size_t>(trace_id) & (kPinSlots - 1);
  for (std::size_t i = 0; i < kPinProbes; ++i) {
    if (pins_[(h + i) & (kPinSlots - 1)] == trace_id) return true;
  }
  return false;
}

void Tracer::pin_locked(std::uint64_t trace_id) noexcept {
  if (trace_id == 0) return;
  std::size_t h = static_cast<std::size_t>(trace_id) & (kPinSlots - 1);
  for (std::size_t i = 0; i < kPinProbes; ++i) {
    std::uint64_t& slot = pins_[(h + i) & (kPinSlots - 1)];
    if (slot == trace_id) return;
    if (slot == 0) {
      slot = trace_id;
      static Counter& pinned =
          MetricsRegistry::instance().counter("obs.traces.pinned");
      pinned.add();
      return;
    }
  }
  // Probe window full: cardinality bound reached locally. Replace the
  // oldest-ish pin (slot h) so recent incidents win over stale ones.
  pins_[h] = trace_id;
  static Counter& displaced =
      MetricsRegistry::instance().counter("obs.traces.pin_displaced");
  displaced.add();
}

void Tracer::record(const Span& span) noexcept {
  if (!enabled()) return;
  static Counter& recorded =
      MetricsRegistry::instance().counter("obs.spans.recorded");
  static Counter& dropped =
      MetricsRegistry::instance().counter("obs.spans.dropped");
  recorded.add();
  std::lock_guard lock(mutex_);
  if (ring_.empty()) return;
  if (total_ < ring_.size()) {
    ring_[next_] = span;
    next_ = (next_ + 1) % ring_.size();
  } else {
    // Tail sampling: reclaim the first span whose trace is not pinned;
    // after kEvictScan pinned spans in a row give up and overwrite anyway
    // so a pathological pin load can never wedge recording.
    std::size_t slot = next_;
    for (std::size_t i = 0; i + 1 < kEvictScan; ++i) {
      if (!pinned_locked(ring_[slot].trace_id)) break;
      slot = (slot + 1) % ring_.size();
    }
    dropped.add();  // overwrote a recorded span
    ring_[slot] = span;
    next_ = (slot + 1) % ring_.size();
  }
  ++total_;
  // Tail-based pin decision: errored or slow spans make their whole trace
  // worth keeping.
  if (!span.ok ||
      span.duration_ns >= latency_threshold_ns_.load(std::memory_order_relaxed)) {
    pin_locked(span.trace_id);
  }
}

void Tracer::mark_trace(std::uint64_t trace_id,
                        std::string_view reason) noexcept {
  if (trace_id == 0 || !enabled()) return;
  static Counter& marked =
      MetricsRegistry::instance().counter("obs.traces.marked");
  marked.add();
  Span ev{};
  ev.trace_id = trace_id;
  ev.span_id = new_trace_id();
  ev.parent_id = t_current_trace == trace_id ? t_current_span : 0;
  ev.start_ns = monotonic_ns();
  ev.duration_ns = 0;
  ev.phase = Phase::kEvent;
  ev.ok = true;
  std::size_t n = reason.size() < sizeof(ev.name) - 1 ? reason.size()
                                                      : sizeof(ev.name) - 1;
  std::memcpy(ev.name, reason.data(), n);
  ev.name[n] = '\0';
  record(ev);
  std::lock_guard lock(mutex_);
  pin_locked(trace_id);
}

bool Tracer::trace_pinned(std::uint64_t trace_id) const noexcept {
  std::lock_guard lock(mutex_);
  return pinned_locked(trace_id);
}

void Tracer::set_capacity(std::size_t spans) {
  std::lock_guard lock(mutex_);
  ring_.assign(spans, Span{});
  pins_.fill(0);
  next_ = 0;
  total_ = 0;
}

std::vector<Span> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Span> out;
  std::size_t n = total_ < ring_.size() ? total_ : ring_.size();
  out.reserve(n);
  // Roughly oldest first: when the ring has wrapped, start at the write
  // cursor. (Pinned survivors make the order approximate; tree export
  // sorts by timestamp.)
  std::size_t start = total_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::export_jsonl(std::ostream& out) const {
  for (const Span& s : snapshot()) {
    char id[17];
    hex16(s.trace_id, id);
    out << "{\"trace\":\"" << id << "\",";
    span_fields_json(out, s);
    out << ",\"pinned\":" << (trace_pinned(s.trace_id) ? "true" : "false")
        << "}\n";
  }
}

void Tracer::export_trace_trees(std::ostream& out) const {
  std::vector<Span> spans = snapshot();
  std::map<std::uint64_t, std::vector<Span>> by_trace;
  for (const Span& s : spans) by_trace[s.trace_id].push_back(s);
  std::vector<std::pair<std::uint64_t, std::vector<Span>*>> order;
  order.reserve(by_trace.size());
  for (auto& [trace, list] : by_trace) {
    std::sort(list.begin(), list.end(),
              [](const Span& a, const Span& b) {
                return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                : a.span_id < b.span_id;
              });
    order.emplace_back(trace, &list);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.second->front().start_ns < b.second->front().start_ns;
  });
  for (auto& [trace, list] : order) {
    char id[17];
    hex16(trace, id);
    out << "{\"trace\":\"" << id << "\",\"pinned\":"
        << (trace_pinned(trace) ? "true" : "false") << ",\"spans\":[";
    bool first = true;
    for (const Span& s : *list) {
      if (!first) out << ',';
      first = false;
      out << '{';
      span_fields_json(out, s);
      out << '}';
    }
    out << "]}\n";
  }
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  pins_.fill(0);
  next_ = 0;
  total_ = 0;
}

void ScopedSpan::init(Phase phase, std::string_view name) noexcept {
  if (!Tracer::instance().enabled()) return;
  active_ = true;
  if (t_current_trace == 0) {
    t_current_trace = new_trace_id();
    owns_trace_ = true;
  }
  span_.trace_id = t_current_trace;
  span_.span_id = new_trace_id();
  span_.parent_id = t_current_span;
  prev_span_ = t_current_span;
  t_current_span = span_.span_id;
  span_.phase = phase;
  std::size_t n = name.size() < sizeof(span_.name) - 1 ? name.size()
                                                       : sizeof(span_.name) - 1;
  std::memcpy(span_.name, name.data(), n);
  span_.name[n] = '\0';
  exceptions_ = std::uncaught_exceptions();
  span_.start_ns = monotonic_ns();
}

void ScopedSpan::finish() noexcept {
  span_.duration_ns = monotonic_ns() - span_.start_ns;
  span_.ok = std::uncaught_exceptions() == exceptions_;
  Tracer::instance().record(span_);
  t_current_span = prev_span_;
  if (owns_trace_) {
    t_current_trace = 0;
    t_current_span = 0;
  }
}

#else  // OMF_NO_METRICS

std::uint64_t current_trace_id() noexcept { return 0; }
void set_current_trace_id(std::uint64_t) noexcept {}
std::uint64_t current_span_id() noexcept { return 0; }
void set_current_trace(std::uint64_t, std::uint64_t) noexcept {}
std::uint64_t new_trace_id() noexcept { return 0; }

#endif  // OMF_NO_METRICS

}  // namespace omf::obs
