#include "obs/exposition.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace omf::obs {

StatsSnapshot stats_snapshot() {
  StatsSnapshot out;
  out.metrics = MetricsRegistry::instance().snapshot();
  out.spans = Tracer::instance().snapshot();
  out.recent_errors = recent_log_errors();
  return out;
}

std::string prometheus_name(const std::string& dotted) {
  std::string out = "omf_";
  out.reserve(dotted.size() + 4);
  for (char c : dotted) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& c : snapshot.counters) {
    std::string name = prometheus_name(c.name);
    out << "# TYPE " << name << " counter\n" << name << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    std::string name = prometheus_name(g.name);
    out << "# TYPE " << name << " gauge\n" << name << " " << g.value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    std::string name = prometheus_name(h.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    // Collapse the empty tail: emit buckets up to the last nonzero one, so
    // 40 log2 buckets don't become 40 lines of zeros per histogram.
    std::size_t last = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) last = b;
    }
    for (std::size_t b = 0; b <= last && b + 1 < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      out << name << "_bucket{le=\"" << Histogram::le(b) << "\"} "
          << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << name << "_sum " << h.sum << "\n";
    out << name << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string render_prometheus() {
  return render_prometheus(MetricsRegistry::instance().snapshot());
}

std::string render_text(const StatsSnapshot& snapshot) {
  std::ostringstream out;
  std::size_t width = 0;
  for (const auto& c : snapshot.metrics.counters) {
    width = std::max(width, c.name.size());
  }
  for (const auto& g : snapshot.metrics.gauges) {
    width = std::max(width, g.name.size());
  }

  out << "== counters ==\n";
  for (const auto& c : snapshot.metrics.counters) {
    out << "  " << c.name << std::string(width - c.name.size() + 2, ' ')
        << c.value << "\n";
  }
  if (!snapshot.metrics.gauges.empty()) {
    out << "== gauges ==\n";
    for (const auto& g : snapshot.metrics.gauges) {
      out << "  " << g.name << std::string(width - g.name.size() + 2, ' ')
          << g.value << "\n";
    }
  }
  out << "== histograms ==\n";
  for (const auto& h : snapshot.metrics.histograms) {
    double mean =
        h.count == 0 ? 0.0 : static_cast<double>(h.sum) / static_cast<double>(h.count);
    out << "  " << h.name << "  count=" << h.count << " sum=" << h.sum
        << " mean=" << static_cast<std::uint64_t>(mean) << "\n";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      out << "    le " << Histogram::le(b) << ": " << h.buckets[b] << "\n";
    }
  }
  if (!snapshot.spans.empty()) {
    out << "== spans (" << snapshot.spans.size() << ") ==\n";
    for (const Span& s : snapshot.spans) {
      char id[17];
      static constexpr char kHex[] = "0123456789abcdef";
      for (int i = 0; i < 16; ++i) {
        id[i] = kHex[(s.trace_id >> (60 - 4 * i)) & 0xF];
      }
      id[16] = '\0';
      out << "  " << id << "  " << phase_name(s.phase) << "  " << s.name
          << "  " << s.duration_ns << "ns" << (s.ok ? "" : "  FAILED") << "\n";
    }
  }
  if (!snapshot.recent_errors.empty()) {
    out << "== recent errors ==\n";
    for (const std::string& line : snapshot.recent_errors) {
      out << "  " << line << "\n";
    }
  }
  return out.str();
}

}  // namespace omf::obs
