#include "obs/exposition.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/logging.hpp"

namespace omf::obs {

StatsSnapshot stats_snapshot() {
  StatsSnapshot out;
  out.metrics = MetricsRegistry::instance().snapshot();
  out.attribution = Attribution::instance().snapshot();
  out.spans = Tracer::instance().snapshot();
  out.recent_errors = recent_log_errors();
  return out;
}

std::string prometheus_name(const std::string& dotted) {
  std::string out = "omf_";
  out.reserve(dotted.size() + 4);
  for (char c : dotted) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

void emit_meta(std::ostringstream& out, const std::string& prom_name,
               std::string_view dotted, const char* type) {
  std::string_view help = metric_help(dotted);
  if (!help.empty()) out << "# HELP " << prom_name << " " << help << "\n";
  out << "# TYPE " << prom_name << " " << type << "\n";
}

// Prometheus label-value escaping: backslash, quote, newline.
void emit_label_value(std::ostringstream& out, std::string_view v) {
  for (char c : v) {
    if (c == '\\' || c == '"') out << '\\' << c;
    else if (c == '\n') out << "\\n";
    else out << c;
  }
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& c : snapshot.counters) {
    std::string name = prometheus_name(c.name);
    emit_meta(out, name, c.name, "counter");
    out << name << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    std::string name = prometheus_name(g.name);
    emit_meta(out, name, g.name, "gauge");
    out << name << " " << g.value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    std::string name = prometheus_name(h.name);
    emit_meta(out, name, h.name, "histogram");
    std::uint64_t cumulative = 0;
    // Collapse the empty tail: emit buckets up to the last nonzero one, so
    // 40 log2 buckets don't become 40 lines of zeros per histogram.
    std::size_t last = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) last = b;
    }
    for (std::size_t b = 0; b <= last && b + 1 < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      out << name << "_bucket{le=\"" << Histogram::le(b) << "\"} "
          << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << name << "_sum " << h.sum << "\n";
    out << name << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string render_prometheus_attribution(const std::vector<AttrRow>& rows) {
  if (rows.empty()) return {};
  struct Family {
    const char* name;
    const char* help;
    std::uint64_t AttrDelta::* field;
  };
  static constexpr Family kFamilies[] = {
      {"omf_attr_messages_total", "Messages charged to {format, peer}.",
       &AttrDelta::messages},
      {"omf_attr_bytes_total", "Wire bytes charged to {format, peer}.",
       &AttrDelta::bytes},
      {"omf_attr_decode_ns_total",
       "Decode/convert nanoseconds charged to {format, peer}.",
       &AttrDelta::decode_ns},
      {"omf_attr_drops_total", "Queue drops charged to {format, peer}.",
       &AttrDelta::drops},
      {"omf_attr_stale_serves_total",
       "Stale serves charged to {format, peer}.", &AttrDelta::stale_serves},
  };
  std::ostringstream out;
  for (const Family& fam : kFamilies) {
    out << "# HELP " << fam.name << " " << fam.help << "\n";
    out << "# TYPE " << fam.name << " counter\n";
    for (const AttrRow& row : rows) {
      char format_hex[19];
      std::snprintf(format_hex, sizeof(format_hex), "%016llx",
                    static_cast<unsigned long long>(row.format_id));
      out << fam.name << "{format=\"" << format_hex << "\",peer=\"";
      emit_label_value(out, row.peer);
      out << "\"} " << row.totals.*(fam.field) << "\n";
    }
  }
  return out.str();
}

std::string render_prometheus() {
  return render_prometheus(MetricsRegistry::instance().snapshot()) +
         render_prometheus_attribution(Attribution::instance().snapshot());
}

std::string render_text(const StatsSnapshot& snapshot) {
  std::ostringstream out;
  std::size_t width = 0;
  for (const auto& c : snapshot.metrics.counters) {
    width = std::max(width, c.name.size());
  }
  for (const auto& g : snapshot.metrics.gauges) {
    width = std::max(width, g.name.size());
  }

  out << "== counters ==\n";
  for (const auto& c : snapshot.metrics.counters) {
    out << "  " << c.name << std::string(width - c.name.size() + 2, ' ')
        << c.value << "\n";
  }
  if (!snapshot.metrics.gauges.empty()) {
    out << "== gauges ==\n";
    for (const auto& g : snapshot.metrics.gauges) {
      out << "  " << g.name << std::string(width - g.name.size() + 2, ' ')
          << g.value << "\n";
    }
  }
  out << "== histograms ==\n";
  for (const auto& h : snapshot.metrics.histograms) {
    double mean =
        h.count == 0 ? 0.0 : static_cast<double>(h.sum) / static_cast<double>(h.count);
    out << "  " << h.name << "  count=" << h.count << " sum=" << h.sum
        << " mean=" << static_cast<std::uint64_t>(mean) << "\n";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      out << "    le " << Histogram::le(b) << ": " << h.buckets[b] << "\n";
    }
  }
  if (!snapshot.attribution.empty()) {
    out << "== attribution (" << snapshot.attribution.size()
        << " label sets) ==\n";
    for (const AttrRow& row : snapshot.attribution) {
      char format_hex[19];
      std::snprintf(format_hex, sizeof(format_hex), "%016llx",
                    static_cast<unsigned long long>(row.format_id));
      out << "  format=" << format_hex << " peer=" << row.peer
          << "  msgs=" << row.totals.messages << " bytes=" << row.totals.bytes
          << " decode_ns=" << row.totals.decode_ns
          << " drops=" << row.totals.drops
          << " stale=" << row.totals.stale_serves << "\n";
    }
  }
  if (!snapshot.spans.empty()) {
    out << "== spans (" << snapshot.spans.size() << ") ==\n";
    for (const Span& s : snapshot.spans) {
      char id[17];
      static constexpr char kHex[] = "0123456789abcdef";
      for (int i = 0; i < 16; ++i) {
        id[i] = kHex[(s.trace_id >> (60 - 4 * i)) & 0xF];
      }
      id[16] = '\0';
      out << "  " << id << "  " << phase_name(s.phase) << "  " << s.name
          << "  " << s.duration_ns << "ns" << (s.ok ? "" : "  FAILED") << "\n";
    }
  }
  if (!snapshot.recent_errors.empty()) {
    out << "== recent errors ==\n";
    for (const std::string& line : snapshot.recent_errors) {
      out << "  " << line << "\n";
    }
  }
  return out.str();
}

std::map<std::string, PromSample> parse_prometheus(const std::string& text) {
  std::map<std::string, PromSample> out;
  std::map<std::string, std::string> family_type;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <type>"
      std::istringstream meta(line);
      std::string hash, kind, name, type;
      meta >> hash >> kind >> name >> type;
      if (kind == "TYPE") family_type[name] = type;
      continue;
    }
    // "<name>[{labels}] <value>" — the separating space is the first space
    // outside a label block.
    std::size_t i = 0;
    bool in_labels = false;
    while (i < line.size() && (in_labels || line[i] != ' ')) {
      if (line[i] == '{') in_labels = true;
      if (line[i] == '}') in_labels = false;
      ++i;
    }
    if (i == 0 || i >= line.size()) continue;
    std::string name = line.substr(0, i);
    std::string value = line.substr(i + 1);
    PromSample sample;
    if (value == "+Inf") {
      sample.value = 0;
    } else {
      try {
        sample.value = std::stod(value);
      } catch (...) {
        continue;
      }
    }
    // A sample's family is the name up to the label block; histogram
    // component series resolve through their base family's type.
    std::string family = name.substr(0, name.find('{'));
    auto it = family_type.find(family);
    if (it == family_type.end()) {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        std::size_t len = std::strlen(suffix);
        if (family.size() > len &&
            family.compare(family.size() - len, len, suffix) == 0) {
          it = family_type.find(family.substr(0, family.size() - len));
          break;
        }
      }
    }
    if (it != family_type.end()) sample.type = it->second;
    out[name] = sample;
  }
  return out;
}

std::string render_counter_deltas(const std::map<std::string, PromSample>& prev,
                                  const std::map<std::string, PromSample>& cur,
                                  double seconds) {
  if (seconds <= 0) seconds = 1;
  std::ostringstream out;
  std::size_t moved = 0;
  for (const auto& [name, sample] : cur) {
    if (sample.type != "counter") continue;
    auto it = prev.find(name);
    if (it == prev.end()) continue;
    double delta = sample.value - it->second.value;
    if (delta == 0) continue;
    if (delta < 0) {
      out << "  " << name << "  RESET (" << it->second.value << " -> "
          << sample.value << ")\n";
      ++moved;
      continue;
    }
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.1f", delta / seconds);
    out << "  " << name << "  +" << rate << "/s\n";
    ++moved;
  }
  if (moved == 0) out << "  (no counter movement)\n";
  return out.str();
}

}  // namespace omf::obs
