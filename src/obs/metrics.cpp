#include "obs/metrics.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

namespace omf::obs {

namespace {

// The stable instrumentation table (docs/METRICS.md is generated from it;
// README "Observability" points there). Every name is pre-registered at
// registry construction so a fresh process's /metrics scrape sees the full
// surface from startup — a metric a workload never touched reads 0 instead
// of being absent, which keeps dashboards and the acceptance check
// independent of traffic ordering. Keep the table sorted by name.
constexpr MetricInfo kCoreMetrics[] = {
    {"discovery.breaker_skips", "counter",
     "Sources skipped because their circuit breaker was open."},
    {"discovery.cache_hits", "counter",
     "Discoveries served from the metadata cache."},
    {"discovery.fallbacks", "counter",
     "Discoveries that needed a non-primary source."},
    {"discovery.fetch_ns", "histogram",
     "Metadata source fetch latency in nanoseconds."},
    {"discovery.fetches", "counter", "Metadata source fetch attempts."},
    {"discovery.requests", "counter", "Metadata discovery requests."},
    {"discovery.stale_served", "counter",
     "Discoveries served from stale metadata after every source failed."},
    {"fault.breaker.closes", "counter",
     "Circuit breakers closed after a successful half-open probe."},
    {"fault.breaker.rejected", "counter",
     "Calls rejected outright by an open circuit breaker."},
    {"fault.breaker.trips", "counter", "Circuit breakers tripped open."},
    {"fault.retry.exhausted", "counter",
     "Operations that still failed after the final retry."},
    {"fault.retry.retries", "counter",
     "Retries performed by jittered retry policies."},
    {"gateway.converted", "counter",
     "Messages converted between wire formats by the gateway."},
    {"gateway.passed_through", "counter",
     "Messages forwarded by the gateway without conversion."},
    {"http.client.retry_after_waits", "counter",
     "HTTP client waits honoring a server Retry-After."},
    {"http.server.requests", "counter", "HTTP requests served."},
    {"http.server.revalidations", "counter",
     "Conditional HTTP requests answered 304 Not Modified."},
    {"http.server.throttled", "counter",
     "HTTP requests rejected by admission control."},
    {"http.server.traced_requests", "counter",
     "HTTP requests that joined a propagated X-Omf-Trace context."},
    {"obs.attr.overflow", "counter",
     "Attribution charges routed to the overflow bucket (cardinality "
     "bound reached)."},
    {"obs.flight.bytes", "counter",
     "Payload bytes appended to the flight recorder."},
    {"obs.flight.records", "counter",
     "Events appended to the flight recorder."},
    {"obs.spans.dropped", "counter",
     "Spans overwritten by trace-ring eviction."},
    {"obs.spans.recorded", "counter", "Spans recorded into the trace ring."},
    {"obs.traces.marked", "counter",
     "Incident annotations attached to traces via mark_trace."},
    {"obs.traces.pin_displaced", "counter",
     "Trace pins displaced by newer incidents (pin table full)."},
    {"obs.traces.pinned", "counter",
     "Traces pinned by tail sampling (slow, errored, or marked)."},
    {"omf.admission.admitted", "counter",
     "Units (connections, messages) admitted by admission control."},
    {"omf.admission.rejected.bytes", "counter",
     "Admission rejects for byte-rate quota (OMF503)."},
    {"omf.admission.rejected.connections", "counter",
     "Admission rejects for the connection quota (OMF501)."},
    {"omf.admission.rejected.degraded", "counter",
     "Admission rejects while the process was in brownout (OMF504)."},
    {"omf.admission.rejected.rate", "counter",
     "Admission rejects for message-rate quota (OMF502)."},
    {"omf.budget.frame_rejects", "counter",
     "Frame allocations rejected by the memory budget."},
    {"omf.journal.appends", "counter",
     "Records appended to the format-registry journal."},
    {"omf.journal.compactions", "counter", "Journal compactions performed."},
    {"omf.journal.recovered_records", "counter",
     "Journal records replayed at recovery."},
    {"omf.journal.torn_tails", "counter",
     "Torn journal tails truncated at recovery."},
    {"omf.metacache.disk_hit", "counter",
     "Metacache resolves served from the disk tier."},
    {"omf.metacache.disk_installs", "counter",
     "Bundles atomically installed into the disk tier."},
    {"omf.metacache.disk_rejects", "counter",
     "Torn or corrupt disk-tier files rejected at read."},
    {"omf.metacache.evictions", "counter",
     "Memory-tier entries evicted by the LRU."},
    {"omf.metacache.hit", "counter",
     "Metacache resolves served from the memory tier."},
    {"omf.metacache.miss", "counter",
     "Metacache resolves that had to fetch from the origin."},
    {"omf.metacache.revalidate", "counter",
     "Conditional revalidations sent upstream."},
    {"omf.metacache.stale_served", "counter",
     "Metacache resolves served stale (stale-while-revalidate or all "
     "replicas down)."},
    {"omf.replica.failover", "counter",
     "Fetches served by a non-primary replica after failover."},
    {"pbio.arena.chunk_allocs", "counter",
     "DecodeArena chunk allocations (growth events)."},
    {"pbio.arena.chunk_bytes", "counter",
     "Bytes of DecodeArena chunk capacity allocated."},
    {"pbio.decode.batch_messages", "histogram",
     "Messages per decode_batch plan dispatch."},
    {"pbio.decode.batches", "counter", "decode_batch plan dispatches."},
    {"pbio.decode.body_bytes", "histogram",
     "Decoded message body size in bytes."},
    {"pbio.decode.bytes", "counter", "Wire bytes consumed by decode."},
    {"pbio.decode.in_place", "counter",
     "Decodes served by the matched-layout (memcpy) fast path."},
    {"pbio.decode.messages", "counter", "Messages decoded (wire to native)."},
    {"pbio.decode.runs_fused", "counter",
     "Contiguous field runs fused into SIMD kernels."},
    {"pbio.encode.bytes", "counter", "Wire bytes produced by encode."},
    {"pbio.encode.messages", "counter", "Messages encoded (native to wire)."},
    {"pbio.plan_cache.compile_ns", "histogram",
     "Conversion-plan compile latency in nanoseconds."},
    {"pbio.plan_cache.compiles", "counter",
     "Conversion plans compiled (once per key)."},
    {"pbio.plan_cache.hits", "counter", "Conversion-plan cache hits."},
    {"pbio.plan_cache.misses", "counter",
     "Plan cache misses that triggered or waited on a compile."},
    {"transport.backbone.delivered", "counter",
     "Backbone deliveries across all subscribers."},
    {"transport.backbone.overflow_disconnects", "counter",
     "Subscribers disconnected for persistent queue overflow."},
    {"transport.backbone.published", "counter",
     "Messages published to the backbone."},
    {"transport.backbone.shed", "counter",
     "Messages shed by bounded subscriber queues."},
    {"transport.backbone.subscriber_dropped", "counter",
     "Frames dropped across per-subscriber queues (per-peer detail is in "
     "the attribution family)."},
    {"transport.bytes_rx", "counter", "Framed bytes received."},
    {"transport.bytes_tx", "counter", "Framed bytes sent."},
    {"transport.crc_rejects", "counter",
     "Frames dropped for CRC-32 trailer mismatch."},
    {"transport.format_service.fetches", "counter",
     "Format-service fetches served with a bundle."},
    {"transport.format_service.not_modified", "counter",
     "Conditional 'C' fetches answered not-modified."},
    {"transport.format_service.push_rejects", "counter",
     "Format pushes rejected by audit or admission."},
    {"transport.format_service.pushes", "counter",
     "Format pushes accepted into the registry."},
    {"transport.format_service.requests", "counter",
     "Format-service requests handled."},
    {"transport.format_service.retries", "counter",
     "Format-service client request retries."},
    {"transport.format_service.traced_requests", "counter",
     "Format-service requests that carried propagated trace context."},
    {"transport.format_service.unknown_ids", "counter",
     "Fetches for a format id the service does not hold."},
    {"transport.frames_rx", "counter", "Frames received."},
    {"transport.frames_tx", "counter", "Frames sent."},
    {"transport.ndr.formats_rx", "counter", "Format bundles received."},
    {"transport.ndr.formats_tx", "counter", "Format bundles sent."},
    {"transport.ndr.messages_rx", "counter", "NDR messages received."},
    {"transport.ndr.messages_tx", "counter", "NDR messages sent."},
    {"transport.ndr.traced_frames", "counter",
     "'T'-tagged frames carrying (trace id, parent span id) context."},
    {"transport.oversized_rejects", "counter",
     "Frames dropped for exceeding the pre-allocation size bound."},
    {"transport.timeouts", "counter",
     "Transport operations that hit their deadline."},
    // gauges
    {"obs.attr.keys", "gauge",
     "Distinct {format, peer} label sets in the attribution family."},
    {"omf.admission.connections", "gauge",
     "Connections currently admitted."},
    {"omf.budget.degraded", "gauge",
     "1 while the memory budget is in brownout."},
    {"omf.budget.limit_bytes", "gauge",
     "Memory budget limit (0 = unlimited)."},
    {"omf.budget.peak_bytes", "gauge", "Peak bytes charged to the budget."},
    {"omf.budget.used_bytes", "gauge",
     "Bytes currently charged to the budget."},
    {"omf.health.draining", "gauge",
     "1 while shutdown drain is in progress."},
    {"omf.journal.bytes", "gauge", "Format-registry journal file size."},
    {"omf.metacache.memory_bytes", "gauge",
     "Metacache memory-tier bytes charged to the budget."},
    {"pbio.decode.kernel_tier", "gauge",
     "SIMD dispatch tier the decoder selected (0 scalar, 1 sse2, 2 avx2)."},
    {"transport.backbone.queue_depth", "gauge",
     "Total queued frames across backbone subscribers."},
};

}  // namespace

const std::vector<MetricInfo>& core_metrics() {
  static const std::vector<MetricInfo> table = [] {
    std::vector<MetricInfo> v(std::begin(kCoreMetrics),
                              std::end(kCoreMetrics));
    std::sort(v.begin(), v.end(), [](const MetricInfo& a, const MetricInfo& b) {
      return std::string_view(a.name) < std::string_view(b.name);
    });
    return v;
  }();
  return table;
}

std::string_view metric_help(std::string_view name) noexcept {
  for (const MetricInfo& m : core_metrics()) {
    if (name == m.name) return m.help;
  }
  return {};
}

std::string metrics_markdown() {
  std::string out;
  out += "# Metrics\n";
  out +=
      "\nGenerated from the registry's core table "
      "(`omf::obs::core_metrics()`) by `omf-stat --metrics-md`; a tier-1 "
      "test keeps this file in sync — regenerate it instead of editing:\n"
      "\n```sh\nbuild/tools/omf-stat --metrics-md > docs/METRICS.md\n```\n"
      "\nEvery name below is pre-registered at process start, so a fresh "
      "`/metrics` scrape exposes the full table (zero-valued until "
      "traffic arrives). Prometheus names are mangled as `omf_` + dots to "
      "underscores. Per-{format, peer} attribution series "
      "(`omf_attr_*_total`) are labeled and documented in the README's "
      "Observability section.\n";
  out += "\n| name | kind | help |\n|---|---|---|\n";
  for (const MetricInfo& m : core_metrics()) {
    out += "| `";
    out += m.name;
    out += "` | ";
    out += m.kind;
    out += " | ";
    out += m.help;
    out += " |\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

#ifndef OMF_NO_METRICS

MetricsRegistry::MetricsRegistry() {
  for (const MetricInfo& m : core_metrics()) {
    std::string_view kind = m.kind;
    if (kind == "counter") {
      counters_.emplace(m.name, std::make_unique<Counter>());
    } else if (kind == "gauge") {
      gauges_.emplace(m.name, std::make_unique<Gauge>());
    } else {
      histograms_.emplace(m.name, std::make_unique<Histogram>());
    }
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  if (gauges_.find(name) != gauges_.end() ||
      histograms_.find(name) != histograms_.end()) {
    throw std::logic_error("metric name '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  if (counters_.find(name) != counters_.end() ||
      histograms_.find(name) != histograms_.end()) {
    throw std::logic_error("metric name '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  if (counters_.find(name) != counters_.end() ||
      gauges_.find(name) != gauges_.end()) {
    throw std::logic_error("metric name '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.push_back({name, c->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.push_back({name, g->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.buckets.resize(Histogram::kBuckets);
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      row.buckets[b] = h->bucket(b);
    }
    out.histograms.push_back(std::move(row));
  }
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

#else  // OMF_NO_METRICS: the registry is an empty shell handing out dummies.

MetricsRegistry::MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view) {
  static Counter dummy;
  return dummy;
}

Gauge& MetricsRegistry::gauge(std::string_view) {
  static Gauge dummy;
  return dummy;
}

Histogram& MetricsRegistry::histogram(std::string_view) {
  static Histogram dummy;
  return dummy;
}

MetricsSnapshot MetricsRegistry::snapshot() const { return {}; }

void MetricsRegistry::reset_values() {}

#endif  // OMF_NO_METRICS

}  // namespace omf::obs
