#include "obs/metrics.hpp"

#include <stdexcept>

namespace omf::obs {

namespace {

// The stable instrumentation name table (README "Observability"). Names are
// pre-registered at registry construction so a /metrics scrape sees the full
// surface from process start — a metric a workload never touched reads 0
// instead of being absent, which keeps dashboards and the acceptance check
// independent of traffic ordering.
constexpr const char* kCoreCounters[] = {
    "pbio.plan_cache.hits",
    "pbio.plan_cache.misses",
    "pbio.plan_cache.compiles",
    "pbio.decode.messages",
    "pbio.decode.bytes",
    "pbio.decode.in_place",
    "pbio.decode.batches",
    "pbio.decode.runs_fused",
    "pbio.encode.messages",
    "pbio.encode.bytes",
    "pbio.arena.chunk_allocs",
    "pbio.arena.chunk_bytes",
    "discovery.requests",
    "discovery.cache_hits",
    "discovery.fetches",
    "discovery.fallbacks",
    "discovery.stale_served",
    "discovery.breaker_skips",
    "fault.breaker.trips",
    "fault.breaker.closes",
    "fault.breaker.rejected",
    "fault.retry.retries",
    "fault.retry.exhausted",
    "transport.bytes_tx",
    "transport.bytes_rx",
    "transport.frames_tx",
    "transport.frames_rx",
    "transport.crc_rejects",
    "transport.oversized_rejects",
    "transport.timeouts",
    "transport.ndr.messages_tx",
    "transport.ndr.messages_rx",
    "transport.ndr.formats_tx",
    "transport.ndr.formats_rx",
    "transport.ndr.traced_frames",
    "transport.format_service.requests",
    "transport.format_service.fetches",
    "transport.format_service.pushes",
    "transport.format_service.unknown_ids",
    "transport.format_service.retries",
    "transport.format_service.push_rejects",
    "transport.format_service.not_modified",
    "transport.backbone.published",
    "transport.backbone.delivered",
    "transport.backbone.shed",
    "transport.backbone.overflow_disconnects",
    "omf.admission.admitted",
    "omf.admission.rejected.connections",
    "omf.admission.rejected.rate",
    "omf.admission.rejected.bytes",
    "omf.admission.rejected.degraded",
    "omf.budget.frame_rejects",
    "omf.journal.appends",
    "omf.journal.compactions",
    "omf.journal.recovered_records",
    "omf.journal.torn_tails",
    "http.server.requests",
    "http.server.throttled",
    "http.server.revalidations",
    "http.client.retry_after_waits",
    "omf.metacache.hit",
    "omf.metacache.miss",
    "omf.metacache.revalidate",
    "omf.metacache.stale_served",
    "omf.metacache.disk_hit",
    "omf.metacache.disk_installs",
    "omf.metacache.disk_rejects",
    "omf.metacache.evictions",
    "omf.replica.failover",
    "gateway.converted",
    "gateway.passed_through",
    "obs.spans.recorded",
    "obs.spans.dropped",
};

constexpr const char* kCoreHistograms[] = {
    "pbio.plan_cache.compile_ns",
    "pbio.decode.body_bytes",
    "pbio.decode.batch_messages",
    "discovery.fetch_ns",
};

constexpr const char* kCoreGauges[] = {
    "pbio.decode.kernel_tier",
    "transport.backbone.queue_depth",
    "omf.admission.connections",
    "omf.budget.used_bytes",
    "omf.budget.peak_bytes",
    "omf.budget.limit_bytes",
    "omf.budget.degraded",
    "omf.health.draining",
    "omf.journal.bytes",
    "omf.metacache.memory_bytes",
};

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

#ifndef OMF_NO_METRICS

MetricsRegistry::MetricsRegistry() {
  for (const char* name : kCoreCounters) {
    counters_.emplace(name, std::make_unique<Counter>());
  }
  for (const char* name : kCoreHistograms) {
    histograms_.emplace(name, std::make_unique<Histogram>());
  }
  for (const char* name : kCoreGauges) {
    gauges_.emplace(name, std::make_unique<Gauge>());
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  if (gauges_.find(name) != gauges_.end() ||
      histograms_.find(name) != histograms_.end()) {
    throw std::logic_error("metric name '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  if (counters_.find(name) != counters_.end() ||
      histograms_.find(name) != histograms_.end()) {
    throw std::logic_error("metric name '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  if (counters_.find(name) != counters_.end() ||
      gauges_.find(name) != gauges_.end()) {
    throw std::logic_error("metric name '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.push_back({name, c->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.push_back({name, g->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.buckets.resize(Histogram::kBuckets);
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      row.buckets[b] = h->bucket(b);
    }
    out.histograms.push_back(std::move(row));
  }
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

#else  // OMF_NO_METRICS: the registry is an empty shell handing out dummies.

MetricsRegistry::MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view) {
  static Counter dummy;
  return dummy;
}

Gauge& MetricsRegistry::gauge(std::string_view) {
  static Gauge dummy;
  return dummy;
}

Histogram& MetricsRegistry::histogram(std::string_view) {
  static Histogram dummy;
  return dummy;
}

MetricsSnapshot MetricsRegistry::snapshot() const { return {}; }

void MetricsRegistry::reset_values() {}

#endif  // OMF_NO_METRICS

}  // namespace omf::obs
