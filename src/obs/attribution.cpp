#include "obs/attribution.hpp"

#ifndef OMF_NO_METRICS

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/hash.hpp"

namespace omf::obs {

Attribution& Attribution::instance() {
  static Attribution attribution;
  return attribution;
}

namespace {

void accumulate(AttrDelta& cell, const AttrDelta& d) noexcept {
  cell.messages += d.messages;
  cell.bytes += d.bytes;
  cell.decode_ns += d.decode_ns;
  cell.drops += d.drops;
  cell.stale_serves += d.stale_serves;
}

}  // namespace

void Attribution::charge(std::uint64_t format_id, std::string_view peer,
                         const AttrDelta& d) noexcept {
  Fnv1a h;
  h.update(format_id);
  h.update(peer);
  Shard& shard = shards_[h.digest() & (kShards - 1)];
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.cells.find(Key{format_id, std::string(peer)});
    if (it != shard.cells.end()) {
      accumulate(it->second, d);
      return;
    }
    if (keys_.load(std::memory_order_relaxed) <
        max_keys_.load(std::memory_order_relaxed)) {
      accumulate(shard.cells[Key{format_id, std::string(peer)}], d);
      keys_.fetch_add(1, std::memory_order_relaxed);
      static Gauge& keys_gauge =
          MetricsRegistry::instance().gauge("obs.attr.keys");
      keys_gauge.add();
      return;
    }
  }
  // Cardinality bound reached: collapse into the overflow bucket so the
  // family stays bounded no matter what formats/peers show up.
  static Counter& overflow =
      MetricsRegistry::instance().counter("obs.attr.overflow");
  overflow.add();
  Shard& shard0 = shards_[0];
  std::lock_guard lock(shard0.mutex);
  accumulate(shard0.cells[Key{0, std::string(kOverflowPeer)}], d);
}

std::vector<AttrRow> Attribution::snapshot() const {
  std::vector<AttrRow> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, cell] : shard.cells) {
      out.push_back(AttrRow{key.format_id, key.peer, cell});
    }
  }
  std::sort(out.begin(), out.end(), [](const AttrRow& a, const AttrRow& b) {
    return a.format_id != b.format_id ? a.format_id < b.format_id
                                      : a.peer < b.peer;
  });
  return out;
}

void Attribution::reset() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.cells.clear();
  }
  keys_.store(0, std::memory_order_relaxed);
  MetricsRegistry::instance().gauge("obs.attr.keys").reset();
}

}  // namespace omf::obs

#endif  // OMF_NO_METRICS
