// CDR-style codec — the CORBA/IIOP comparator from the paper's related work.
//
// Section 6: "CORBA-based object systems use IIOP as a wire format. IIOP
// attempts to reduce marshalling overhead by adopting a 'reader-makes-
// right' approach with respect to byte order (the actual byte order used
// in a message is specified by a header field). This additional flexibility
// ... allows CORBA to avoid unnecessary byte-swapping in message exchanges
// between homogeneous systems but is not sufficient to allow such message
// exchanges without copying of data at both sender and receiver."
//
// That is exactly what this codec does, placing it between XDR and NDR in
// the design space:
//   * like NDR: sender writes scalars in its native byte order; a header
//     octet tells the receiver whether to swap (usually not);
//   * like XDR: the wire layout is canonical (CDR alignment: every
//     primitive aligned to its size within the stream; strings are
//     length-prefixed and NUL-terminated; sequences carry a count), so
//     both sides still marshal field by field — the copies NDR eliminates.
//
// Driven by the same field metadata as the other codecs. Like XDR, CDR
// carries no format identity; both ends must agree out of band, and both
// ends must use the same scalar widths (exchange between different ABIs is
// what IDL-compiled stubs guaranteed in CORBA).
#pragma once

#include <span>

#include "pbio/arena.hpp"
#include "pbio/format.hpp"
#include "util/buffer.hpp"

namespace omf::cdr {

/// Marshals `data` (native-profile struct per `format`). The first octet
/// of the stream is the byte-order flag (0 = big-endian, 1 = little-endian,
/// per GIOP), followed by CDR-aligned fields; alignment is relative to the
/// start of the stream.
void encode(const pbio::Format& format, const void* data, Buffer& out);

Buffer encode_buffer(const pbio::Format& format, const void* data);

/// Unmarshals into `out_struct` (native layout), swapping only if the
/// sender's byte order differs — reader-makes-right. Returns bytes
/// consumed. Throws DecodeError on truncation.
std::size_t decode(const pbio::Format& format,
                   std::span<const std::uint8_t> bytes, void* out_struct,
                   pbio::DecodeArena& arena);

/// Exact encoded size of `data`.
std::size_t encoded_size(const pbio::Format& format, const void* data);

}  // namespace omf::cdr
