#include "cdr/cdr.hpp"

#include <cstring>

#include "util/error.hpp"

namespace omf::cdr {

using pbio::ArrayKind;
using pbio::Field;
using pbio::FieldClass;
using pbio::Format;

namespace {

// --- Native struct access helpers (see xdr.cpp for rationale) ---------------

std::uint64_t load_native_uint(const std::uint8_t* p, std::size_t size) {
  switch (size) {
    case 1: return *p;
    case 2: { std::uint16_t v; std::memcpy(&v, p, 2); return v; }
    case 4: { std::uint32_t v; std::memcpy(&v, p, 4); return v; }
    default: { std::uint64_t v; std::memcpy(&v, p, 8); return v; }
  }
}

std::int64_t load_native_int(const std::uint8_t* p, std::size_t size) {
  std::uint64_t v = load_native_uint(p, size);
  if (size < 8) {
    std::uint64_t sign_bit = 1ull << (size * 8 - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return static_cast<std::int64_t>(v);
}

std::int64_t read_count_field(const Format& format, const std::uint8_t* src,
                              const Field& array_field) {
  const Field& cf = format.fields()[array_field.count_field_index];
  return cf.type.cls == FieldClass::kInteger
             ? load_native_int(src + cf.offset, cf.size)
             : static_cast<std::int64_t>(
                   load_native_uint(src + cf.offset, cf.size));
}

// --- CDR stream writer --------------------------------------------------------

struct Writer {
  Buffer& out;
  std::size_t base;  // stream start within the buffer

  void align(std::size_t n) {
    std::size_t pos = out.size() - base;
    std::size_t padded = align_up(pos, n);
    if (padded != pos) out.append_zeros(padded - pos);
  }

  /// CDR primitive: aligned to its size, written in host (sender) order —
  /// the copy from struct memory is the marshaling cost being measured.
  void put_scalar(const std::uint8_t* src, std::size_t size) {
    align(size);
    out.append(src, size);
  }

  void put_u32(std::uint32_t v) {
    align(4);
    out.append(&v, 4);  // host order; reader makes right
  }
};

void encode_region(const Format& format, const std::uint8_t* src, Writer& w);

void encode_field(const Format& format, const Field& f,
                  const std::uint8_t* src, Writer& w) {
  const std::uint8_t* base = src + f.offset;
  std::size_t count = 1;
  if (f.type.array == ArrayKind::kStatic) {
    count = f.type.static_count;
  } else if (f.type.array == ArrayKind::kDynamic) {
    std::int64_t n = read_count_field(format, src, f);
    if (n < 0) throw EncodeError("negative count for '" + f.name + "'");
    const std::uint8_t* ptr = nullptr;
    std::memcpy(&ptr, src + f.offset, sizeof(ptr));
    if (n > 0 && ptr == nullptr) {
      throw EncodeError("null dynamic array '" + f.name + "'");
    }
    w.put_u32(static_cast<std::uint32_t>(n));  // CDR sequence count
    base = ptr;
    count = static_cast<std::size_t>(n);
  }

  switch (f.type.cls) {
    case FieldClass::kString: {
      const char* s = nullptr;
      std::memcpy(&s, src + f.offset, sizeof(s));
      if (s == nullptr) {
        // Extension beyond strict CDR (which has no null): length 0.
        w.put_u32(0);
        break;
      }
      // CDR string: uint32 length including NUL, then bytes + NUL.
      std::size_t len = std::strlen(s);
      w.put_u32(static_cast<std::uint32_t>(len + 1));
      if (len != 0) w.out.append(s, len);
      w.out.append_zeros(1);
      break;
    }
    case FieldClass::kNested:
      for (std::size_t i = 0; i < count; ++i) {
        encode_region(*f.subformat, base + i * f.subformat->struct_size(), w);
      }
      break;
    default:
      // Scalar runs are contiguous in both the struct and the stream (CDR
      // aligns each element to its size, so same-size elements pack with no
      // gaps): one aligned block copy, exactly what real CDR marshalers do
      // for arrays between identical representations.
      w.align(f.size);
      w.out.append(base, count * f.size);
      break;
  }
}

void encode_region(const Format& format, const std::uint8_t* src, Writer& w) {
  for (const Field& f : format.fields()) {
    encode_field(format, f, src, w);
  }
}

// --- CDR stream reader ----------------------------------------------------------

struct Reader {
  BufferReader& in;
  std::size_t base;  // position of the stream start
  bool swap;

  void align(std::size_t n) {
    std::size_t pos = in.position() - base;
    std::size_t padded = align_up(pos, n);
    if (padded != pos) in.skip(padded - pos);
  }

  void get_scalar(std::uint8_t* dst, std::size_t size) {
    align(size);
    in.read_into(dst, size);
    if (swap && size > 1) byteswap_inplace(dst, size);
  }

  std::uint32_t get_u32() {
    align(4);
    std::uint32_t v;
    in.read_into(&v, 4);
    if (swap) v = byteswap(v);
    return v;
  }
};

void decode_region(const Format& format, Reader& r, std::uint8_t* dst,
                   pbio::DecodeArena& arena);

void decode_field(const Format& /*format*/, const Field& f, Reader& r,
                  std::uint8_t* dst, pbio::DecodeArena& arena) {
  std::uint8_t* base = dst + f.offset;
  std::size_t count = 1;
  if (f.type.array == ArrayKind::kStatic) {
    count = f.type.static_count;
  } else if (f.type.array == ArrayKind::kDynamic) {
    std::uint32_t n = r.get_u32();
    std::size_t elem = f.type.cls == FieldClass::kNested
                           ? f.subformat->struct_size()
                           : f.size;
    void* mem = nullptr;
    if (n != 0) {
      if (n > r.in.remaining()) {
        throw DecodeError("CDR sequence count exceeds remaining stream");
      }
      mem = arena.allocate(static_cast<std::size_t>(n) * elem,
                           f.type.cls == FieldClass::kNested
                               ? f.subformat->alignment()
                               : 8);
    }
    std::memcpy(dst + f.offset, &mem, sizeof(mem));
    base = static_cast<std::uint8_t*>(mem);
    count = n;
    if (count == 0) return;
  }

  switch (f.type.cls) {
    case FieldClass::kString: {
      std::uint32_t len_with_nul = r.get_u32();
      if (len_with_nul == 0) {
        // Extension beyond strict CDR: length 0 encodes a null pointer.
        const char* null = nullptr;
        std::memcpy(dst + f.offset, &null, sizeof(null));
        break;
      }
      const std::uint8_t* bytes = r.in.read_bytes(len_with_nul);
      if (bytes[len_with_nul - 1] != 0) {
        throw DecodeError("CDR string not NUL-terminated");
      }
      char* out = arena.copy_string(reinterpret_cast<const char*>(bytes),
                                    len_with_nul - 1);
      std::memcpy(dst + f.offset, &out, sizeof(out));
      break;
    }
    case FieldClass::kNested:
      for (std::size_t i = 0; i < count; ++i) {
        decode_region(*f.subformat, r, base + i * f.subformat->struct_size(),
                      arena);
      }
      break;
    default:
      // Reader-makes-right: bulk copy when the sender's order matches (the
      // common homogeneous case), element-wise swap only when it doesn't.
      r.align(f.size);
      r.in.read_into(base, count * f.size);
      if (r.swap && f.size > 1) {
        for (std::size_t i = 0; i < count; ++i) {
          byteswap_inplace(base + i * f.size, f.size);
        }
      }
      break;
  }
}

void decode_region(const Format& format, Reader& r, std::uint8_t* dst,
                   pbio::DecodeArena& arena) {
  for (const Field& f : format.fields()) {
    decode_field(format, f, r, dst, arena);
  }
}

// --- Sizing -------------------------------------------------------------------------

std::size_t region_size(const Format& format, const std::uint8_t* src,
                        std::size_t pos);

std::size_t field_size(const Format& format, const Field& f,
                       const std::uint8_t* src, std::size_t pos) {
  std::size_t start = pos;
  const std::uint8_t* base = src + f.offset;
  std::size_t count = 1;
  if (f.type.array == ArrayKind::kStatic) {
    count = f.type.static_count;
  } else if (f.type.array == ArrayKind::kDynamic) {
    std::int64_t n = read_count_field(format, src, f);
    pos = align_up(pos, 4) + 4;
    const std::uint8_t* ptr = nullptr;
    std::memcpy(&ptr, src + f.offset, sizeof(ptr));
    base = ptr;
    count = n < 0 ? 0 : static_cast<std::size_t>(n);
  }

  switch (f.type.cls) {
    case FieldClass::kString: {
      const char* s = nullptr;
      std::memcpy(&s, src + f.offset, sizeof(s));
      pos = align_up(pos, 4) + 4 + (s == nullptr ? 0 : std::strlen(s) + 1);
      break;
    }
    case FieldClass::kNested:
      for (std::size_t i = 0; i < count; ++i) {
        pos += region_size(*f.subformat,
                           base + i * f.subformat->struct_size(), pos);
      }
      break;
    default:
      for (std::size_t i = 0; i < count; ++i) {
        pos = align_up(pos, f.size) + f.size;
      }
      break;
  }
  return pos - start;
}

std::size_t region_size(const Format& format, const std::uint8_t* src,
                        std::size_t pos) {
  std::size_t start = pos;
  for (const Field& f : format.fields()) {
    pos += field_size(format, f, src, pos);
  }
  return pos - start;
}

}  // namespace

void encode(const Format& format, const void* data, Buffer& out) {
  // GIOP-style flag octet: 1 = little-endian sender.
  std::uint8_t flag = host_byte_order() == ByteOrder::kLittle ? 1 : 0;
  out.append(&flag, 1);
  Writer w{out, out.size()};
  encode_region(format, static_cast<const std::uint8_t*>(data), w);
}

Buffer encode_buffer(const Format& format, const void* data) {
  Buffer out(format.struct_size() + 64);
  encode(format, data, out);
  return out;
}

std::size_t decode(const Format& format, std::span<const std::uint8_t> bytes,
                   void* out_struct, pbio::DecodeArena& arena) {
  BufferReader in(bytes);
  std::uint8_t flag = in.read_int<std::uint8_t>(ByteOrder::kLittle);
  ByteOrder sender =
      flag != 0 ? ByteOrder::kLittle : ByteOrder::kBig;
  Reader r{in, in.position(), sender != host_byte_order()};
  decode_region(format, r, static_cast<std::uint8_t*>(out_struct), arena);
  return in.position();
}

std::size_t encoded_size(const Format& format, const void* data) {
  return 1 + region_size(format, static_cast<const std::uint8_t*>(data), 0);
}

}  // namespace omf::cdr
