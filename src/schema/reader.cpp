#include "schema/reader.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "xml/parser.hpp"

namespace omf::schema {

namespace {

[[noreturn]] void fail(const std::string& what) { throw FormatError(what); }

/// Maps an XSD-namespace local type name to a primitive. The paper's
/// documents use the 1999-draft hyphenated spellings ("unsigned-long");
/// later specs use camelCase ("unsignedLong"); both are accepted.
bool lookup_primitive(std::string_view local, XsdPrimitive& out) {
  struct Entry {
    std::string_view name;
    XsdPrimitive prim;
  };
  static constexpr Entry kTable[] = {
      {"string", XsdPrimitive::kString},
      {"integer", XsdPrimitive::kInt},
      {"int", XsdPrimitive::kInt},
      {"long", XsdPrimitive::kLong},
      {"short", XsdPrimitive::kShort},
      {"byte", XsdPrimitive::kByte},
      {"unsigned-int", XsdPrimitive::kUnsignedInt},
      {"unsignedInt", XsdPrimitive::kUnsignedInt},
      {"unsigned-long", XsdPrimitive::kUnsignedLong},
      {"unsignedLong", XsdPrimitive::kUnsignedLong},
      {"unsigned-short", XsdPrimitive::kUnsignedShort},
      {"unsignedShort", XsdPrimitive::kUnsignedShort},
      {"unsigned-byte", XsdPrimitive::kUnsignedByte},
      {"unsignedByte", XsdPrimitive::kUnsignedByte},
      {"float", XsdPrimitive::kFloat},
      {"double", XsdPrimitive::kDouble},
      {"boolean", XsdPrimitive::kBoolean},
  };
  for (const Entry& e : kTable) {
    if (e.name == local) {
      out = e.prim;
      return true;
    }
  }
  return false;
}

std::string annotation_text(const xml::Node& parent) {
  const xml::Node* ann = parent.first_child_local("annotation");
  if (ann == nullptr) return {};
  const xml::Node* doc = ann->first_child_local("documentation");
  if (doc == nullptr) return {};
  return std::string(trim(doc->text_content()));
}

Occurs parse_occurs(const xml::Node& elem, const std::string& where) {
  auto min_attr = elem.attribute("minOccurs");
  auto max_attr = elem.attribute("maxOccurs");
  Occurs occurs;
  if (!max_attr) {
    return occurs;  // scalar
  }
  std::string_view max = trim(*max_attr);
  if (max == "*" || max == "unbounded") {
    occurs.kind = Occurs::Kind::kDynamicUnbounded;
    return occurs;
  }
  if (auto n = parse_uint(max)) {
    if (*n == 0) fail(where + ": maxOccurs=\"0\" is meaningless");
    if (*n == 1) return occurs;  // scalar
    if (min_attr) {
      auto m = parse_uint(trim(*min_attr));
      if (!m || *m != *n) {
        fail(where + ": fixed-length arrays require minOccurs == maxOccurs");
      }
    }
    occurs.kind = Occurs::Kind::kStatic;
    occurs.count = static_cast<std::size_t>(*n);
    return occurs;
  }
  // A non-numeric, non-wildcard maxOccurs names the count element.
  if (!is_xml_name(max)) {
    fail(where + ": malformed maxOccurs value '" + std::string(max) + "'");
  }
  occurs.kind = Occurs::Kind::kDynamicSized;
  occurs.size_field = std::string(max);
  return occurs;
}

SchemaElement parse_element(const xml::Node& node, const SchemaDocument& doc,
                            const std::string& where) {
  SchemaElement out;
  out.line = node.line();
  out.column = node.column();
  auto name = node.attribute("name");
  if (!name || name->empty()) {
    fail(where + ": element without a name attribute");
  }
  out.name = std::string(*name);

  auto type = node.attribute("type");
  if (!type || type->empty()) {
    fail(where + ": element '" + out.name + "' without a type attribute");
  }

  xml::QName q = xml::split_qname(*type);
  auto uri = node.resolve_namespace(q.prefix);
  bool xsd = uri && is_xsd_namespace(*uri);
  bool omf_ext = uri && *uri == kOmfNamespace;
  if (xsd) {
    if (!lookup_primitive(q.local, out.primitive)) {
      fail(where + ": element '" + out.name + "' has unsupported XML Schema "
           "type 'xsd:" + std::string(q.local) + "'");
    }
    out.is_primitive = true;
  } else if (omf_ext && q.local == "char") {
    out.is_primitive = true;
    out.primitive = XsdPrimitive::kChar;
  } else if (!q.prefix.empty() && (!uri || uri->empty())) {
    fail(where + ": element '" + out.name + "' uses undeclared namespace "
         "prefix '" + std::string(q.prefix) + "'");
  } else if (const SchemaSimpleType* simple =
                 doc.simple_type_named(q.local)) {
    // A derived simple type marshals as its primitive base.
    out.is_primitive = true;
    out.primitive = simple->base;
  } else {
    out.is_primitive = false;
    out.user_type = std::string(q.local);
  }

  out.occurs = parse_occurs(node, where + ": element '" + out.name + "'");

  if (auto default_attr = node.attribute("default")) {
    if (!out.is_primitive || out.primitive == XsdPrimitive::kString ||
        out.occurs.kind != Occurs::Kind::kScalar) {
      fail(where + ": element '" + out.name +
           "': default values are only supported on scalar numeric/char "
           "elements");
    }
    out.default_value = std::string(*default_attr);
  }
  return out;
}

SchemaSimpleType parse_simple_type(const xml::Node& node,
                                   const SchemaDocument& doc) {
  SchemaSimpleType out;
  auto name = node.attribute("name");
  if (!name || name->empty()) {
    fail("simpleType without a name attribute");
  }
  out.name = std::string(*name);
  out.documentation = annotation_text(node);
  std::string where = "simpleType '" + out.name + "'";

  const xml::Node* derivation = node.first_child_local("restriction");
  if (derivation == nullptr) derivation = node.first_child_local("extension");
  if (derivation == nullptr) {
    fail(where + ": expected a restriction or extension child");
  }
  auto base = derivation->attribute("base");
  if (!base || base->empty()) {
    fail(where + ": derivation without a base attribute");
  }
  xml::QName q = xml::split_qname(*base);
  auto uri = derivation->resolve_namespace(q.prefix);
  if (uri && is_xsd_namespace(*uri)) {
    if (!lookup_primitive(q.local, out.base)) {
      fail(where + ": unsupported base type 'xsd:" + std::string(q.local) +
           "'");
    }
  } else if (const SchemaSimpleType* earlier =
                 doc.simple_type_named(q.local)) {
    out.base = earlier->base;  // chains of derivation collapse to the root
  } else {
    fail(where + ": base type '" + std::string(*base) +
         "' is neither an XML Schema primitive nor a previously defined "
         "simpleType");
  }

  // Enumeration facets. Only declaration order matters for the wire
  // mapping (label i <-> value i).
  for (const xml::Node* facet : derivation->children_local("enumeration")) {
    auto value = facet->attribute("value");
    if (!value) {
      fail(where + ": enumeration facet without a value attribute");
    }
    for (const std::string& existing : out.enumeration) {
      if (existing == *value) {
        fail(where + ": duplicate enumeration value '" + std::string(*value) +
             "'");
      }
    }
    out.enumeration.emplace_back(*value);
  }
  if (!out.enumeration.empty() &&
      (out.base == XsdPrimitive::kFloat || out.base == XsdPrimitive::kDouble)) {
    fail(where + ": enumerations of floating-point types are not supported");
  }
  return out;
}

SchemaType parse_complex_type(const xml::Node& node,
                              const SchemaDocument& doc) {
  SchemaType out;
  out.line = node.line();
  out.column = node.column();
  auto name = node.attribute("name");
  if (!name || name->empty()) {
    fail("complexType without a name attribute");
  }
  out.name = std::string(*name);
  out.documentation = annotation_text(node);
  std::string where = "complexType '" + out.name + "'";

  // Elements may be direct children (the paper's 1999-draft style) or
  // wrapped in an xsd:sequence (the final 2001 REC style).
  const xml::Node* container = &node;
  if (const xml::Node* seq = node.first_child_local("sequence")) {
    container = seq;
  }
  for (const xml::Node* child : container->children_local("element")) {
    SchemaElement elem = parse_element(*child, doc, where);
    if (out.element_named(elem.name) != nullptr) {
      fail(where + ": duplicate element name '" + elem.name + "'");
    }
    out.elements.push_back(std::move(elem));
  }
  if (out.elements.empty()) {
    fail(where + ": no elements");
  }

  // Validate size-field references.
  for (const SchemaElement& e : out.elements) {
    if (e.occurs.kind != Occurs::Kind::kDynamicSized) continue;
    const SchemaElement* count = out.element_named(e.occurs.size_field);
    if (count == nullptr) {
      fail(where + ": element '" + e.name + "' sized by missing element '" +
           e.occurs.size_field + "'");
    }
    if (!count->is_primitive || count->occurs.kind != Occurs::Kind::kScalar ||
        count->primitive == XsdPrimitive::kString ||
        count->primitive == XsdPrimitive::kFloat ||
        count->primitive == XsdPrimitive::kDouble) {
      fail(where + ": size element '" + e.occurs.size_field +
           "' must be a scalar integer");
    }
  }
  return out;
}

}  // namespace

bool is_xsd_namespace(std::string_view uri) noexcept {
  return uri == "http://www.w3.org/1999/XMLSchema" ||
         uri == "http://www.w3.org/2000/10/XMLSchema" ||
         uri == "http://www.w3.org/2001/XMLSchema";
}

const SchemaElement* SchemaType::element_named(std::string_view name) const {
  for (const SchemaElement& e : elements) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const SchemaType* SchemaDocument::type_named(std::string_view name) const {
  for (const SchemaType& t : types) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const SchemaSimpleType* SchemaDocument::simple_type_named(
    std::string_view name) const {
  for (const SchemaSimpleType& t : simple_types) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::string primitive_name(XsdPrimitive p) {
  switch (p) {
    case XsdPrimitive::kString: return "xsd:string";
    case XsdPrimitive::kInt: return "xsd:int";
    case XsdPrimitive::kLong: return "xsd:long";
    case XsdPrimitive::kShort: return "xsd:short";
    case XsdPrimitive::kByte: return "xsd:byte";
    case XsdPrimitive::kUnsignedInt: return "xsd:unsignedInt";
    case XsdPrimitive::kUnsignedLong: return "xsd:unsignedLong";
    case XsdPrimitive::kUnsignedShort: return "xsd:unsignedShort";
    case XsdPrimitive::kUnsignedByte: return "xsd:unsignedByte";
    case XsdPrimitive::kFloat: return "xsd:float";
    case XsdPrimitive::kDouble: return "xsd:double";
    case XsdPrimitive::kBoolean: return "xsd:boolean";
    case XsdPrimitive::kChar: return "omf:char";
  }
  return "?";
}

SchemaDocument read_schema(const xml::Document& doc) {
  if (!doc.root) fail("empty document");
  const xml::Node& root = *doc.root;
  if (root.local_name() != "schema") {
    fail("root element is '" + root.name() + "', expected a schema");
  }

  SchemaDocument out;
  out.target_namespace = std::string(root.attribute_or("targetNamespace", ""));
  out.documentation = annotation_text(root);

  // Simple types first: complexType elements may reference them.
  for (const xml::Node* child : root.children_local("simpleType")) {
    SchemaSimpleType simple = parse_simple_type(*child, out);
    if (out.simple_type_named(simple.name) != nullptr) {
      fail("duplicate simpleType '" + simple.name + "'");
    }
    out.simple_types.push_back(std::move(simple));
  }

  for (const xml::Node* child : root.children_local("complexType")) {
    SchemaType type = parse_complex_type(*child, out);
    if (out.type_named(type.name) != nullptr) {
      fail("duplicate complexType '" + type.name + "'");
    }
    if (out.simple_type_named(type.name) != nullptr) {
      fail("'" + type.name + "' is defined as both a simpleType and a "
           "complexType");
    }
    out.types.push_back(std::move(type));
  }
  if (out.types.empty()) {
    fail("schema defines no complexType");
  }
  return out;
}

SchemaDocument read_schema_text(std::string_view text) {
  xml::Document doc = xml::parse(text);
  return read_schema(doc);
}

}  // namespace omf::schema
