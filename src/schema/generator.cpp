#include "schema/generator.hpp"

#include <vector>

#include "schema/reader.hpp"
#include "util/error.hpp"
#include "xml/writer.hpp"

namespace omf::schema {

namespace {

/// Picks the XSD spelling for a scalar field on the format's profile.
std::string xsd_type_for(const pbio::Field& f, const arch::Profile& profile,
                         const std::string& format_name) {
  using pbio::FieldClass;
  switch (f.type.cls) {
    case FieldClass::kString:
      return "xsd:string";
    case FieldClass::kChar:
      return "omf:char";
    case FieldClass::kFloat:
      return f.size == 4 ? "xsd:float" : "xsd:double";
    case FieldClass::kInteger:
      if (f.size == profile.int_size) return "xsd:int";
      if (f.size == profile.long_size) return "xsd:long";
      if (f.size == 2) return "xsd:short";
      if (f.size == 1) return "xsd:byte";
      break;
    case FieldClass::kUnsigned:
      if (f.size == profile.int_size) return "xsd:unsignedInt";
      if (f.size == profile.long_size) return "xsd:unsignedLong";
      if (f.size == 2) return "xsd:unsignedShort";
      if (f.size == 1) return "xsd:unsignedByte";
      break;
    case FieldClass::kNested:
      break;
  }
  throw FormatError("format '" + format_name + "': field '" + f.name +
                    "' (size " + std::to_string(f.size) +
                    ") has no XML Schema spelling on profile '" +
                    profile.name + "'");
}

void collect_formats(const pbio::Format& f,
                     std::vector<const pbio::Format*>& out) {
  for (const pbio::Field& field : f.fields()) {
    if (field.subformat) collect_formats(*field.subformat, out);
  }
  for (const pbio::Format* existing : out) {
    if (existing->id() == f.id()) return;
  }
  out.push_back(&f);
}

void emit_type(const pbio::Format& format, xml::Node& schema_root) {
  xml::Node& type_node = schema_root.append_element("xsd:complexType");
  type_node.set_attribute("name", format.name());
  const arch::Profile& profile = format.profile();

  for (const pbio::Field& f : format.fields()) {
    xml::Node& elem = type_node.append_element("xsd:element");
    elem.set_attribute("name", f.name);
    if (f.type.cls == pbio::FieldClass::kNested) {
      elem.set_attribute("type", f.type.nested_name);
    } else {
      elem.set_attribute("type", xsd_type_for(f, profile, format.name()));
    }
    if (!f.default_text.empty()) {
      elem.set_attribute("default", f.default_text);
    }
    switch (f.type.array) {
      case pbio::ArrayKind::kNone:
        break;
      case pbio::ArrayKind::kStatic:
        elem.set_attribute("minOccurs", std::to_string(f.type.static_count));
        elem.set_attribute("maxOccurs", std::to_string(f.type.static_count));
        break;
      case pbio::ArrayKind::kDynamic:
        elem.set_attribute("minOccurs", "0");
        elem.set_attribute("maxOccurs", f.type.size_field);
        break;
    }
  }
}

}  // namespace

xml::Document generate_schema(const pbio::Format& format,
                              const GenerateOptions& options) {
  xml::Document doc;
  doc.root = xml::make_element("xsd:schema");
  xml::Node& root = *doc.root;
  root.set_attribute("xmlns:xsd", "http://www.w3.org/2001/XMLSchema");
  root.set_attribute("xmlns:omf", std::string(kOmfNamespace));
  if (!options.target_namespace.empty()) {
    root.set_attribute("targetNamespace", options.target_namespace);
  }
  if (!options.documentation.empty()) {
    xml::Node& ann = root.append_element("xsd:annotation");
    xml::Node& text = ann.append_element("xsd:documentation");
    text.append_text(options.documentation);
  }

  std::vector<const pbio::Format*> formats;
  collect_formats(format, formats);
  for (const pbio::Format* f : formats) {
    emit_type(*f, root);
  }
  return doc;
}

std::string generate_schema_text(const pbio::Format& format,
                                 const GenerateOptions& options) {
  return xml::write(generate_schema(format, options));
}

namespace {

std::string occurs_type_name(const SchemaElement& e) {
  return e.is_primitive ? primitive_name(e.primitive) : e.user_type;
}

}  // namespace

xml::Document write_schema_document(const SchemaDocument& doc) {
  xml::Document out;
  out.root = xml::make_element("xsd:schema");
  xml::Node& root = *out.root;
  root.set_attribute("xmlns:xsd", "http://www.w3.org/2001/XMLSchema");
  root.set_attribute("xmlns:omf", std::string(kOmfNamespace));
  if (!doc.target_namespace.empty()) {
    root.set_attribute("targetNamespace", doc.target_namespace);
  }
  if (!doc.documentation.empty()) {
    xml::Node& ann = root.append_element("xsd:annotation");
    ann.append_element("xsd:documentation").append_text(doc.documentation);
  }

  for (const SchemaSimpleType& simple : doc.simple_types) {
    xml::Node& node = root.append_element("xsd:simpleType");
    node.set_attribute("name", simple.name);
    if (!simple.documentation.empty()) {
      xml::Node& ann = node.append_element("xsd:annotation");
      ann.append_element("xsd:documentation")
          .append_text(simple.documentation);
    }
    xml::Node& restriction = node.append_element("xsd:restriction");
    restriction.set_attribute("base", primitive_name(simple.base));
    for (const std::string& value : simple.enumeration) {
      xml::Node& facet = restriction.append_element("xsd:enumeration");
      facet.set_attribute("value", value);
    }
  }

  for (const SchemaType& type : doc.types) {
    xml::Node& node = root.append_element("xsd:complexType");
    node.set_attribute("name", type.name);
    if (!type.documentation.empty()) {
      xml::Node& ann = node.append_element("xsd:annotation");
      ann.append_element("xsd:documentation").append_text(type.documentation);
    }
    for (const SchemaElement& e : type.elements) {
      xml::Node& elem = node.append_element("xsd:element");
      elem.set_attribute("name", e.name);
      elem.set_attribute("type", occurs_type_name(e));
      if (!e.default_value.empty()) {
        elem.set_attribute("default", e.default_value);
      }
      switch (e.occurs.kind) {
        case Occurs::Kind::kScalar:
          break;
        case Occurs::Kind::kStatic:
          elem.set_attribute("minOccurs", std::to_string(e.occurs.count));
          elem.set_attribute("maxOccurs", std::to_string(e.occurs.count));
          break;
        case Occurs::Kind::kDynamicUnbounded:
          elem.set_attribute("maxOccurs", "*");
          break;
        case Occurs::Kind::kDynamicSized:
          elem.set_attribute("minOccurs", "0");
          elem.set_attribute("maxOccurs", e.occurs.size_field);
          break;
      }
    }
  }
  return out;
}

std::string write_schema_text(const SchemaDocument& doc) {
  return xml::write(write_schema_document(doc));
}

}  // namespace omf::schema
