// Schema generation: the inverse of xml2wire.
//
// Turns a registered PBIO format back into an XML Schema metadata document,
// so formats that originated as compiled-in IOField lists can be published
// on a metadata server and discovered by other parties — the "open" half of
// open metadata. Nested subformats are emitted first (dependencies before
// users), and dynamic arrays reference their count element via maxOccurs.
#pragma once

#include <string>

#include "pbio/format.hpp"
#include "schema/model.hpp"
#include "xml/dom.hpp"

namespace omf::schema {

struct GenerateOptions {
  std::string target_namespace = "http://omf.example.org/schemas";
  /// Annotation text placed on the schema element (empty: none).
  std::string documentation;
};

/// Builds a schema document describing `format` (and its nested formats).
/// Throws FormatError if a field's (class, size) pair has no XSD spelling
/// on the format's profile.
xml::Document generate_schema(const pbio::Format& format,
                              const GenerateOptions& options = {});

/// Convenience: generate and serialize to text.
std::string generate_schema_text(const pbio::Format& format,
                                 const GenerateOptions& options = {});

/// Serializes a schema *model* back to an XML document — the inverse of
/// read_schema. Used by tools that transform metadata (e.g. the
/// format-scoping server, which carves audience-specific slices out of a
/// full schema before publishing it).
xml::Document write_schema_document(const SchemaDocument& doc);
std::string write_schema_text(const SchemaDocument& doc);

}  // namespace omf::schema
