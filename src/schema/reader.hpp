// Reads a metadata document (XML Schema subset) into the schema model.
#pragma once

#include <string_view>

#include "schema/model.hpp"
#include "xml/dom.hpp"

namespace omf::schema {

/// True if `uri` is one of the XML Schema namespace URIs we accept (the
/// 1999 draft the paper used, the 2000/10 draft, and the final 2001 REC).
bool is_xsd_namespace(std::string_view uri) noexcept;

/// The OMF extension namespace (currently just the "char" type).
inline constexpr std::string_view kOmfNamespace =
    "http://omf.example.org/schema-ext";

/// Parses a schema DOM into the model. Throws omf::FormatError on schema-
/// level problems (unknown types, duplicate names, bad occurs constraints,
/// dangling size-field references) and accepts documents with or without
/// namespace prefixes on the schema elements.
SchemaDocument read_schema(const xml::Document& doc);

/// Convenience: parse text then read.
SchemaDocument read_schema_text(std::string_view text);

}  // namespace omf::schema
