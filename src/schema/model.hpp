// Model of the paper's XML Schema dialect for message format metadata.
//
// A schema document carries one or more complexType definitions; each
// complexType is a message format whose child elements are the fields, in
// declaration order. Element types are either XML Schema primitives
// (xsd:integer, xsd:string, ...) or the names of previously defined
// complexTypes (composition by nesting). Arrays are expressed through
// minOccurs/maxOccurs, exactly as in the paper:
//
//   maxOccurs="5"            fixed-length array of 5
//   maxOccurs="*"            dynamically-allocated array (a companion count
//                            field is synthesized at registration time)
//   maxOccurs="eta_count"    dynamically-allocated array whose length lives
//                            in the sibling integer element "eta_count"
//
// This module is deliberately independent of PBIO and of any architecture:
// widths are bound later, when xml2wire registers the format for a profile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace omf::schema {

/// XML Schema primitive datatypes we map onto PBIO marshaling classes.
enum class XsdPrimitive : std::uint8_t {
  kString,
  kInt,            ///< xsd:int / xsd:integer — C int on the target profile
  kLong,           ///< xsd:long — C long on the target profile
  kShort,          ///< xsd:short — 2 bytes
  kByte,           ///< xsd:byte — 1 byte
  kUnsignedInt,    ///< xsd:unsignedInt / xsd:unsigned-int
  kUnsignedLong,   ///< xsd:unsignedLong / xsd:unsigned-long
  kUnsignedShort,  ///< xsd:unsignedShort
  kUnsignedByte,   ///< xsd:unsignedByte
  kFloat,          ///< xsd:float — binary32
  kDouble,         ///< xsd:double — binary64
  kBoolean,        ///< xsd:boolean — 1 byte
  kChar,           ///< omf:char extension — raw byte, never sign-converted
};

/// Returns the canonical "xsd:..." (or "omf:char") name of a primitive.
std::string primitive_name(XsdPrimitive p);

/// Cardinality of an element.
struct Occurs {
  enum class Kind : std::uint8_t {
    kScalar,            ///< plain field
    kStatic,            ///< fixed-length array of `count`
    kDynamicUnbounded,  ///< maxOccurs="*" / "unbounded"
    kDynamicSized,      ///< maxOccurs names the count element
  };
  Kind kind = Kind::kScalar;
  std::size_t count = 0;   ///< kStatic
  std::string size_field;  ///< kDynamicSized

  bool operator==(const Occurs&) const = default;
};

/// One element (field) of a complexType.
struct SchemaElement {
  std::string name;
  bool is_primitive = true;
  XsdPrimitive primitive = XsdPrimitive::kInt;
  std::string user_type;  ///< referenced complexType name (!is_primitive)
  Occurs occurs;
  /// XSD `default` attribute: the value a receiver substitutes when a
  /// message's wire format predates this element (empty = zero-fill).
  /// Scalar numeric/char elements only.
  std::string default_value;
  /// 1-based source position of the xsd:element tag (0 if synthesized).
  std::size_t line = 0;
  std::size_t column = 0;
};

/// One complexType (message format).
struct SchemaType {
  std::string name;
  std::string documentation;  ///< from a nested xsd:annotation, if any
  std::vector<SchemaElement> elements;
  /// 1-based source position of the xsd:complexType tag (0 if synthesized).
  std::size_t line = 0;
  std::size_t column = 0;

  const SchemaElement* element_named(std::string_view name) const;
};

/// A named simple type derived from a primitive by restriction or
/// extension (the paper's footnote 1). Facets (min/max, patterns) are
/// recorded for documentation but do not change the wire representation —
/// a restricted xsd:int still marshals as an int.
struct SchemaSimpleType {
  std::string name;
  XsdPrimitive base = XsdPrimitive::kInt;
  std::string documentation;
  /// xsd:enumeration facet values, in declaration order. An enumerated
  /// simple type still marshals as its base primitive; the labels give
  /// applications (and DynamicRecord helpers) the symbolic mapping —
  /// label i corresponds to wire value i for integer bases.
  std::vector<std::string> enumeration;

  /// Index of `label` in the enumeration, or SIZE_MAX.
  std::size_t enum_index(std::string_view label) const {
    for (std::size_t i = 0; i < enumeration.size(); ++i) {
      if (enumeration[i] == label) return i;
    }
    return SIZE_MAX;
  }
};

/// A whole parsed metadata document.
struct SchemaDocument {
  std::string target_namespace;
  std::string documentation;
  std::vector<SchemaType> types;
  std::vector<SchemaSimpleType> simple_types;

  const SchemaType* type_named(std::string_view name) const;
  const SchemaSimpleType* simple_type_named(std::string_view name) const;
};

}  // namespace omf::schema
