#include "fault/faulty.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "transport/net_io.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace omf::fault {

namespace netio = transport::netio;

using namespace std::chrono_literals;

FaultScript chaos_script(std::uint64_t seed, int connections,
                         int frames_per_connection, double fault_rate) {
  Rng rng(seed);
  FaultScript script;
  for (int c = 0; c < connections; ++c) {
    bool fatal = false;
    for (int f = 0; f < frames_per_connection && !fatal; ++f) {
      if (!rng.chance(fault_rate)) continue;
      FaultAction a;
      a.connection = c;
      a.frame = f;
      a.direction = rng.chance(0.5) ? Direction::kServerToClient
                                    : Direction::kClientToServer;
      switch (rng.below(8)) {
        case 0:
        case 1:
        case 2:
          a.kind = FaultKind::kDelay;
          a.delay = std::chrono::milliseconds(1 + rng.below(20));
          break;
        case 3:
        case 4:
          a.kind = FaultKind::kDrop;
          break;
        case 5:
          a.kind = FaultKind::kCorrupt;
          a.corrupt_seed = rng.next() | 1;
          a.corrupt_count = 1 + static_cast<int>(rng.below(4));
          break;
        case 6:
          a.kind = FaultKind::kTruncate;
          a.keep_bytes = rng.below(12);  // inside header or early payload
          fatal = true;
          break;
        default:
          a.kind = FaultKind::kReset;
          fatal = true;
          break;
      }
      // The first client->server frame is the subscribe/publish hello, and
      // the protocol is ack-less: a hello silently swallowed or rejected
      // (drop, corrupt) is indistinguishable from an idle channel, which no
      // amount of client-side retry can detect. Faults that *kill* the
      // connection (truncate, reset) are fair game there — the client sees
      // the failure and re-dials — so remap the undetectable ones to delay.
      if (a.direction == Direction::kClientToServer && f == 0 &&
          (a.kind == FaultKind::kDrop || a.kind == FaultKind::kCorrupt)) {
        a.kind = FaultKind::kDelay;
        a.delay = std::chrono::milliseconds(1 + rng.below(20));
      }
      script.push_back(a);
    }
  }
  return script;
}

// ---------------------------------------------------------------------------
// FaultProxy

FaultProxy::FaultProxy(std::uint16_t upstream_port, FaultScript script)
    : upstream_(upstream_port),
      listener_(0),
      script_(std::move(script)),
      fired_(script_.size(), 0),
      acceptor_([this] { accept_loop(); }) {}

FaultProxy::~FaultProxy() { stop(); }

void FaultProxy::stop() {
  // The acceptor polls with a short deadline and re-checks running_, so it
  // exits on its own; closing the listener only after the join keeps all
  // fd accesses on one thread.
  running_.store(false);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

void FaultProxy::accept_loop() {
  while (running_.load()) {
    transport::TcpConnection conn;
    try {
      conn = listener_.accept(Deadline::after(50ms));
    } catch (const TimeoutError&) {
      continue;  // periodic running_ re-check; stop() relies on this
    } catch (const TransportError&) {
      break;
    }
    if (!conn.valid()) break;
    int client_fd = conn.release_fd();
    int server_fd = -1;
    try {
      server_fd = netio::connect_loopback(upstream_, Deadline::after(5000ms));
    } catch (const Error&) {
      ::close(client_fd);
      continue;  // upstream down; client sees an immediate close
    }
    int index = static_cast<int>(accepted_.fetch_add(1));
    std::lock_guard lock(workers_mutex_);
    workers_.emplace_back([this, client_fd, server_fd, index] {
      relay(client_fd, server_fd, index);
    });
  }
}

void FaultProxy::relay(int client_fd, int server_fd, int conn_index) {
  int frames_c2s = 0;
  int frames_s2c = 0;
  bool open_c2s = true;  // client still sending
  bool open_s2c = true;  // server still sending
  bool kill = false;
  while (!kill && running_.load() && (open_c2s || open_s2c)) {
    pollfd pfds[2];
    pfds[0].fd = client_fd;
    pfds[0].events = static_cast<short>(open_c2s ? POLLIN : 0);
    pfds[0].revents = 0;
    pfds[1].fd = server_fd;
    pfds[1].events = static_cast<short>(open_s2c ? POLLIN : 0);
    pfds[1].revents = 0;
    int rc = ::poll(pfds, 2, 50);  // slice so stop() is honored promptly
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    try {
      if (open_c2s && pfds[0].revents != 0) {
        switch (forward_frame(client_fd, server_fd,
                              Direction::kClientToServer, conn_index,
                              frames_c2s)) {
          case Outcome::kForwarded:
            ++frames_c2s;
            break;
          case Outcome::kEof:
            open_c2s = false;
            ::shutdown(server_fd, SHUT_WR);
            break;
          case Outcome::kKill:
            kill = true;
            break;
          case Outcome::kStall:
            // Stop reading client->server without shutdown: the client's
            // sends back up into full kernel buffers and eventually block.
            open_c2s = false;
            break;
        }
      }
      if (!kill && open_s2c && pfds[1].revents != 0) {
        switch (forward_frame(server_fd, client_fd,
                              Direction::kServerToClient, conn_index,
                              frames_s2c)) {
          case Outcome::kForwarded:
            ++frames_s2c;
            break;
          case Outcome::kEof:
            open_s2c = false;
            ::shutdown(client_fd, SHUT_WR);
            break;
          case Outcome::kKill:
            kill = true;
            break;
          case Outcome::kStall:
            // The stalled-subscriber fault: the server's stream toward this
            // client is never read again (and never closed), so the server
            // discovers the stall only as send backpressure.
            open_s2c = false;
            break;
        }
      }
    } catch (const Error&) {
      kill = true;  // relay I/O failed; tear the pair down
    }
  }
  ::close(client_fd);
  ::close(server_fd);
}

FaultProxy::Outcome FaultProxy::forward_frame(int src_fd, int dst_fd,
                                              Direction dir, int conn_index,
                                              int frame_index) {
  // The peer writes whole frames, so once the header starts arriving the
  // rest follows quickly; this bounds a wedged peer without slicing.
  Deadline deadline = Deadline::after(10000ms);
  std::uint8_t header[4];
  if (!netio::read_exact(src_fd, header, 4, /*eof_ok=*/true, deadline,
                         "proxy read")) {
    return Outcome::kEof;
  }
  std::uint32_t len = load_le<std::uint32_t>(header);
  if (len > (1u << 30)) return Outcome::kKill;  // not our framing; bail out
  std::vector<std::uint8_t> raw(4 + static_cast<std::size_t>(len) + 4);
  std::memcpy(raw.data(), header, 4);
  netio::read_exact(src_fd, raw.data() + 4, raw.size() - 4, /*eof_ok=*/false,
                    deadline, "proxy read");

  std::optional<FaultAction> action = match(dir, conn_index, frame_index);
  if (action) {
    faults_.fetch_add(1);
    switch (action->kind) {
      case FaultKind::kDelay:
        std::this_thread::sleep_for(action->delay);
        break;  // then forward intact
      case FaultKind::kDrop:
        return Outcome::kForwarded;  // the frame "happened"; nobody saw it
      case FaultKind::kCorrupt: {
        Rng rng(action->corrupt_seed);
        // Never the length header: a corrupted length desynchronizes the
        // relay itself. Payload and CRC are fair game.
        std::size_t mutable_bytes = raw.size() - 4;
        for (int i = 0; i < action->corrupt_count && mutable_bytes > 0; ++i) {
          std::size_t pos = 4 + static_cast<std::size_t>(rng.below(mutable_bytes));
          raw[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        }
        break;  // forward the damaged frame
      }
      case FaultKind::kTruncate: {
        std::size_t keep = std::min(action->keep_bytes, raw.size());
        if (keep > 0) {
          netio::write_all(dst_fd, raw.data(), keep, deadline, "proxy write");
        }
        return Outcome::kKill;  // orderly close mid-frame
      }
      case FaultKind::kReset:
        netio::arm_reset_on_close(src_fd);
        netio::arm_reset_on_close(dst_fd);
        return Outcome::kKill;  // close() now RSTs both sides
      case FaultKind::kStall:
        // The matched frame is "stuck in transit" and this direction goes
        // quiet for good; the relay keeps the fds open so neither side
        // observes EOF — only backpressure.
        return Outcome::kStall;
    }
  }
  netio::write_all(dst_fd, raw.data(), raw.size(), deadline, "proxy write");
  return Outcome::kForwarded;
}

std::optional<FaultAction> FaultProxy::match(Direction dir, int conn_index,
                                             int frame_index) {
  std::lock_guard lock(script_mutex_);
  for (std::size_t i = 0; i < script_.size(); ++i) {
    const FaultAction& a = script_[i];
    if (fired_[i]) continue;
    if (a.direction != dir) continue;
    if (a.connection != -1 && a.connection != conn_index) continue;
    if (a.frame != -1 && a.frame != frame_index) continue;
    if (a.frame != -1 || a.connection != -1) fired_[i] = 1;
    return a;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// FaultyConnection

namespace {

/// Serializes `message` exactly as TcpConnection::send would put it on the
/// wire: length, payload, CRC-32.
std::vector<std::uint8_t> raw_frame(const Buffer& message) {
  std::vector<std::uint8_t> raw(4 + message.size() + 4);
  store_le<std::uint32_t>(raw.data(),
                          static_cast<std::uint32_t>(message.size()));
  std::memcpy(raw.data() + 4, message.data(), message.size());
  store_le<std::uint32_t>(raw.data() + 4 + message.size(),
                          crc32(message.data(), message.size()));
  return raw;
}

}  // namespace

FaultyConnection::FaultyConnection(transport::TcpConnection conn,
                                   FaultScript script)
    : conn_(std::move(conn)),
      script_(std::move(script)),
      fired_(script_.size(), 0) {}

std::optional<FaultAction> FaultyConnection::match(Direction dir,
                                                   int frame_index) {
  for (std::size_t i = 0; i < script_.size(); ++i) {
    const FaultAction& a = script_[i];
    if (fired_[i]) continue;
    if (a.direction != dir) continue;
    if (a.connection != -1 && a.connection != 0) continue;
    if (a.frame != -1 && a.frame != frame_index) continue;
    if (a.frame != -1 || a.connection != -1) fired_[i] = 1;
    return a;
  }
  return std::nullopt;
}

void FaultyConnection::send(const Buffer& message) {
  std::optional<FaultAction> action =
      match(Direction::kClientToServer, sends_++);
  if (stalled_tx_) return;  // a stalled endpoint's bytes never leave it
  if (!action) {
    conn_.send(message);
    return;
  }
  ++faults_;
  switch (action->kind) {
    case FaultKind::kDelay:
      std::this_thread::sleep_for(action->delay);
      conn_.send(message);
      return;
    case FaultKind::kDrop:
      return;
    case FaultKind::kCorrupt: {
      std::vector<std::uint8_t> raw = raw_frame(message);
      Rng rng(action->corrupt_seed);
      std::size_t mutable_bytes = raw.size() - 4;
      for (int i = 0; i < action->corrupt_count && mutable_bytes > 0; ++i) {
        std::size_t pos = 4 + static_cast<std::size_t>(rng.below(mutable_bytes));
        raw[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
      netio::write_all(conn_.native_handle(), raw.data(), raw.size(),
                       Deadline::never(), "faulty send");
      return;
    }
    case FaultKind::kTruncate: {
      std::vector<std::uint8_t> raw = raw_frame(message);
      std::size_t keep = std::min(action->keep_bytes, raw.size());
      if (keep > 0) {
        netio::write_all(conn_.native_handle(), raw.data(), keep,
                         Deadline::never(), "faulty send");
      }
      conn_.close();
      return;
    }
    case FaultKind::kReset:
      netio::arm_reset_on_close(conn_.native_handle());
      conn_.close();
      return;
    case FaultKind::kStall:
      stalled_tx_ = true;  // this and every later send is swallowed
      return;
  }
}

std::optional<Buffer> FaultyConnection::receive() {
  std::optional<FaultAction> action =
      match(Direction::kServerToClient, receives_++);
  if (!action) return conn_.receive();
  ++faults_;
  switch (action->kind) {
    case FaultKind::kDelay:
      std::this_thread::sleep_for(action->delay);
      return conn_.receive();
    case FaultKind::kDrop: {
      std::optional<Buffer> skipped = conn_.receive();
      if (!skipped) return std::nullopt;  // peer closed before the drop
      return conn_.receive();
    }
    case FaultKind::kCorrupt:
    case FaultKind::kTruncate:
    case FaultKind::kReset:
      conn_.close();
      throw TransportError("injected receive fault");
    case FaultKind::kStall:
      // This endpoint stops reading for good; to the caller that is a
      // stream that never produces again.
      return std::nullopt;
  }
  return conn_.receive();  // unreachable
}

}  // namespace omf::fault
