// Circuit breaker: stop hammering an endpoint that keeps failing.
//
// Classic three-state machine:
//
//   kClosed    normal operation; failures are counted, and when
//              `failure_threshold` consecutive failures accumulate the
//              breaker trips to kOpen.
//   kOpen      calls are refused without touching the endpoint until
//              `cooldown` has elapsed, then the next allow() moves to
//              kHalfOpen and lets one probe through.
//   kHalfOpen  probes are allowed; `half_open_successes` consecutive
//              successes close the breaker, any failure re-opens it and
//              restarts the cooldown.
//
// Thread-safe; time comes from steady_clock so wall-clock jumps cannot
// wedge an open breaker. Used by the discovery chain to skip remote
// metadata sources that are down (serving stale cache instead) without
// paying a connect timeout on every lookup.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>

namespace omf::fault {

class CircuitBreaker {
public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Config {
    int failure_threshold = 5;                ///< consecutive failures to trip
    std::chrono::milliseconds cooldown{1000};  ///< open -> half-open delay
    int half_open_successes = 1;              ///< probes needed to close
  };

  CircuitBreaker() : CircuitBreaker(Config{}) {}
  explicit CircuitBreaker(Config config) : config_(config) {}

  /// True when a call may proceed. In kOpen, returns false until the
  /// cooldown elapses, at which point the breaker moves to kHalfOpen and
  /// admits probes. Callers must report the outcome via record_success()
  /// or record_failure().
  bool allow();

  /// Reports a successful call. Resets the failure count; in kHalfOpen,
  /// counts toward closing the breaker.
  void record_success();

  /// Reports a failed call. May trip the breaker (kClosed) or re-open it
  /// (kHalfOpen).
  void record_failure();

  State state() const;

  /// Calls refused by allow() while open (diagnostics).
  std::size_t rejected() const;

private:
  using Clock = std::chrono::steady_clock;

  Config config_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int failures_ = 0;          // consecutive, while closed
  int probe_successes_ = 0;   // consecutive, while half-open
  std::size_t rejected_ = 0;
  Clock::time_point opened_at_{};
};

}  // namespace omf::fault
