#include "fault/circuit_breaker.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace omf::fault {

namespace {
struct BreakerMetrics {
  obs::Counter& trips;
  obs::Counter& closes;
  obs::Counter& rejected;
  static const BreakerMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static BreakerMetrics m{reg.counter("fault.breaker.trips"),
                            reg.counter("fault.breaker.closes"),
                            reg.counter("fault.breaker.rejected")};
    return m;
  }
};
}  // namespace

bool CircuitBreaker::allow() {
  std::lock_guard lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Clock::now() - opened_at_ >= config_.cooldown) {
        state_ = State::kHalfOpen;
        probe_successes_ = 0;
        return true;
      }
      ++rejected_;
      BreakerMetrics::get().rejected.add();
      // A request turned away by an open breaker is an anomaly worth
      // keeping whole: pin its trace for the tail sampler.
      obs::Tracer::instance().mark_trace(obs::current_trace_id(),
                                         "breaker.rejected");
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::record_success() {
  std::lock_guard lock(mutex_);
  if (state_ == State::kHalfOpen) {
    if (++probe_successes_ >= config_.half_open_successes) {
      state_ = State::kClosed;
      failures_ = 0;
      BreakerMetrics::get().closes.add();
      obs::flight_record("breaker", "closed after half-open probes");
    }
  } else {
    failures_ = 0;
  }
}

void CircuitBreaker::record_failure() {
  std::lock_guard lock(mutex_);
  if (state_ == State::kHalfOpen) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    BreakerMetrics::get().trips.add();
    obs::flight_record("breaker", "re-opened: half-open probe failed");
    obs::Tracer::instance().mark_trace(obs::current_trace_id(),
                                       "breaker.tripped");
    return;
  }
  if (state_ == State::kClosed && ++failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    BreakerMetrics::get().trips.add();
    obs::flight_record("breaker", "opened after " +
                                      std::to_string(failures_) +
                                      " consecutive failures");
    obs::Tracer::instance().mark_trace(obs::current_trace_id(),
                                       "breaker.tripped");
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

std::size_t CircuitBreaker::rejected() const {
  std::lock_guard lock(mutex_);
  return rejected_;
}

}  // namespace omf::fault
