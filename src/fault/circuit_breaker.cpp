#include "fault/circuit_breaker.hpp"

#include "obs/metrics.hpp"

namespace omf::fault {

namespace {
struct BreakerMetrics {
  obs::Counter& trips;
  obs::Counter& closes;
  obs::Counter& rejected;
  static const BreakerMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static BreakerMetrics m{reg.counter("fault.breaker.trips"),
                            reg.counter("fault.breaker.closes"),
                            reg.counter("fault.breaker.rejected")};
    return m;
  }
};
}  // namespace

bool CircuitBreaker::allow() {
  std::lock_guard lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Clock::now() - opened_at_ >= config_.cooldown) {
        state_ = State::kHalfOpen;
        probe_successes_ = 0;
        return true;
      }
      ++rejected_;
      BreakerMetrics::get().rejected.add();
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::record_success() {
  std::lock_guard lock(mutex_);
  if (state_ == State::kHalfOpen) {
    if (++probe_successes_ >= config_.half_open_successes) {
      state_ = State::kClosed;
      failures_ = 0;
      BreakerMetrics::get().closes.add();
    }
  } else {
    failures_ = 0;
  }
}

void CircuitBreaker::record_failure() {
  std::lock_guard lock(mutex_);
  if (state_ == State::kHalfOpen) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    BreakerMetrics::get().trips.add();
    return;
  }
  if (state_ == State::kClosed && ++failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    BreakerMetrics::get().trips.add();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

std::size_t CircuitBreaker::rejected() const {
  std::lock_guard lock(mutex_);
  return rejected_;
}

}  // namespace omf::fault
