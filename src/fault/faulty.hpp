// Fault injection for the TCP framing transport.
//
// Two instruments, both driven by the same seeded, deterministic
// FaultScript so a chaos run can be replayed byte-for-byte:
//
//   FaultProxy       a transparent man-in-the-middle: listens on its own
//                    port, relays framed traffic to an upstream port, and
//                    perturbs scripted frames in flight — delay, drop,
//                    corrupt (bit flips the CRC must catch), truncate
//                    mid-frame, or reset (RST). Because clients dial the
//                    proxy's port exactly as they would the real server,
//                    this exercises the genuine reconnect/retry paths.
//
//   FaultyConnection a wrapper around one TcpConnection for in-process
//                    tests that don't need a relay: scripted faults are
//                    applied per send()/receive() call index.
//
// Scripts are lists of FaultAction, matched by (connection index, frame
// index, direction). An action with frame == -1 and connection == -1 is
// recurring; all others fire at most once. chaos_script() derives a script
// from a single RNG seed (util/rng.hpp SplitMix64), so CI can sweep fixed
// seeds and any failure reproduces locally from the seed alone.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "transport/tcp.hpp"
#include "util/buffer.hpp"

namespace omf::fault {

enum class FaultKind {
  kDelay,     ///< hold the frame for `delay`, then forward intact
  kDrop,      ///< swallow the frame (silent loss)
  kCorrupt,   ///< flip `corrupt_count` payload/CRC bytes, then forward
  kTruncate,  ///< forward only `keep_bytes` raw bytes, then close
  kReset,     ///< tear the connection down with RST (SO_LINGER 0)
  kStall,     ///< stop reading this direction *without* closing: kernel
              ///< buffers fill until the sender blocks — the slow-loris
              ///< subscriber of the overload suite. Never scheduled by
              ///< chaos_script() (it would wedge latency-sensitive suites);
              ///< scripted explicitly where backpressure is the point.
};

enum class Direction {
  kClientToServer,
  kServerToClient,
};

struct FaultAction {
  FaultKind kind = FaultKind::kDelay;
  Direction direction = Direction::kServerToClient;
  int connection = 0;  ///< proxied-connection index; -1 = any
  int frame = 0;       ///< frame index within (connection, direction); -1 = any

  std::chrono::milliseconds delay{0};  ///< kDelay
  std::size_t keep_bytes = 0;          ///< kTruncate: raw bytes forwarded
  std::uint64_t corrupt_seed = 1;      ///< kCorrupt: position/bit stream
  int corrupt_count = 1;               ///< kCorrupt: bytes flipped
};

using FaultScript = std::vector<FaultAction>;

/// Derives a deterministic script from `seed`: for each of `connections`
/// proxied connections and each of the first `frames_per_connection` frames
/// (either direction), injects a fault with probability `fault_rate`. At
/// most one connection-fatal fault (truncate/reset) is scheduled per
/// connection, since no later frame would survive it anyway.
FaultScript chaos_script(std::uint64_t seed, int connections,
                         int frames_per_connection, double fault_rate = 0.25);

/// Frame-aware TCP relay with scripted fault injection.
///
/// Accepts connections on port(), dials `upstream_port` for each, and
/// relays whole frames (4-byte length | payload | 4-byte CRC) in both
/// directions, applying the script. Orderly EOF on one side is propagated
/// as a half-close; truncate/reset faults kill the proxied pair.
class FaultProxy {
public:
  explicit FaultProxy(std::uint16_t upstream_port, FaultScript script = {});
  ~FaultProxy();
  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Port clients should dial instead of the upstream's.
  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Proxied connections accepted so far.
  std::size_t connections() const noexcept { return accepted_.load(); }

  /// Scripted faults actually applied so far.
  std::size_t faults_injected() const noexcept { return faults_.load(); }

  void stop();

private:
  enum class Outcome { kForwarded, kEof, kKill, kStall };

  void accept_loop();
  void relay(int client_fd, int server_fd, int conn_index);
  Outcome forward_frame(int src_fd, int dst_fd, Direction dir, int conn_index,
                        int frame_index);
  std::optional<FaultAction> match(Direction dir, int conn_index,
                                   int frame_index);

  std::uint16_t upstream_;
  transport::TcpListener listener_;
  FaultScript script_;
  std::vector<char> fired_;  // parallel to script_ (vector<bool> is a trap)
  std::mutex script_mutex_;
  std::atomic<bool> running_{true};
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> faults_{0};
  std::thread acceptor_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

/// In-process fault wrapper around one TcpConnection.
///
/// Actions are matched against the send() / receive() call index (as the
/// `frame` field) with connection index 0. Send-side faults operate on the
/// raw frame bytes (so kCorrupt produces a frame whose CRC check fails at
/// the peer, and kTruncate leaves the peer mid-frame); receive-side
/// supports kDelay and kDrop (discard one frame, deliver the next), while
/// kTruncate/kReset/kCorrupt on the receive side simply kill the
/// connection locally.
class FaultyConnection {
public:
  FaultyConnection(transport::TcpConnection conn, FaultScript script);

  void send(const Buffer& message);
  std::optional<Buffer> receive();

  bool valid() const noexcept { return conn_.valid(); }
  void close() { conn_.close(); }
  std::size_t faults_injected() const noexcept { return faults_; }

  /// The wrapped connection, for timeout/size knobs.
  transport::TcpConnection& wrapped() noexcept { return conn_; }

private:
  std::optional<FaultAction> match(Direction dir, int frame_index);

  transport::TcpConnection conn_;
  FaultScript script_;
  std::vector<char> fired_;
  int sends_ = 0;
  int receives_ = 0;
  std::size_t faults_ = 0;
  bool stalled_tx_ = false;  // kStall fired on the send side
};

}  // namespace omf::fault
