// Message files.
//
// PBIO "provides facilities for encoding application data structures so
// that they may be transmitted in binary form over computer networks or
// written to data files in a heterogeneous computing environment". This is
// the data-file half: an append-only container of NDR messages plus the
// format bundles needed to read them anywhere.
//
// File layout (all integers little-endian):
//   8-byte magic "OMFFILE1"
//   records:  1-byte tag ('F' format bundle | 'M' message)
//             4-byte payload length
//             payload bytes
//
// A writer emits each format's bundle before the first message using it,
// so the file is self-contained: a reader on any machine registers bundles
// as they appear and can convert every message to its own native layout —
// the persistent analogue of the format service.
#pragma once

#include <cstdio>
#include <optional>
#include <set>
#include <string>

#include "pbio/format.hpp"
#include "util/buffer.hpp"

namespace omf::pbio {

class MessageFileWriter {
public:
  /// Creates/truncates `path`. Throws omf::Error on I/O failure.
  explicit MessageFileWriter(const std::string& path);
  ~MessageFileWriter();
  MessageFileWriter(const MessageFileWriter&) = delete;
  MessageFileWriter& operator=(const MessageFileWriter&) = delete;

  /// Appends one message, emitting the format's bundle first if this is
  /// the first message of its format. `format` must describe `wire` (it is
  /// used only for the bundle; the message bytes are written verbatim).
  void write(const Format& format, const Buffer& wire);

  /// Convenience: encode + write.
  void write_struct(const Format& format, const void* data);

  /// Flushes and closes; subsequent writes throw. Called by the destructor.
  void close();

  std::size_t messages_written() const noexcept { return messages_; }

private:
  void put_record(char tag, const std::uint8_t* payload, std::size_t len);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::set<FormatId> emitted_;
  std::size_t messages_ = 0;
};

class MessageFileReader {
public:
  /// Opens `path` and registers embedded format bundles into `registry` as
  /// they are encountered. Throws omf::Error on open failure or bad magic.
  MessageFileReader(const std::string& path, FormatRegistry& registry);
  ~MessageFileReader();
  MessageFileReader(const MessageFileReader&) = delete;
  MessageFileReader& operator=(const MessageFileReader&) = delete;

  /// Next message in file order (bundles are consumed transparently);
  /// nullopt at end of file. Throws DecodeError on corrupt records.
  std::optional<Buffer> next();

  std::size_t messages_read() const noexcept { return messages_; }

private:
  std::FILE* file_ = nullptr;
  FormatRegistry* registry_;
  std::size_t messages_ = 0;
};

}  // namespace omf::pbio
