// Receiver-side conversion plans.
//
// The original PBIO generated native machine code on the fly (via DRISC) to
// convert an incoming wire format into the receiver's native layout. This
// reproduction keeps the architectural property that matters — conversion
// logic is *compiled once* per (wire format, native format) pair after
// discovery, cached, and then executed per message — using a compact op
// program instead of JIT-ed machine code (portable, no executable-page
// tricks). Plan compilation performs the same optimizations PBIO's code
// generator did implicitly: field matching by name, byte-order analysis,
// and coalescing of adjacent no-conversion fields into single block copies.
//
// Plans also implement PBIO's restricted format evolution: fields present in
// the native format but missing from the wire format are zero-filled; wire
// fields unknown to the receiver are skipped.
#pragma once

#include <memory>
#include <vector>

#include "pbio/arena.hpp"
#include "pbio/format.hpp"

namespace omf::pbio {

class ConversionPlan;
using PlanHandle = std::shared_ptr<const ConversionPlan>;

/// Plan-compilation switches. All default on; each can be disabled
/// independently for the ablation benchmarks that measure what the
/// corresponding optimization buys.
struct PlanOptions {
  /// Merge adjacent no-conversion fields into single block copies.
  bool coalesce = true;
  /// Resolve element-converting ops to type-specialized kernel functions
  /// (selected once at plan build, the moral equivalent of PBIO's DRISC
  /// code generation) instead of the interpreted per-element dispatch.
  bool specialize = true;
  /// Fuse adjacent converting fields of the same element shape (class,
  /// widths, byte order) into single RunOps, so a run of N int32 fields
  /// executes as one N-element kernel call instead of N dispatches.
  bool fuse_runs = true;
  /// Let kernel selection pick SIMD implementations (SSE2/AVX2, per
  /// arch::simd_tier()) for byte-swap and widen/narrow runs. Off = the
  /// portable scalar specialized kernels, the PR 1 baseline.
  bool simd = true;
  /// Require a bounds certificate before the plan is served from a
  /// PlanCache: after compilation the cache invokes the process-wide
  /// verifier hook (analysis::install_plan_verifier registers the
  /// interval-domain certifier) and rejects the plan if certification
  /// fails — or if no verifier is installed (fail closed). Off by default;
  /// trust boundaries (core::Context, core::Gateway) turn it on.
  bool verify = false;

  friend bool operator==(const PlanOptions&, const PlanOptions&) = default;

  /// Dense encoding for cache keys.
  std::uint8_t bits() const noexcept {
    return static_cast<std::uint8_t>((coalesce ? 1 : 0) | (specialize ? 2 : 0) |
                                     (fuse_runs ? 4 : 0) | (simd ? 8 : 0) |
                                     (verify ? 16 : 0));
  }

  /// The PR 1 configuration: specialized per-field kernels, no run fusion,
  /// no SIMD — the ablation baseline batched decode is measured against.
  static PlanOptions per_field() noexcept {
    return PlanOptions{true, true, false, false};
  }
};

/// A type-specialized element-conversion loop: converts `count` elements
/// from `src` to `dst`. Element widths, byte order, and signedness are baked
/// into the function itself at plan-build time.
using ScalarKernel = void (*)(const std::uint8_t* src, std::uint8_t* dst,
                              std::size_t count);

/// The portable scalar specialized kernel for an element shape — exactly
/// what a plan built with `PlanOptions::simd` off dispatches. Exposed so the
/// SIMD/scalar equivalence oracle (analysis/verify_kernels, `omf-verify
/// --kernels`) can run every vector kernel against its scalar ground truth.
/// Widths outside {1,2,4,8} (floats: {4,8}) return nullptr.
ScalarKernel select_scalar_kernel(bool is_float, std::size_t src_size,
                                  std::size_t dst_size, bool swap,
                                  bool sign_extend) noexcept;

/// One step of a conversion plan.
///
/// An op whose `fused_fields` exceeds 1 is a **RunOp**: the plan-build
/// fusion pass proved that `fused_fields` adjacent fields share one element
/// shape and are contiguous in both the wire and the native layout, and
/// merged them into a single kCopy (raw-copy run), kInt/kFloat (bswap or
/// widen/narrow run), or kZero (zero-fill run) whose `count` spans the whole
/// run. Execution is unchanged — a RunOp is just an op with a bigger count —
/// but dispatch cost drops from per-field to per-run, and the run lengths
/// are what make the SIMD kernels pay.
struct ConvOp {
  enum class Kind : std::uint8_t {
    kCopy,          ///< raw block copy of `count` bytes
    kInt,           ///< integer resize/swap, `count` elements
    kFloat,         ///< float32/float64 convert/swap, `count` elements
    kString,        ///< materialize a string from the variable section
    kDynArray,      ///< materialize a dynamic array from the variable section
    kNestedStatic,  ///< run `subplan` on `count` embedded elements
    kZero,          ///< zero `count` bytes (field absent from wire format)
    kDefault,       ///< field absent from wire format, schema default applies:
                    ///< store `default_bits` into dst_size bytes
  };

  Kind kind = Kind::kCopy;
  std::uint32_t src_offset = 0;  ///< within the source region
  std::uint32_t dst_offset = 0;  ///< within the destination struct
  std::uint32_t src_size = 0;    ///< element size in the wire format
  std::uint32_t dst_size = 0;    ///< element size in the native format
  std::uint32_t count = 1;       ///< elements (kCopy/kZero: bytes)
  std::uint32_t zero_tail = 0;   ///< bytes zeroed after dst elements (shrunk arrays)
  bool swap = false;             ///< byte orders differ
  bool sign_extend = false;      ///< source integer is signed

  // kDynArray only: where to find the element count in the source region.
  std::uint32_t src_count_offset = 0;
  std::uint8_t src_count_size = 0;
  bool src_count_signed = false;
  FieldClass elem_class = FieldClass::kInteger;
  std::uint8_t dst_align = 1;  ///< arena alignment for the materialized array
  std::uint64_t default_bits = 0;  ///< kDefault: precomputed native value

  /// Source fields this op covers; >1 marks a fused RunOp (see above).
  std::uint16_t fused_fields = 1;

  /// Index (into the wire format's fields()) of the source field this op
  /// reads — the run head for fused RunOps. kNoSrcField for ops with no
  /// wire counterpart (kZero, kDefault). Plan metadata for the auditors and
  /// the bounds verifier: diagnostics name the exact field an access
  /// belongs to instead of inferring it from offsets.
  static constexpr std::uint32_t kNoSrcField = 0xFFFFFFFF;
  std::uint32_t src_field = kNoSrcField;

  PlanHandle subplan;  ///< kNestedStatic / kDynArray-of-nested

  /// Specialized conversion loop for kInt/kFloat ops and for the scalar
  /// elements of kDynArray ops; nullptr when the plan was built with
  /// `PlanOptions::specialize` off (the interpreted path runs instead) or
  /// when the op needs no element conversion.
  ScalarKernel kernel = nullptr;
};

/// A compiled wire→native conversion program.
class ConversionPlan {
public:
  /// Compiles a plan converting `wire` records into `native` records.
  /// Throws FormatError when the formats cannot be reconciled (field class
  /// mismatch, static vs dynamic array mismatch, nested format mismatch)
  /// or when the metadata carries scalar widths outside {1,2,4,8}.
  static PlanHandle build(FormatHandle wire, FormatHandle native,
                          PlanOptions options);

  /// Back-compat convenience: `coalesce` maps to PlanOptions::coalesce with
  /// kernel specialization on.
  static PlanHandle build(FormatHandle wire, FormatHandle native,
                          bool coalesce = true) {
    return build(std::move(wire), std::move(native),
                 PlanOptions{coalesce, /*specialize=*/true});
  }

  /// Converts one record. `body`/`body_len` delimit the wire body (the
  /// space variable-section offsets refer to); `src_region` is the wire
  /// struct copy being converted (the body itself at top level, an embedded
  /// or variable-section element during recursion); `dst_region` receives
  /// native-layout bytes. Strings and dynamic arrays are materialized in
  /// `arena`. Throws DecodeError on truncated or inconsistent wire data.
  void execute(const std::uint8_t* body, std::size_t body_len,
               const std::uint8_t* src_region, std::uint8_t* dst_region,
               DecodeArena& arena) const;

  /// Converts `n` top-level messages that all use this plan in one pass.
  /// `srcs[i]`/`src_lens[i]` delimit message i's wire *body* (struct copy at
  /// offset 0, variable section after it — what Decoder hands execute());
  /// `dsts[i]` receives the native struct. Each body must be at least the
  /// wire struct size (DecodeError otherwise — the same length check the
  /// single-message path performs before execute()).
  ///
  /// The op program is walked once per batch, not once per message: each op
  /// dispatches one kernel/copy loop across all n messages, which amortizes
  /// dispatch exactly the way the per-element kernels amortized per-element
  /// dispatch. A matched-layout plan (is_trivial()) collapses to a
  /// length-checked memcpy per message with no op walk at all.
  void convert_batch(const std::uint8_t* const* srcs,
                     const std::size_t* src_lens, std::uint8_t* const* dsts,
                     std::size_t n, DecodeArena& arena) const;

  const std::vector<ConvOp>& ops() const noexcept { return ops_; }
  const Format& wire() const noexcept { return *wire_; }
  const Format& native() const noexcept { return *native_; }

  /// True when source and destination are byte-identical (single block
  /// copy + pointer materialization) — the homogeneous fast path. Batched
  /// execution of a trivial plan is one memcpy per message.
  bool is_trivial() const noexcept { return trivial_; }

  /// Source fields merged away by the coalesce (raw-copy runs) and
  /// run-fusion (converting/zero runs) passes — 0 when both are off or when
  /// no adjacent fields shared an element shape.
  std::size_t fused_away() const noexcept { return fused_away_; }

  /// Ops covering more than one source field (fused RunOps, raw-copy runs
  /// included).
  std::size_t run_ops() const noexcept { return run_ops_; }

private:
  ConversionPlan() = default;

  void execute_op(const ConvOp& op, const std::uint8_t* body,
                  std::size_t body_len, const std::uint8_t* src_region,
                  std::uint8_t* dst_region, DecodeArena& arena) const;

  std::vector<ConvOp> ops_;
  FormatHandle wire_;
  FormatHandle native_;
  ByteOrder src_order_ = ByteOrder::kLittle;
  std::uint8_t src_ptr_size_ = 8;
  bool trivial_ = false;
  std::size_t fused_away_ = 0;
  std::size_t run_ops_ = 0;
};

}  // namespace omf::pbio
