// Registered message formats and the format registry (the paper's Catalog).
//
// A Format is immutable once registered. Its identity is a 64-bit hash of
// its complete metadata (name, architecture profile, every field), so two
// processes that independently register identical metadata agree on the id
// without coordination — the id travels in every wire message header and is
// how receivers find the metadata describing an incoming message.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/profile.hpp"
#include "pbio/field.hpp"
#include "util/error.hpp"

namespace omf::pbio {

class Format;
using FormatHandle = std::shared_ptr<const Format>;

/// Stable 64-bit identity of a format's full metadata.
using FormatId = std::uint64_t;

/// A fully resolved field of a registered format.
struct Field {
  std::string name;
  TypeSpec type;
  std::size_t size = 0;    ///< element size in bytes
  std::size_t offset = 0;  ///< offset of the slot within the struct
  FormatHandle subformat;  ///< resolved nested format (kNested only)
  std::size_t count_field_index = SIZE_MAX;  ///< index of the dynamic count field
  /// Receiver-side default (from the schema's `default` attribute): when a
  /// wire format lacks this field, conversion writes this value instead of
  /// zero. Textual, profile-independent; empty = no default. Scalar
  /// integer/float/char fields only.
  std::string default_text;

  /// Bytes this field occupies inside the struct itself: the full array for
  /// static arrays, a pointer for strings and dynamic arrays, the element
  /// size otherwise.
  std::size_t slot_size(std::size_t pointer_size) const noexcept {
    if (type.cls == FieldClass::kString || type.array == ArrayKind::kDynamic) {
      return pointer_size;
    }
    if (type.array == ArrayKind::kStatic) {
      return size * type.static_count;
    }
    return size;
  }

  bool is_pointer_slot() const noexcept {
    return type.cls == FieldClass::kString ||
           type.array == ArrayKind::kDynamic;
  }
};

/// An immutable registered message format.
class Format {
public:
  const std::string& name() const noexcept { return name_; }
  FormatId id() const noexcept { return id_; }
  const arch::Profile& profile() const noexcept { return profile_; }
  const std::vector<Field>& fields() const noexcept { return fields_; }
  std::size_t struct_size() const noexcept { return struct_size_; }
  std::size_t alignment() const noexcept { return alignment_; }

  /// True if any field at any nesting depth is a string or dynamic array —
  /// i.e. encoding needs a variable-length section and pointer fixups.
  bool has_pointers() const noexcept { return has_pointers_; }

  /// Indices of the fields that need pointer/recursion treatment during
  /// encode/decode (strings, dynamic arrays, and nested fields whose
  /// subformat has pointers). Precomputed so hot paths skip plain fields.
  const std::vector<std::size_t>& pointer_fields() const noexcept {
    return pointer_fields_;
  }

  /// Field lookup by name; nullptr if absent.
  const Field* field_named(std::string_view name) const noexcept;

  /// Index of a field by name; SIZE_MAX if absent.
  std::size_t field_index(std::string_view name) const noexcept;

private:
  friend class FormatRegistry;
  Format() = default;

  std::string name_;
  FormatId id_ = 0;
  arch::Profile profile_;
  std::vector<Field> fields_;
  std::size_t struct_size_ = 0;
  std::size_t alignment_ = 1;
  bool has_pointers_ = false;
  std::vector<std::size_t> pointer_fields_;
};

/// A field specification for registry-computed layout (the xml2wire path):
/// the registry assigns offsets using the target profile's ABI rules, the
/// way the target machine's C compiler would.
struct FieldSpec {
  FieldSpec() = default;
  FieldSpec(std::string name, std::string type, std::size_t element_size,
            std::string default_text = {})
      : name(std::move(name)),
        type(std::move(type)),
        element_size(element_size),
        default_text(std::move(default_text)) {}

  std::string name;
  std::string type;              ///< PBIO type string
  std::size_t element_size = 0;  ///< scalar width; 0 for nested/string
  std::string default_text;      ///< optional receiver-side default (scalars)
};

/// Thread-safe catalog of registered formats.
///
/// Lookup by name returns the *most recently* registered format with that
/// name (supporting format evolution: v2 re-registration supersedes v1 for
/// senders), while lookup by id reaches every version ever registered (so
/// receivers can still decode old-format messages).
class FormatRegistry {
public:
  FormatRegistry() = default;
  FormatRegistry(const FormatRegistry&) = delete;
  FormatRegistry& operator=(const FormatRegistry&) = delete;

  /// PBIO-native registration: field sizes and offsets were measured by the
  /// compiler (sizeof / offsetof), `struct_size` is sizeof(the struct).
  /// Validates the metadata (names, type strings, nested resolution, count
  /// fields, slot bounds) and returns the immutable format.
  FormatHandle register_format(const std::string& name,
                               std::span<const IOField> fields,
                               std::size_t struct_size,
                               const arch::Profile& profile = arch::native());

  /// Registry-computed registration: assigns offsets and the total size by
  /// laying the fields out for `profile` in declaration order.
  FormatHandle register_computed(const std::string& name,
                                 std::span<const FieldSpec> fields,
                                 const arch::Profile& profile = arch::native());

  /// Latest format registered under `name` for the native profile — the
  /// format a local sender should use. nullptr if none.
  FormatHandle by_name(const std::string& name) const;

  /// Latest format registered under `name` for a specific architecture
  /// profile (e.g. a deserialized remote format). nullptr if none.
  FormatHandle by_name_profile(const std::string& name,
                               const arch::Profile& profile) const;

  /// Format with the given metadata id; nullptr if unknown.
  FormatHandle by_id(FormatId id) const;

  /// Every format ever registered, in registration order.
  std::vector<FormatHandle> all() const;

  std::size_t size() const;

private:
  FormatHandle finish_registration(std::unique_ptr<Format> format);
  void validate_and_resolve(Format& format) const;

  mutable std::shared_mutex mutex_;
  // Per name, every registration in order; lookups scan backwards for the
  // newest entry matching the requested profile.
  std::unordered_map<std::string, std::vector<FormatHandle>> by_name_;
  std::unordered_map<FormatId, FormatHandle> by_id_;
  std::vector<FormatHandle> in_order_;
};

/// Computes the metadata hash that identifies a format.
FormatId compute_format_id(const std::string& name,
                           const arch::Profile& profile,
                           std::span<const Field> fields,
                           std::size_t struct_size);

}  // namespace omf::pbio
