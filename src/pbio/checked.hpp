// Bounds-checked wire reads.
//
// Every read the receive path performs against attacker-supplied bytes goes
// through these helpers: the range is validated against the region's extent
// *before* memory is touched, with overflow-safe comparisons (never forming
// offset + size, which could wrap). A short or hostile message therefore
// surfaces as DecodeError, not as an out-of-bounds read — the runtime half
// of the guarantee the static analyzer (src/analysis) proves for plans.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "util/error.hpp"

namespace omf::pbio {

/// Validates that [offset, offset+size) lies inside a region of `len` bytes
/// and returns a pointer to its start. Throws DecodeError otherwise.
inline const std::uint8_t* checked_at(const std::uint8_t* region,
                                      std::size_t len, std::size_t offset,
                                      std::size_t size, const char* what) {
  if (offset > len || size > len - offset) {
    throw DecodeError(std::string(what) +
                      " extends past the end of the wire buffer");
  }
  return region + offset;
}

/// Mutable-region variant for in-place patching.
inline std::uint8_t* checked_at(std::uint8_t* region, std::size_t len,
                                std::size_t offset, std::size_t size,
                                const char* what) {
  return const_cast<std::uint8_t*>(
      checked_at(static_cast<const std::uint8_t*>(region), len, offset, size,
                 what));
}

/// Reads an unsigned little-or-native-order integer of 1..8 bytes after
/// bounds-checking it. The value occupies the first `size` bytes at the
/// source (NDR slot convention); on big-endian hosts it is realigned.
inline std::uint64_t checked_read_uint(const std::uint8_t* region,
                                       std::size_t len, std::size_t offset,
                                       std::size_t size, const char* what) {
  if (size == 0 || size > 8) {
    throw DecodeError(std::string(what) + " has unsupported width " +
                      std::to_string(size));
  }
  const std::uint8_t* p = checked_at(region, len, offset, size, what);
  std::uint64_t v = 0;
  std::memcpy(&v, p, size);
  return v;
}

}  // namespace omf::pbio
