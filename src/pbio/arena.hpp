// Bump allocator backing the variable-length parts of decoded records.
//
// A decoded record's struct memory is caller-owned, but its strings and
// dynamic arrays need storage the decoder allocates; they live in a
// DecodeArena whose lifetime the caller controls. Allocations are stable
// (never move) and are freed all at once, which matches the
// decode-use-discard pattern of message processing loops.
//
// Message loops should call reset() between messages rather than clear():
// reset retains the arena's high-water chunk plus a small free list, so a
// steady-state loop decoding similar-sized messages performs zero heap
// allocations once warm. clear() releases everything back to the heap.
//
// Chunk memory is accounted against the process-wide overload::MemoryBudget
// (charged on genuine heap growth, released when a chunk is truly freed —
// free-list churn is invisible), so long-lived arenas show up in the same
// brownout arithmetic as queue backlogs and frame preallocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "overload/budget.hpp"

namespace omf::pbio {

class DecodeArena {
public:
  DecodeArena() = default;
  DecodeArena(const DecodeArena&) = delete;
  DecodeArena& operator=(const DecodeArena&) = delete;
  ~DecodeArena() { clear(); }

  /// Returns `n` bytes aligned to `align` (a power of two, at most 16).
  /// The memory is UNINITIALIZED and valid until clear()/destruction.
  void* allocate(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
    if (n == 0) n = 1;
    std::size_t aligned_used = (used_ + align - 1) & ~(align - 1);
    if (current_ == nullptr || aligned_used + n > current_capacity_) {
      new_chunk(n);
      aligned_used = 0;  // fresh chunks are max-aligned
    }
    void* p = current_ + aligned_used;
    used_ = aligned_used + n;
    return p;
  }

  /// Ensures the next `n` bytes of allocations fit the current chunk, so a
  /// batch with a known variable-data footprint grows the arena once up
  /// front instead of mid-batch. Never shrinks; safe to over-reserve (the
  /// space is reclaimed by reset() like any allocation).
  void reserve(std::size_t n) {
    if (n == 0) return;
    if (current_ == nullptr || used_ + n > current_capacity_) {
      new_chunk(n);
    }
  }

  /// Copies `n` bytes into the arena and returns the copy.
  void* copy(const void* src, std::size_t n, std::size_t align = 1) {
    void* p = allocate(n, align);
    std::memcpy(p, src, n);
    return p;
  }

  /// Copies a NUL-terminated region of length `len` (adds the NUL).
  char* copy_string(const char* src, std::size_t len) {
    char* p = static_cast<char*>(allocate(len + 1, 1));
    std::memcpy(p, src, len);
    p[len] = '\0';
    return p;
  }

  /// Invalidates all allocations but retains memory for reuse: the largest
  /// chunk stays current and up to kFreeListMax other chunks move to a free
  /// list that new_chunk() consumes before touching the heap. A loop whose
  /// per-message footprint fits the retained capacity allocates nothing.
  void reset() {
    if (chunks_.empty()) {
      used_ = 0;
      return;
    }
    std::size_t largest = 0;
    for (std::size_t i = 1; i < chunks_.size(); ++i) {
      if (chunks_[i].size > chunks_[largest].size) largest = i;
    }
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      if (i == largest) continue;
      if (free_list_.size() < kFreeListMax) {
        free_list_.push_back(std::move(chunks_[i]));
      } else {
        // Dropped back to the heap for real: return its budget share.
        overload::MemoryBudget::instance().release(chunks_[i].size);
      }
    }
    if (largest != 0) chunks_[0] = std::move(chunks_[largest]);
    chunks_.resize(1);
    current_ = chunks_[0].data.get();
    current_capacity_ = chunks_[0].size;
    used_ = 0;
  }

  /// Releases all memory; previously returned pointers become invalid.
  void clear() {
    std::size_t reserved = reserved_bytes();
    if (reserved != 0) {
      overload::MemoryBudget::instance().release(reserved);
    }
    chunks_.clear();
    free_list_.clear();
    current_ = nullptr;
    current_capacity_ = 0;
    used_ = 0;
    next_chunk_size_ = kDefaultChunk;
  }

  /// Total bytes currently reserved, free-listed chunks included (for tests
  /// and capacity diagnostics).
  std::size_t reserved_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    for (const auto& c : free_list_) total += c.size;
    return total;
  }

private:
  static constexpr std::size_t kDefaultChunk = 4096;
  static constexpr std::size_t kFreeListMax = 4;

  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size;
  };

  void new_chunk(std::size_t at_least) {
    for (std::size_t i = 0; i < free_list_.size(); ++i) {
      if (free_list_[i].size >= at_least) {
        chunks_.push_back(std::move(free_list_[i]));
        free_list_.erase(free_list_.begin() +
                         static_cast<std::ptrdiff_t>(i));
        current_ = chunks_.back().data.get();
        current_capacity_ = chunks_.back().size;
        used_ = 0;
        return;
      }
    }
    std::size_t size = next_chunk_size_;
    while (size < at_least) size *= 2;
    // Only genuine heap growth is counted — free-list reuse above is the
    // steady state and should read as zero here.
    static obs::Counter& chunk_allocs =
        obs::MetricsRegistry::instance().counter("pbio.arena.chunk_allocs");
    static obs::Counter& chunk_bytes =
        obs::MetricsRegistry::instance().counter("pbio.arena.chunk_bytes");
    chunk_allocs.add();
    chunk_bytes.add(static_cast<std::uint64_t>(size));
    // Unconditional charge: a decode in flight must not fail mid-record.
    // Pressure is handled upstream (admission, brownout), not here.
    overload::MemoryBudget::instance().charge(size);
    chunks_.push_back(Chunk{std::make_unique<std::uint8_t[]>(size), size});
    current_ = chunks_.back().data.get();
    current_capacity_ = size;
    used_ = 0;
    // Grow geometrically so records with many strings don't allocate a
    // chunk per string.
    if (next_chunk_size_ < 1 << 20) next_chunk_size_ *= 2;
  }

  std::vector<Chunk> chunks_;
  std::vector<Chunk> free_list_;
  std::uint8_t* current_ = nullptr;
  std::size_t current_capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t next_chunk_size_ = kDefaultChunk;
};

}  // namespace omf::pbio
