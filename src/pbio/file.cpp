#include "pbio/file.hpp"

#include <cstring>

#include "pbio/encode.hpp"
#include "pbio/metaserde.hpp"
#include "util/error.hpp"

namespace omf::pbio {

namespace {
constexpr char kMagic[8] = {'O', 'M', 'F', 'F', 'I', 'L', 'E', '1'};
constexpr std::uint32_t kMaxRecord = 1u << 30;
}  // namespace

MessageFileWriter::MessageFileWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw Error("cannot create message file: " + path);
  }
  if (std::fwrite(kMagic, 1, sizeof(kMagic), file_) != sizeof(kMagic)) {
    std::fclose(file_);
    file_ = nullptr;
    throw Error("cannot write message file header: " + path);
  }
}

MessageFileWriter::~MessageFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void MessageFileWriter::close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) {
      file_ = nullptr;
      throw Error("error closing message file: " + path_);
    }
    file_ = nullptr;
  }
}

void MessageFileWriter::put_record(char tag, const std::uint8_t* payload,
                                   std::size_t len) {
  if (file_ == nullptr) {
    throw Error("write to closed message file: " + path_);
  }
  if (len > kMaxRecord) {
    throw EncodeError("message file record exceeds 1 GiB");
  }
  std::uint8_t header[5];
  header[0] = static_cast<std::uint8_t>(tag);
  store_le<std::uint32_t>(header + 1, static_cast<std::uint32_t>(len));
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload, 1, len, file_) != len) {
    throw Error("error writing message file: " + path_);
  }
}

void MessageFileWriter::write(const Format& format, const Buffer& wire) {
  if (emitted_.insert(format.id()).second) {
    Buffer bundle = serialize_format_bundle(format);
    put_record('F', bundle.data(), bundle.size());
  }
  put_record('M', wire.data(), wire.size());
  ++messages_;
}

void MessageFileWriter::write_struct(const Format& format, const void* data) {
  write(format, encode(format, data));
}

MessageFileReader::MessageFileReader(const std::string& path,
                                     FormatRegistry& registry)
    : registry_(&registry) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw Error("cannot open message file: " + path);
  }
  char magic[sizeof(kMagic)];
  if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw DecodeError("not an OMF message file: " + path);
  }
}

MessageFileReader::~MessageFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::optional<Buffer> MessageFileReader::next() {
  for (;;) {
    if (file_ == nullptr) return std::nullopt;
    std::uint8_t header[5];
    std::size_t got = std::fread(header, 1, sizeof(header), file_);
    if (got == 0) return std::nullopt;  // clean EOF
    if (got != sizeof(header)) {
      throw DecodeError("truncated record header in message file");
    }
    char tag = static_cast<char>(header[0]);
    std::uint32_t len = load_le<std::uint32_t>(header + 1);
    if (len > kMaxRecord) {
      throw DecodeError("oversized record in message file");
    }
    std::vector<std::uint8_t> payload(len);
    if (std::fread(payload.data(), 1, len, file_) != len) {
      throw DecodeError("truncated record payload in message file");
    }
    if (tag == 'F') {
      deserialize_format_bundle(*registry_, payload);
      continue;  // transparent to the caller
    }
    if (tag != 'M') {
      throw DecodeError("unknown record tag in message file");
    }
    ++messages_;
    return Buffer(std::move(payload));
  }
}

}  // namespace omf::pbio
