// NDR encoding: marshals a struct into a wire message.
//
// This is the sender-side half of PBIO's performance story. The struct's
// bytes are copied onto the wire *verbatim* — no byte-swapping, no
// canonicalization, no per-field transformation. The only work is for
// pointer-bearing fields (strings, dynamic arrays): their targets are
// appended to a variable-length section and the pointer slots in the copied
// struct are overwritten with body-relative offsets.
#pragma once

#include <span>

#include "pbio/format.hpp"
#include "util/buffer.hpp"

namespace omf::pbio {

/// Appends a complete wire message (header + body) for `data`, a struct laid
/// out according to `format`. The format must have been registered for the
/// native architecture profile (its pointers are dereferenced). Throws
/// EncodeError on inconsistent data (negative dynamic-array counts, null
/// arrays with nonzero counts, variable data too large for the offset width).
void encode(const Format& format, const void* data, Buffer& out);

/// Convenience wrapper returning a fresh buffer.
Buffer encode(const Format& format, const void* data);

/// Upper-bound estimate of the encoded size of `data` (exact for formats
/// without pointers): header + struct + variable section.
std::size_t encoded_size(const Format& format, const void* data);

}  // namespace omf::pbio
