// DynamicRecord: a message instance built at run time from format metadata
// alone — no compiled struct definition required.
//
// This realizes the paper's future-work item "generation of language-level
// message object representations": once xml2wire has registered a format,
// an application (or a non-programmer's tool) can construct, fill, send,
// receive, and inspect messages of that format purely by field name. The
// record's backing memory is laid out exactly like the equivalent C struct,
// so encode()/decode() treat it identically to compiled application data.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pbio/arena.hpp"
#include "pbio/decode.hpp"
#include "pbio/format.hpp"
#include "util/buffer.hpp"

namespace omf::pbio {

class DynamicRecord {
public:
  /// Creates a zeroed record of the given format. The format must be
  /// registered for the native architecture profile (records hold real
  /// pointers). Throws FormatError otherwise.
  explicit DynamicRecord(FormatHandle format);

  const Format& format() const noexcept { return *format_; }

  /// Raw struct memory, laid out per format() — pass to encode(), or cast
  /// to the matching compiled struct type.
  void* data() noexcept { return mem_; }
  const void* data() const noexcept { return mem_; }

  // --- Scalar accessors (throw FormatError on unknown field / wrong class) --

  void set_int(std::string_view field, std::int64_t v);
  void set_uint(std::string_view field, std::uint64_t v);
  void set_float(std::string_view field, double v);
  void set_char(std::string_view field, char v);
  /// Stores a copy of `v` (owned by the record) and points the field at it.
  void set_string(std::string_view field, std::string_view v);

  std::int64_t get_int(std::string_view field) const;
  std::uint64_t get_uint(std::string_view field) const;
  double get_float(std::string_view field) const;
  char get_char(std::string_view field) const;
  /// Returns the field's string, or nullptr when unset/null.
  const char* get_string(std::string_view field) const;

  // --- Arrays ---------------------------------------------------------------

  /// Number of elements currently in an array field: the declared length
  /// for static arrays, the count-field value for dynamic arrays.
  std::size_t array_length(std::string_view field) const;

  /// Writes all elements. Static arrays require values.size() to equal the
  /// declared length; dynamic arrays are (re)allocated and the companion
  /// count field is updated.
  void set_int_array(std::string_view field, std::span<const std::int64_t> values);
  void set_uint_array(std::string_view field, std::span<const std::uint64_t> values);
  void set_float_array(std::string_view field, std::span<const double> values);

  std::vector<std::int64_t> get_int_array(std::string_view field) const;
  std::vector<std::uint64_t> get_uint_array(std::string_view field) const;
  std::vector<double> get_float_array(std::string_view field) const;

  /// Char arrays as byte blocks (fixed-size buffers, not NUL-terminated
  /// strings — use string fields for text).
  void set_char_array(std::string_view field, std::string_view bytes);
  std::string get_char_array(std::string_view field) const;

  // --- Nested records -------------------------------------------------------

  /// A view onto a nested record (element `index` for arrays of nested).
  /// The view shares this record's storage; mutations are visible through
  /// both. For dynamic nested arrays the array must have been sized with
  /// resize_nested_array() first.
  DynamicRecord nested(std::string_view field, std::size_t index = 0) const;

  /// Allocates a dynamic array of `n` zeroed nested elements and updates
  /// the companion count field.
  void resize_nested_array(std::string_view field, std::size_t n);

  // --- Whole-record operations ----------------------------------------------

  /// Field-by-field deep comparison (same format name, same field set, same
  /// values; strings compared by content, arrays element-wise).
  bool deep_equals(const DynamicRecord& other) const;

  /// Human-readable dump: "name { field=value ... }".
  std::string to_string() const;

  /// Marshals this record to an NDR wire message.
  Buffer encode() const;

  /// Marshals into a caller-owned buffer (cleared first). Reusing one
  /// buffer across a send loop keeps steady-state encoding allocation-free:
  /// Buffer::clear() retains capacity.
  void encode_into(Buffer& out) const;

  /// Fills this record by decoding `message` (any wire format convertible
  /// to this record's format; see Decoder::decode).
  void from_wire(Decoder& decoder, std::span<const std::uint8_t> message);

private:
  struct Shared {
    FormatHandle top;
    std::vector<std::uint8_t> storage;
    DecodeArena arena;
  };

  DynamicRecord(std::shared_ptr<Shared> shared, const Format* format,
                std::uint8_t* mem)
      : shared_(std::move(shared)), format_(format), mem_(mem) {}

  const Field& require(std::string_view field) const;
  const Field& require_class(std::string_view field, FieldClass a,
                             FieldClass b) const;

  void write_scalar_int(const Field& f, std::uint8_t* slot, std::uint64_t v);
  std::uint64_t read_scalar_uint(const Field& f, const std::uint8_t* slot) const;
  std::int64_t read_scalar_int(const Field& f, const std::uint8_t* slot) const;

  std::shared_ptr<Shared> shared_;
  const Format* format_;
  std::uint8_t* mem_;
};

}  // namespace omf::pbio
