// Binary serialization of format metadata.
//
// This is how format metadata itself travels: a sender registers a format,
// pushes the serialized bundle to the format service (or an intranet HTTP
// server), and receivers that encounter an unknown format id in a message
// header fetch the bundle and register it locally, after which conversion
// plans can be compiled. A bundle contains the format plus every nested
// subformat, dependencies first, so deserialization can resolve references
// in one pass.
//
// The serialized form is architecture-independent (explicit little-endian
// integers) — it describes a layout, it does not use one.
#pragma once

#include <span>

#include "pbio/format.hpp"
#include "util/buffer.hpp"

namespace omf::pbio {

/// Serializes `format` and its nested subformats (dependencies first).
Buffer serialize_format_bundle(const Format& format);

/// One field of a bundle entry, exactly as carried on the wire — nothing
/// parsed, resolved, or validated.
struct RawField {
  std::string name;
  std::string type;  ///< PBIO type string, as transmitted
  std::uint64_t size = 0;
  std::uint64_t offset = 0;
  std::string default_text;
};

/// One format descriptor of a bundle, unvalidated.
struct RawFormat {
  std::string name;
  arch::Profile profile;
  std::uint64_t struct_size = 0;
  std::vector<RawField> fields;
};

/// Parses a bundle's framing without validating or registering anything —
/// the introspection hook static analysis is built on: an auditor can
/// inspect a hostile descriptor before any component trusts it. Throws
/// DecodeError only for structural truncation/bad magic; metadata-level
/// nonsense (overlaps, bad type strings, absurd offsets) is preserved
/// verbatim for the auditor to report.
std::vector<RawFormat> decode_format_bundle(std::span<const std::uint8_t> bytes);

/// Deserializes a bundle, registering every contained format into
/// `registry` (formats already present are deduplicated by metadata id).
/// Returns the top-level (last) format. Throws DecodeError on malformed
/// bundles and FormatError if the contained metadata is invalid.
FormatHandle deserialize_format_bundle(FormatRegistry& registry,
                                       std::span<const std::uint8_t> bytes);

}  // namespace omf::pbio
