#include "pbio/decode.hpp"

#include <bit>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pbio/checked.hpp"
#include "pbio/run_kernels.hpp"

namespace omf::pbio {

namespace {

// Expose the selected kernel tier on /metrics from process start, before any
// message arrives — the runtime-dispatch smoke test scrapes it cold.
[[maybe_unused]] const bool kKernelTierPublished =
    (publish_kernel_tier(), true);

#ifndef OMF_NO_METRICS
// Decode is the hottest path in the system (~200 ns/message for the C8
// workload) — even one relaxed fetch_add per message is a measurable slice
// of that budget. So the per-message work here is plain thread-local
// arithmetic: counts and histogram buckets accumulate in this struct and
// fold into the shared registry metrics every kFlushEvery messages and at
// thread exit. Registry values therefore lag by at most kFlushEvery-1
// messages per live thread and are exact once decoding threads go away.
// Clock reads happen only on sampled spans.
struct DecodeTls {
  static constexpr std::uint32_t kFlushEvery = 64;

  obs::Counter& messages =
      obs::MetricsRegistry::instance().counter("pbio.decode.messages");
  obs::Counter& bytes =
      obs::MetricsRegistry::instance().counter("pbio.decode.bytes");
  obs::Counter& in_place =
      obs::MetricsRegistry::instance().counter("pbio.decode.in_place");
  obs::Histogram& body_bytes =
      obs::MetricsRegistry::instance().histogram("pbio.decode.body_bytes");

  std::uint32_t p_messages = 0;
  std::uint32_t p_in_place = 0;
  std::uint64_t p_bytes = 0;
  std::uint64_t p_body_sum = 0;
  std::uint32_t p_buckets[obs::Histogram::kBuckets] = {};

  void note(std::size_t message_bytes, std::uint32_t body_length,
            bool was_in_place) noexcept {
    p_bytes += message_bytes;
    p_in_place += was_in_place ? 1u : 0u;
    std::size_t b = static_cast<std::size_t>(
        std::bit_width(std::uint64_t{body_length}));
    if (b >= obs::Histogram::kBuckets) b = obs::Histogram::kBuckets - 1;
    ++p_buckets[b];
    p_body_sum += body_length;
    if (++p_messages >= kFlushEvery) flush();
  }

  void flush() noexcept {
    if (p_messages == 0) return;
    messages.add(p_messages);
    bytes.add(p_bytes);
    if (p_in_place != 0) in_place.add(p_in_place);
    std::uint64_t sum_left = p_body_sum;
    for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) {
      if (p_buckets[b] != 0) {
        body_bytes.add_bucket(b, p_buckets[b], sum_left);
        sum_left = 0;
        p_buckets[b] = 0;
      }
    }
    p_messages = 0;
    p_in_place = 0;
    p_bytes = 0;
    p_body_sum = 0;
  }

  ~DecodeTls() { flush(); }
};
#else
struct DecodeTls {
  void note(std::size_t, std::uint32_t, bool) noexcept {}
};
#endif

thread_local DecodeTls t_decode;

/// Reads the dynamic-array count field from a struct region, bounds-checked
/// against the region's extent so a short message cannot make the read run
/// past the wire buffer.
std::int64_t read_native_count(const std::uint8_t* region,
                               std::size_t region_len,
                               const Field& count_field) {
  std::uint64_t v = checked_read_uint(region, region_len, count_field.offset,
                                      count_field.size,
                                      "dynamic array count field");
  if (host_byte_order() == ByteOrder::kBig) {
    // Value occupies the *first* count_field.size bytes; realign.
    v >>= (8 - count_field.size) * 8;
  }
  if (count_field.type.cls == FieldClass::kInteger &&
      count_field.size < 8) {
    std::uint64_t sign_bit = 1ull << (count_field.size * 8 - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return static_cast<std::int64_t>(v);
}

/// Patches one region's pointer slots from offsets to real addresses.
/// `region_len` is the number of readable bytes at `region` (the struct
/// extent for that nesting level); every slot access is checked against it.
void patch_region(const Format& format, std::uint8_t* body,
                  std::size_t body_len, std::uint8_t* region,
                  std::size_t region_len) {
  std::size_t ptr_size = format.profile().pointer_size;
  for (std::size_t idx : format.pointer_fields()) {
    const Field& f = format.fields()[idx];

    if (f.type.cls == FieldClass::kNested &&
        f.type.array != ArrayKind::kDynamic) {
      const Format& sub = *f.subformat;
      std::size_t count =
          f.type.array == ArrayKind::kStatic ? f.type.static_count : 1;
      std::uint8_t* slot = checked_at(region, region_len, f.offset,
                                      count * sub.struct_size(),
                                      "embedded struct field");
      for (std::size_t i = 0; i < count; ++i) {
        patch_region(sub, body, body_len, slot + i * sub.struct_size(),
                     sub.struct_size());
      }
      continue;
    }

    std::uint8_t* slot =
        checked_at(region, region_len, f.offset, ptr_size, "pointer slot");
    std::uint64_t off = checked_read_uint(region, region_len, f.offset,
                                          ptr_size == 8 ? 8 : 4,
                                          "pointer slot");

    if (f.type.cls == FieldClass::kString) {
      const char* out = nullptr;
      if (off != 0) {
        if (off >= body_len) {
          throw DecodeError("string offset out of range");
        }
        if (std::memchr(body + off, 0, body_len - off) == nullptr) {
          throw DecodeError("unterminated string in variable section");
        }
        out = reinterpret_cast<const char*>(body + off);
      }
      std::memcpy(slot, &out, sizeof(out));
      continue;
    }

    // Dynamic array (of scalars or nested).
    std::int64_t n = read_native_count(
        region, region_len, format.fields()[f.count_field_index]);
    if (n < 0) throw DecodeError("negative dynamic array count");
    std::size_t elem_size = f.type.cls == FieldClass::kNested
                                ? f.subformat->struct_size()
                                : f.size;
    const std::uint8_t* out = nullptr;
    if (n != 0) {
      if (off == 0) {
        throw DecodeError("null dynamic array with nonzero count");
      }
      if (off > body_len ||
          static_cast<std::uint64_t>(n) > (body_len - off) / elem_size) {
        throw DecodeError("dynamic array extends past message body");
      }
      out = body + off;
      if (f.type.cls == FieldClass::kNested && f.subformat->has_pointers()) {
        for (std::int64_t i = 0; i < n; ++i) {
          patch_region(*f.subformat, body, body_len,
                       body + off + i * elem_size, elem_size);
        }
      }
    }
    std::memcpy(slot, &out, sizeof(out));
  }
}

}  // namespace

FormatId Decoder::peek_format_id(std::span<const std::uint8_t> message) {
  return peek_header(message).format_id;
}

WireHeader Decoder::peek_header(std::span<const std::uint8_t> message) {
  BufferReader in(message);
  return WireHeader::read(in);
}

void* Decoder::decode_in_place(const Format& native, std::uint8_t* message,
                               std::size_t len) {
  BufferReader in(message, len);
  WireHeader header = WireHeader::read(in);
  if (header.format_id != native.id()) {
    throw DecodeError(
        "decode_in_place requires the wire format to equal the native "
        "format; use Decoder::decode for heterogeneous messages");
  }
  if (header.body_length > in.remaining()) {
    throw DecodeError("truncated message body");
  }
  if (header.body_length < native.struct_size()) {
    throw DecodeError("message body smaller than the struct");
  }
  std::uint8_t* body = message + WireHeader::kSize;
  if (native.has_pointers()) {
    patch_region(native, body, header.body_length, body,
                 native.struct_size());
  }
  t_decode.note(WireHeader::kSize + header.body_length, header.body_length,
                /*was_in_place=*/true);
  return body;
}

void Decoder::decode(std::span<const std::uint8_t> message,
                     const Format& native, void* out_struct,
                     DecodeArena& arena) {
  BufferReader in(message);
  WireHeader header = WireHeader::read(in);
  if (header.body_length > in.remaining()) {
    throw DecodeError("truncated message body");
  }

  FormatHandle wire = registry_->by_id(header.format_id);
  if (!wire) {
    throw FormatError(
        "unknown wire format id " + std::to_string(header.format_id) +
        "; discover and register its metadata before decoding");
  }
  if (wire->profile().byte_order != header.byte_order) {
    throw DecodeError("header byte order disagrees with format metadata");
  }
  if (header.body_length < wire->struct_size()) {
    throw DecodeError("message body smaller than the wire struct");
  }

  FormatHandle native_handle = registry_->by_id(native.id());
  if (!native_handle) {
    throw FormatError("native format '" + native.name() +
                      "' is not registered in this decoder's registry");
  }

  PlanHandle plan = plan_for(wire, native_handle);
  const std::uint8_t* body = in.read_bytes(header.body_length);
  {
    obs::ScopedSpan span(obs::Phase::kUnmarshal, native.name(),
                         obs::Tracer::sample());
    plan->execute(body, header.body_length, body,
                  static_cast<std::uint8_t*>(out_struct), arena);
  }
  t_decode.note(message.size(), header.body_length, /*was_in_place=*/false);
}

void Decoder::decode_batch(const std::span<const std::uint8_t>* messages,
                           std::size_t n, const Format& native,
                           void* const* out_structs, DecodeArena& arena) {
  if (n == 0) return;

  // Reused across calls so a steady-state receive loop batching warm
  // formats performs no heap allocation here after the first burst.
  thread_local std::vector<const std::uint8_t*> bodies;
  thread_local std::vector<std::size_t> body_lens;
  bodies.clear();
  body_lens.clear();
  bodies.reserve(n);
  body_lens.reserve(n);

  FormatId batch_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    BufferReader in(messages[i]);
    WireHeader header = WireHeader::read(in);
    if (header.body_length > in.remaining()) {
      throw DecodeError("truncated message body");
    }
    if (i == 0) {
      batch_id = header.format_id;
    } else if (header.format_id != batch_id) {
      throw DecodeError("decode_batch requires one wire format per batch");
    }
    bodies.push_back(in.read_bytes(header.body_length));
    body_lens.push_back(header.body_length);
  }

  FormatHandle wire = registry_->by_id(batch_id);
  if (!wire) {
    throw FormatError(
        "unknown wire format id " + std::to_string(batch_id) +
        "; discover and register its metadata before decoding");
  }
  if (wire->profile().byte_order !=
      Decoder::peek_header(messages[0]).byte_order) {
    throw DecodeError("header byte order disagrees with format metadata");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (body_lens[i] < wire->struct_size()) {
      throw DecodeError("message body smaller than the wire struct");
    }
  }

  FormatHandle native_handle = registry_->by_id(native.id());
  if (!native_handle) {
    throw FormatError("native format '" + native.name() +
                      "' is not registered in this decoder's registry");
  }

  PlanHandle plan = plan_for(wire, native_handle);
  {
    obs::ScopedSpan span(obs::Phase::kUnmarshal, native.name(),
                         obs::Tracer::sample());
    plan->convert_batch(bodies.data(), body_lens.data(),
                        reinterpret_cast<std::uint8_t* const*>(out_structs),
                        n, arena);
  }
  for (std::size_t i = 0; i < n; ++i) {
    t_decode.note(messages[i].size(), static_cast<std::uint32_t>(body_lens[i]),
                  /*was_in_place=*/false);
  }
#ifndef OMF_NO_METRICS
  static obs::Counter& batches =
      obs::MetricsRegistry::instance().counter("pbio.decode.batches");
  static obs::Histogram& batch_messages =
      obs::MetricsRegistry::instance().histogram(
          "pbio.decode.batch_messages");
  static obs::Counter& runs_fused =
      obs::MetricsRegistry::instance().counter("pbio.decode.runs_fused");
  batches.add();
  batch_messages.record(n);
  if (plan->run_ops() != 0) runs_fused.add(plan->run_ops() * n);
#endif
}

PlanHandle Decoder::plan_for(const FormatHandle& wire,
                             const FormatHandle& native) {
  return cache_->get_or_build(wire, native, options_);
}

std::size_t Decoder::cached_plans() const { return cache_->size(); }

}  // namespace omf::pbio
