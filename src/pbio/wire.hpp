// NDR wire message framing.
//
// A wire message is a 16-byte header followed by the body: a verbatim copy
// of the sender's struct memory, then a variable-length section holding
// string bytes and dynamic-array elements. Pointer slots inside the body
// hold offsets (relative to the body start) instead of addresses; offset 0
// is the null pointer (the struct region itself occupies body offset 0, so
// no variable data can legitimately live there).
//
// Header integers are written in the *sender's* byte order — the receiver
// learns that order from the flags byte, which is order-independent. This
// is the defining property of NDR: the sender never converts anything.
#pragma once

#include <cstdint>

#include "util/buffer.hpp"
#include "util/bytes.hpp"

namespace omf::pbio {

struct WireHeader {
  static constexpr std::uint8_t kMagic = 0xB1;
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kSize = 16;
  static constexpr std::uint8_t kFlagBigEndian = 0x01;

  ByteOrder byte_order = ByteOrder::kLittle;
  std::uint32_t body_length = 0;
  std::uint64_t format_id = 0;

  /// Appends the header; returns the buffer offset of the body_length word
  /// so encoders can patch it once the body is complete.
  std::size_t write(Buffer& out) const {
    std::uint8_t flags = byte_order == ByteOrder::kBig ? kFlagBigEndian : 0;
    out.append(&kMagic, 1);
    out.append(&kVersion, 1);
    out.append(&flags, 1);
    std::uint8_t header_size = kSize;
    out.append(&header_size, 1);
    std::size_t body_length_at = out.size();
    out.append_int<std::uint32_t>(body_length, byte_order);
    out.append_int<std::uint64_t>(format_id, byte_order);
    return body_length_at;
  }

  /// Parses and validates a header. Throws DecodeError on bad magic,
  /// unsupported version, or truncation.
  static WireHeader read(BufferReader& in) {
    const std::uint8_t* p = in.read_bytes(4);
    if (p[0] != kMagic) {
      throw DecodeError("bad magic byte (not an NDR message)");
    }
    if (p[1] != kVersion) {
      throw DecodeError("unsupported NDR version " + std::to_string(p[1]));
    }
    if (p[3] != kSize) {
      throw DecodeError("unexpected header size " + std::to_string(p[3]));
    }
    WireHeader h;
    h.byte_order =
        (p[2] & kFlagBigEndian) != 0 ? ByteOrder::kBig : ByteOrder::kLittle;
    h.body_length = in.read_int<std::uint32_t>(h.byte_order);
    h.format_id = in.read_int<std::uint64_t>(h.byte_order);
    return h;
  }
};

}  // namespace omf::pbio
