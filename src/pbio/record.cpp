#include "pbio/record.hpp"

#include <cstring>
#include <sstream>

#include "pbio/encode.hpp"

namespace omf::pbio {

DynamicRecord::DynamicRecord(FormatHandle format) {
  if (!format) throw FormatError("DynamicRecord: null format");
  if (!(format->profile() == arch::native())) {
    throw FormatError("DynamicRecord requires a native-profile format; '" +
                      format->name() + "' targets '" + format->profile().name +
                      "'");
  }
  auto shared = std::make_shared<Shared>();
  shared->top = format;
  shared->storage.assign(format->struct_size(), 0);
  shared_ = std::move(shared);
  format_ = shared_->top.get();
  mem_ = shared_->storage.data();
}

const Field& DynamicRecord::require(std::string_view field) const {
  const Field* f = format_->field_named(field);
  if (f == nullptr) {
    throw FormatError("format '" + format_->name() + "' has no field '" +
                      std::string(field) + "'");
  }
  return *f;
}

const Field& DynamicRecord::require_class(std::string_view field, FieldClass a,
                                          FieldClass b) const {
  const Field& f = require(field);
  if (f.type.cls != a && f.type.cls != b) {
    throw FormatError("field '" + std::string(field) + "' of format '" +
                      format_->name() + "' is " +
                      std::string(field_class_name(f.type.cls)) +
                      ", not the requested class");
  }
  return f;
}

void DynamicRecord::write_scalar_int(const Field& f, std::uint8_t* slot,
                                     std::uint64_t v) {
  switch (f.size) {
    case 1: {
      auto x = static_cast<std::uint8_t>(v);
      std::memcpy(slot, &x, 1);
      break;
    }
    case 2: {
      auto x = static_cast<std::uint16_t>(v);
      std::memcpy(slot, &x, 2);
      break;
    }
    case 4: {
      auto x = static_cast<std::uint32_t>(v);
      std::memcpy(slot, &x, 4);
      break;
    }
    default:
      std::memcpy(slot, &v, 8);
      break;
  }
}

std::uint64_t DynamicRecord::read_scalar_uint(const Field& f,
                                              const std::uint8_t* slot) const {
  switch (f.size) {
    case 1: return *slot;
    case 2: {
      std::uint16_t x;
      std::memcpy(&x, slot, 2);
      return x;
    }
    case 4: {
      std::uint32_t x;
      std::memcpy(&x, slot, 4);
      return x;
    }
    default: {
      std::uint64_t x;
      std::memcpy(&x, slot, 8);
      return x;
    }
  }
}

std::int64_t DynamicRecord::read_scalar_int(const Field& f,
                                            const std::uint8_t* slot) const {
  std::uint64_t v = read_scalar_uint(f, slot);
  if (f.size < 8) {
    std::uint64_t sign_bit = 1ull << (f.size * 8 - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return static_cast<std::int64_t>(v);
}

void DynamicRecord::set_int(std::string_view field, std::int64_t v) {
  const Field& f =
      require_class(field, FieldClass::kInteger, FieldClass::kUnsigned);
  if (f.type.array != ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) +
                      "' is an array; use set_int_array");
  }
  write_scalar_int(f, mem_ + f.offset, static_cast<std::uint64_t>(v));
}

void DynamicRecord::set_uint(std::string_view field, std::uint64_t v) {
  const Field& f =
      require_class(field, FieldClass::kInteger, FieldClass::kUnsigned);
  if (f.type.array != ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) +
                      "' is an array; use set_uint_array");
  }
  write_scalar_int(f, mem_ + f.offset, v);
}

void DynamicRecord::set_float(std::string_view field, double v) {
  const Field& f = require_class(field, FieldClass::kFloat, FieldClass::kFloat);
  if (f.type.array != ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) +
                      "' is an array; use set_float_array");
  }
  if (f.size == 4) {
    float x = static_cast<float>(v);
    std::memcpy(mem_ + f.offset, &x, 4);
  } else {
    std::memcpy(mem_ + f.offset, &v, 8);
  }
}

void DynamicRecord::set_char(std::string_view field, char v) {
  const Field& f = require_class(field, FieldClass::kChar, FieldClass::kChar);
  if (f.type.array != ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) + "' is an array");
  }
  std::memcpy(mem_ + f.offset, &v, 1);
}

void DynamicRecord::set_string(std::string_view field, std::string_view v) {
  const Field& f =
      require_class(field, FieldClass::kString, FieldClass::kString);
  char* copy = shared_->arena.copy_string(v.data(), v.size());
  std::memcpy(mem_ + f.offset, &copy, sizeof(copy));
}

std::int64_t DynamicRecord::get_int(std::string_view field) const {
  const Field& f =
      require_class(field, FieldClass::kInteger, FieldClass::kUnsigned);
  if (f.type.array != ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) +
                      "' is an array; use get_int_array");
  }
  return f.type.cls == FieldClass::kInteger
             ? read_scalar_int(f, mem_ + f.offset)
             : static_cast<std::int64_t>(read_scalar_uint(f, mem_ + f.offset));
}

std::uint64_t DynamicRecord::get_uint(std::string_view field) const {
  const Field& f =
      require_class(field, FieldClass::kInteger, FieldClass::kUnsigned);
  if (f.type.array != ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) +
                      "' is an array; use get_uint_array");
  }
  return read_scalar_uint(f, mem_ + f.offset);
}

double DynamicRecord::get_float(std::string_view field) const {
  const Field& f = require_class(field, FieldClass::kFloat, FieldClass::kFloat);
  if (f.type.array != ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) +
                      "' is an array; use get_float_array");
  }
  if (f.size == 4) {
    float x;
    std::memcpy(&x, mem_ + f.offset, 4);
    return x;
  }
  double x;
  std::memcpy(&x, mem_ + f.offset, 8);
  return x;
}

char DynamicRecord::get_char(std::string_view field) const {
  const Field& f = require_class(field, FieldClass::kChar, FieldClass::kChar);
  char v;
  std::memcpy(&v, mem_ + f.offset, 1);
  return v;
}

const char* DynamicRecord::get_string(std::string_view field) const {
  const Field& f =
      require_class(field, FieldClass::kString, FieldClass::kString);
  const char* v = nullptr;
  std::memcpy(&v, mem_ + f.offset, sizeof(v));
  return v;
}

std::size_t DynamicRecord::array_length(std::string_view field) const {
  const Field& f = require(field);
  switch (f.type.array) {
    case ArrayKind::kStatic:
      return f.type.static_count;
    case ArrayKind::kDynamic: {
      const Field& count = format_->fields()[f.count_field_index];
      std::int64_t n = read_scalar_int(count, mem_ + count.offset);
      return n < 0 ? 0 : static_cast<std::size_t>(n);
    }
    case ArrayKind::kNone:
      throw FormatError("field '" + std::string(field) + "' is not an array");
  }
  return 0;
}

namespace {

/// Shared logic for all array setters: resolves the element base pointer,
/// allocating + recording the count for dynamic arrays.
template <typename Setter>
void set_array_common(const Format& format, std::uint8_t* mem,
                      DecodeArena& arena, const Field& f, std::size_t n,
                      std::size_t elem_align, Setter&& set_element) {
  std::uint8_t* base = nullptr;
  if (f.type.array == ArrayKind::kStatic) {
    if (n != f.type.static_count) {
      throw FormatError("static array '" + f.name + "' has length " +
                        std::to_string(f.type.static_count) + ", got " +
                        std::to_string(n) + " values");
    }
    base = mem + f.offset;
  } else {
    base = static_cast<std::uint8_t*>(
        arena.allocate(n == 0 ? 1 : n * f.size, elem_align));
    // Arena memory is uninitialized; element setters overwrite it, but the
    // nested-array resize path hands zeroed records to the caller.
    std::memset(base, 0, n == 0 ? 1 : n * f.size);
    std::uint8_t* stored = n == 0 ? nullptr : base;
    std::memcpy(mem + f.offset, &stored, sizeof(stored));
    const Field& count = format.fields()[f.count_field_index];
    std::uint64_t cv = n;
    // Write count in the count field's width.
    switch (count.size) {
      case 1: { auto x = static_cast<std::uint8_t>(cv); std::memcpy(mem + count.offset, &x, 1); break; }
      case 2: { auto x = static_cast<std::uint16_t>(cv); std::memcpy(mem + count.offset, &x, 2); break; }
      case 4: { auto x = static_cast<std::uint32_t>(cv); std::memcpy(mem + count.offset, &x, 4); break; }
      default: std::memcpy(mem + count.offset, &cv, 8); break;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    set_element(base + i * f.size, i);
  }
}

}  // namespace

void DynamicRecord::set_int_array(std::string_view field,
                                  std::span<const std::int64_t> values) {
  const Field& f =
      require_class(field, FieldClass::kInteger, FieldClass::kUnsigned);
  if (f.type.array == ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) + "' is not an array");
  }
  set_array_common(*format_, mem_, shared_->arena, f, values.size(),
                   format_->profile().scalar_align(f.size),
                   [&](std::uint8_t* slot, std::size_t i) {
                     write_scalar_int(f, slot,
                                      static_cast<std::uint64_t>(values[i]));
                   });
}

void DynamicRecord::set_uint_array(std::string_view field,
                                   std::span<const std::uint64_t> values) {
  const Field& f =
      require_class(field, FieldClass::kInteger, FieldClass::kUnsigned);
  if (f.type.array == ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) + "' is not an array");
  }
  set_array_common(*format_, mem_, shared_->arena, f, values.size(),
                   format_->profile().scalar_align(f.size),
                   [&](std::uint8_t* slot, std::size_t i) {
                     write_scalar_int(f, slot, values[i]);
                   });
}

void DynamicRecord::set_float_array(std::string_view field,
                                    std::span<const double> values) {
  const Field& f = require_class(field, FieldClass::kFloat, FieldClass::kFloat);
  if (f.type.array == ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) + "' is not an array");
  }
  set_array_common(*format_, mem_, shared_->arena, f, values.size(),
                   format_->profile().scalar_align(f.size),
                   [&](std::uint8_t* slot, std::size_t i) {
                     if (f.size == 4) {
                       float x = static_cast<float>(values[i]);
                       std::memcpy(slot, &x, 4);
                     } else {
                       double x = values[i];
                       std::memcpy(slot, &x, 8);
                     }
                   });
}

namespace {

const std::uint8_t* array_base(const std::uint8_t* mem, const Field& f) {
  if (f.type.array == ArrayKind::kStatic) return mem + f.offset;
  const std::uint8_t* p = nullptr;
  std::memcpy(&p, mem + f.offset, sizeof(p));
  return p;
}

}  // namespace

std::vector<std::int64_t> DynamicRecord::get_int_array(
    std::string_view field) const {
  const Field& f =
      require_class(field, FieldClass::kInteger, FieldClass::kUnsigned);
  std::size_t n = array_length(field);
  const std::uint8_t* base = array_base(mem_, f);
  std::vector<std::int64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = read_scalar_int(f, base + i * f.size);
  }
  return out;
}

std::vector<std::uint64_t> DynamicRecord::get_uint_array(
    std::string_view field) const {
  const Field& f =
      require_class(field, FieldClass::kInteger, FieldClass::kUnsigned);
  std::size_t n = array_length(field);
  const std::uint8_t* base = array_base(mem_, f);
  std::vector<std::uint64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = read_scalar_uint(f, base + i * f.size);
  }
  return out;
}

std::vector<double> DynamicRecord::get_float_array(
    std::string_view field) const {
  const Field& f = require_class(field, FieldClass::kFloat, FieldClass::kFloat);
  std::size_t n = array_length(field);
  const std::uint8_t* base = array_base(mem_, f);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (f.size == 4) {
      float x;
      std::memcpy(&x, base + i * 4, 4);
      out[i] = x;
    } else {
      std::memcpy(&out[i], base + i * 8, 8);
    }
  }
  return out;
}

void DynamicRecord::set_char_array(std::string_view field,
                                   std::string_view bytes) {
  const Field& f = require_class(field, FieldClass::kChar, FieldClass::kChar);
  if (f.type.array == ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) + "' is not an array");
  }
  set_array_common(*format_, mem_, shared_->arena, f, bytes.size(), 1,
                   [&](std::uint8_t* slot, std::size_t i) {
                     *slot = static_cast<std::uint8_t>(bytes[i]);
                   });
}

std::string DynamicRecord::get_char_array(std::string_view field) const {
  const Field& f = require_class(field, FieldClass::kChar, FieldClass::kChar);
  if (f.type.array == ArrayKind::kNone) {
    throw FormatError("field '" + std::string(field) + "' is not an array");
  }
  std::size_t n = array_length(field);
  const std::uint8_t* base = array_base(mem_, f);
  return std::string(reinterpret_cast<const char*>(base), n);
}

DynamicRecord DynamicRecord::nested(std::string_view field,
                                    std::size_t index) const {
  const Field& f = require(field);
  if (f.type.cls != FieldClass::kNested) {
    throw FormatError("field '" + std::string(field) + "' is not a nested "
                      "record");
  }
  const Format& sub = *f.subformat;
  std::uint8_t* base = nullptr;
  std::size_t limit = 1;
  if (f.type.array == ArrayKind::kDynamic) {
    std::memcpy(&base, mem_ + f.offset, sizeof(base));
    limit = array_length(field);
    if (base == nullptr) {
      throw FormatError("dynamic nested array '" + std::string(field) +
                        "' has not been sized; call resize_nested_array");
    }
  } else {
    base = mem_ + f.offset;
    limit = f.type.array == ArrayKind::kStatic ? f.type.static_count : 1;
  }
  if (index >= limit) {
    throw FormatError("nested index " + std::to_string(index) +
                      " out of range for field '" + std::string(field) + "'");
  }
  return DynamicRecord(shared_, &sub, base + index * sub.struct_size());
}

void DynamicRecord::resize_nested_array(std::string_view field, std::size_t n) {
  const Field& f = require(field);
  if (f.type.cls != FieldClass::kNested ||
      f.type.array != ArrayKind::kDynamic) {
    throw FormatError("field '" + std::string(field) +
                      "' is not a dynamic nested array");
  }
  const Format& sub = *f.subformat;
  set_array_common(*format_, mem_, shared_->arena, f, n, sub.alignment(),
                   [](std::uint8_t*, std::size_t) {});
}

bool DynamicRecord::deep_equals(const DynamicRecord& other) const {
  if (format_->fields().size() != other.format_->fields().size()) return false;
  for (const Field& f : format_->fields()) {
    const Field* of = other.format_->field_named(f.name);
    if (of == nullptr || of->type.cls != f.type.cls ||
        of->type.array != f.type.array) {
      return false;
    }
    std::string name = f.name;
    switch (f.type.cls) {
      case FieldClass::kInteger:
      case FieldClass::kUnsigned:
        if (f.type.array == ArrayKind::kNone) {
          if (get_int(name) != other.get_int(name)) return false;
        } else {
          if (get_int_array(name) != other.get_int_array(name)) return false;
        }
        break;
      case FieldClass::kFloat:
        if (f.type.array == ArrayKind::kNone) {
          if (get_float(name) != other.get_float(name)) return false;
        } else {
          if (get_float_array(name) != other.get_float_array(name)) {
            return false;
          }
        }
        break;
      case FieldClass::kChar:
        if (f.type.array == ArrayKind::kNone) {
          if (get_char(name) != other.get_char(name)) return false;
        } else {
          if (get_char_array(name) != other.get_char_array(name)) return false;
        }
        break;
      case FieldClass::kString: {
        const char* a = get_string(name);
        const char* b = other.get_string(name);
        if ((a == nullptr) != (b == nullptr)) return false;
        if (a != nullptr && std::strcmp(a, b) != 0) return false;
        break;
      }
      case FieldClass::kNested: {
        std::size_t n = f.type.array == ArrayKind::kNone
                            ? 1
                            : array_length(name);
        std::size_t m = of->type.array == ArrayKind::kNone
                            ? 1
                            : other.array_length(name);
        if (n != m) return false;
        for (std::size_t i = 0; i < n; ++i) {
          if (!nested(name, i).deep_equals(other.nested(name, i))) {
            return false;
          }
        }
        break;
      }
    }
  }
  return true;
}

std::string DynamicRecord::to_string() const {
  std::ostringstream os;
  os << format_->name() << " { ";
  for (const Field& f : format_->fields()) {
    os << f.name << "=";
    std::string name = f.name;
    switch (f.type.cls) {
      case FieldClass::kInteger:
      case FieldClass::kUnsigned:
        if (f.type.array == ArrayKind::kNone) {
          os << get_int(name);
        } else {
          os << "[";
          auto vals = get_int_array(name);
          for (std::size_t i = 0; i < vals.size(); ++i) {
            if (i) os << ",";
            os << vals[i];
          }
          os << "]";
        }
        break;
      case FieldClass::kFloat:
        if (f.type.array == ArrayKind::kNone) {
          os << get_float(name);
        } else {
          os << "[";
          auto vals = get_float_array(name);
          for (std::size_t i = 0; i < vals.size(); ++i) {
            if (i) os << ",";
            os << vals[i];
          }
          os << "]";
        }
        break;
      case FieldClass::kChar:
        if (f.type.array == ArrayKind::kNone) {
          os << "'" << get_char(name) << "'";
        } else {
          os << "bytes[" << array_length(name) << "]";
        }
        break;
      case FieldClass::kString: {
        const char* s = get_string(name);
        os << (s ? std::string("\"") + s + "\"" : "null");
        break;
      }
      case FieldClass::kNested: {
        std::size_t n =
            f.type.array == ArrayKind::kNone ? 1 : array_length(name);
        if (f.type.array == ArrayKind::kNone) {
          os << nested(name).to_string();
        } else {
          os << "[";
          for (std::size_t i = 0; i < n; ++i) {
            if (i) os << ",";
            os << nested(name, i).to_string();
          }
          os << "]";
        }
        break;
      }
    }
    os << " ";
  }
  os << "}";
  return os.str();
}

Buffer DynamicRecord::encode() const { return pbio::encode(*format_, mem_); }

void DynamicRecord::encode_into(Buffer& out) const {
  out.clear();
  pbio::encode(*format_, mem_, out);
}

void DynamicRecord::from_wire(Decoder& decoder,
                              std::span<const std::uint8_t> message) {
  // Every field is overwritten by the decode (absent wire fields are
  // zeroed), so prior arena contents are unreachable afterwards — recycle
  // them up front (reset retains the arena's memory, so a record reused as
  // a receive target decodes allocation-free once warm). Views into a
  // larger record must not reset the shared arena — the rest of the root
  // record still references it.
  if (mem_ == shared_->storage.data()) {
    shared_->arena.reset();
  }
  decoder.decode(message, *format_, mem_, shared_->arena);
}

}  // namespace omf::pbio
