// Wire synthesis: produce the exact NDR message a sender on a *different*
// architecture would have produced for the same logical values.
//
// On a real heterogeneous deployment the foreign struct layout, byte order,
// and type widths come for free from the remote machine. This reproduction
// runs on one host, so the heterogeneous receive path (conversion plans:
// byte swapping, width changes, offset remapping) is driven by synthesized
// messages instead: take a DynamicRecord holding the logical values, take
// the same format registered for a foreign profile (e.g. via xml2wire with
// profile=sparc64), and emit the byte-exact message that sender would have
// put on the wire. Everything downstream of the socket is the production
// code path.
//
// Doubles as a gateway re-encoder: a broker can convert messages to a
// client's native format before forwarding, trading broker CPU for client
// simplicity ("format-scoping" infrastructure, §4.4).
#pragma once

#include "pbio/format.hpp"
#include "pbio/record.hpp"
#include "util/buffer.hpp"

namespace omf::pbio {

/// Emits a complete wire message for `values` as a sender whose native
/// format is `foreign_format` would. Fields are matched by name; fields of
/// `foreign_format` absent from the record's format are zero-filled.
/// Throws FormatError on field class mismatches and EncodeError on
/// inconsistent values.
Buffer synthesize_wire(const Format& foreign_format,
                       const DynamicRecord& values);

}  // namespace omf::pbio
