#include "pbio/convert.hpp"

#include <bit>
#include <cstring>
#include <type_traits>

#include "pbio/run_kernels.hpp"

namespace omf::pbio {

namespace {

/// Loads an integer element of 1/2/4/8 bytes with optional swap and sign
/// extension into a 64-bit value.
std::uint64_t load_int(const std::uint8_t* p, std::size_t size, bool swap,
                       bool sign_extend) noexcept {
  std::uint64_t v = 0;
  switch (size) {
    case 1: v = *p; break;
    case 2: {
      std::uint16_t x;
      std::memcpy(&x, p, 2);
      if (swap) x = byteswap(x);
      v = x;
      break;
    }
    case 4: {
      std::uint32_t x;
      std::memcpy(&x, p, 4);
      if (swap) x = byteswap(x);
      v = x;
      break;
    }
    case 8: {
      std::uint64_t x;
      std::memcpy(&x, p, 8);
      if (swap) x = byteswap(x);
      v = x;
      break;
    }
    default:
      // Unreachable: plan compilation rejects widths outside {1,2,4,8}.
      break;
  }
  if (sign_extend && size < 8) {
    std::uint64_t sign_bit = 1ull << (size * 8 - 1);
    if (v & sign_bit) {
      v |= ~((sign_bit << 1) - 1);
    }
  }
  return v;
}

/// Stores the low `size` bytes of a 64-bit value in host order.
void store_int(std::uint8_t* p, std::size_t size, std::uint64_t v) noexcept {
  switch (size) {
    case 1: {
      std::uint8_t x = static_cast<std::uint8_t>(v);
      std::memcpy(p, &x, 1);
      break;
    }
    case 2: {
      std::uint16_t x = static_cast<std::uint16_t>(v);
      std::memcpy(p, &x, 2);
      break;
    }
    case 4: {
      std::uint32_t x = static_cast<std::uint32_t>(v);
      std::memcpy(p, &x, 4);
      break;
    }
    default:
      std::memcpy(p, &v, 8);
      break;
  }
}

double load_float(const std::uint8_t* p, std::size_t size, bool swap) noexcept {
  if (size == 4) {
    std::uint32_t bits;
    std::memcpy(&bits, p, 4);
    if (swap) bits = byteswap(bits);
    return static_cast<double>(std::bit_cast<float>(bits));
  }
  std::uint64_t bits;
  std::memcpy(&bits, p, 8);
  if (swap) bits = byteswap(bits);
  return std::bit_cast<double>(bits);
}

void store_float(std::uint8_t* p, std::size_t size, double v) noexcept {
  if (size == 4) {
    float f = static_cast<float>(v);
    std::memcpy(p, &f, 4);
  } else {
    std::memcpy(p, &v, 8);
  }
}

[[noreturn]] void incompatible(const Format& wire, const Format& native,
                               const std::string& what) {
  throw FormatError("cannot convert wire format '" + wire.name() + "' (id " +
                    std::to_string(wire.id()) + ") to native format '" +
                    native.name() + "': " + what);
}

// ---------------------------------------------------------------------------
// Specialized conversion kernels.
//
// PBIO generated native machine code per (wire, native) pair with DRISC; the
// portable equivalent is to select, once at plan-build time, a function whose
// element widths, byte order, and signedness are compile-time constants.
// The compiler turns these loops into tight swap/widen/convert code (bulk
// bswap loops, sign-extending widens, float batches) with no per-element
// dispatch left.
// ---------------------------------------------------------------------------

/// Integer element loop. `Src` encodes the wire element's width and
/// signedness (sign extension falls out of the signed static_cast); `DstU`
/// is the unsigned type of the native width (stores are bit-pattern
/// truncations/extensions, so signedness of the destination is irrelevant).
template <typename Src, typename DstU, bool Swap>
void int_kernel(const std::uint8_t* src, std::uint8_t* dst,
                std::size_t count) {
  using SrcU = std::make_unsigned_t<Src>;
  for (std::size_t i = 0; i < count; ++i) {
    SrcU u;
    std::memcpy(&u, src + i * sizeof(SrcU), sizeof(SrcU));
    if constexpr (Swap && sizeof(SrcU) > 1) u = byteswap(u);
    DstU d = static_cast<DstU>(static_cast<Src>(u));
    std::memcpy(dst + i * sizeof(DstU), &d, sizeof(DstU));
  }
}

/// Float element loop: float32/float64 in either direction, optional swap.
template <typename SrcF, typename DstF, bool Swap>
void float_kernel(const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t count) {
  using Bits =
      std::conditional_t<sizeof(SrcF) == 4, std::uint32_t, std::uint64_t>;
  for (std::size_t i = 0; i < count; ++i) {
    Bits bits;
    std::memcpy(&bits, src + i * sizeof(Bits), sizeof(Bits));
    if constexpr (Swap) bits = byteswap(bits);
    DstF d = static_cast<DstF>(std::bit_cast<SrcF>(bits));
    std::memcpy(dst + i * sizeof(DstF), &d, sizeof(DstF));
  }
}

template <typename Src, typename DstU>
ScalarKernel int_kernel_swap(bool swap) {
  return swap ? &int_kernel<Src, DstU, true> : &int_kernel<Src, DstU, false>;
}

template <typename Src>
ScalarKernel int_kernel_dst(std::size_t dst_size, bool swap) {
  switch (dst_size) {
    case 1: return int_kernel_swap<Src, std::uint8_t>(swap);
    case 2: return int_kernel_swap<Src, std::uint16_t>(swap);
    case 4: return int_kernel_swap<Src, std::uint32_t>(swap);
    default: return int_kernel_swap<Src, std::uint64_t>(swap);
  }
}

ScalarKernel select_int_kernel(std::size_t src_size, std::size_t dst_size,
                               bool swap, bool sign_extend) {
  switch (src_size) {
    case 1:
      return sign_extend ? int_kernel_dst<std::int8_t>(dst_size, swap)
                         : int_kernel_dst<std::uint8_t>(dst_size, swap);
    case 2:
      return sign_extend ? int_kernel_dst<std::int16_t>(dst_size, swap)
                         : int_kernel_dst<std::uint16_t>(dst_size, swap);
    case 4:
      return sign_extend ? int_kernel_dst<std::int32_t>(dst_size, swap)
                         : int_kernel_dst<std::uint32_t>(dst_size, swap);
    default:
      return sign_extend ? int_kernel_dst<std::int64_t>(dst_size, swap)
                         : int_kernel_dst<std::uint64_t>(dst_size, swap);
  }
}

template <typename SrcF>
ScalarKernel float_kernel_dst(std::size_t dst_size, bool swap) {
  if (dst_size == 4) {
    return swap ? &float_kernel<SrcF, float, true>
                : &float_kernel<SrcF, float, false>;
  }
  return swap ? &float_kernel<SrcF, double, true>
              : &float_kernel<SrcF, double, false>;
}

ScalarKernel select_float_kernel(std::size_t src_size, std::size_t dst_size,
                                 bool swap) {
  return src_size == 4 ? float_kernel_dst<float>(dst_size, swap)
                       : float_kernel_dst<double>(dst_size, swap);
}

/// Kernel selection: the SIMD run kernel when the build allows it and the
/// dispatch tier has a vector form for this element shape, else the scalar
/// specialized loop. Selected once at plan build, like everything else.
ScalarKernel select_kernel(bool is_float, std::size_t src_size,
                           std::size_t dst_size, bool swap, bool sign_extend,
                           const PlanOptions& options) {
  if (options.simd) {
    if (ScalarKernel k = select_simd_kernel(is_float, src_size, dst_size, swap,
                                            sign_extend)) {
      return k;
    }
  }
  return is_float ? select_float_kernel(src_size, dst_size, swap)
                  : select_int_kernel(src_size, dst_size, swap, sign_extend);
}

bool valid_int_width(std::size_t w) noexcept {
  return w == 1 || w == 2 || w == 4 || w == 8;
}

bool valid_float_width(std::size_t w) noexcept { return w == 4 || w == 8; }

/// Rejects scalar element widths the converting loops cannot handle, so the
/// (noexcept) element loads never misread memory. Registration validates the
/// same invariant; this guards plans built from any other metadata source.
void check_scalar_widths(const Format& wire, const Format& native,
                         const Field& nf, const ConvOp& op) {
  bool is_float = nf.type.cls == FieldClass::kFloat;
  bool src_ok = is_float ? op.src_size == 4 || op.src_size == 8
                         : valid_int_width(op.src_size);
  bool dst_ok = is_float ? op.dst_size == 4 || op.dst_size == 8
                         : valid_int_width(op.dst_size);
  if (!src_ok || !dst_ok) {
    incompatible(wire, native,
                 "field '" + nf.name + "' has invalid scalar width (wire " +
                     std::to_string(op.src_size) + ", native " +
                     std::to_string(op.dst_size) + ")");
  }
}

}  // namespace

ScalarKernel select_scalar_kernel(bool is_float, std::size_t src_size,
                                  std::size_t dst_size, bool swap,
                                  bool sign_extend) noexcept {
  if (is_float) {
    if (!valid_float_width(src_size) || !valid_float_width(dst_size)) {
      return nullptr;
    }
    return select_float_kernel(src_size, dst_size, swap);
  }
  if (!valid_int_width(src_size) || !valid_int_width(dst_size)) {
    return nullptr;
  }
  return select_int_kernel(src_size, dst_size, swap, sign_extend);
}

PlanHandle ConversionPlan::build(FormatHandle wire, FormatHandle native,
                                 PlanOptions options) {
  auto plan = std::shared_ptr<ConversionPlan>(new ConversionPlan());
  plan->wire_ = wire;
  plan->native_ = native;
  plan->src_order_ = wire->profile().byte_order;
  plan->src_ptr_size_ = wire->profile().pointer_size;
  bool swap = wire->profile().byte_order != host_byte_order();

  for (const Field& nf : native->fields()) {
    const Field* wf = wire->field_named(nf.name);
    ConvOp op;
    op.dst_offset = static_cast<std::uint32_t>(nf.offset);

    if (wf == nullptr) {
      // Restricted evolution: the sender predates this field. Apply the
      // schema default if the metadata declares one, else zero-fill.
      if (!nf.default_text.empty()) {
        auto bits =
            parse_default_scalar(nf.type.cls, nf.size, nf.default_text);
        if (bits) {
          op.kind = ConvOp::Kind::kDefault;
          op.dst_size = static_cast<std::uint32_t>(nf.size);
          op.default_bits = *bits;
          plan->ops_.push_back(std::move(op));
          continue;
        }
      }
      op.kind = ConvOp::Kind::kZero;
      op.count = static_cast<std::uint32_t>(
          nf.slot_size(native->profile().pointer_size));
      plan->ops_.push_back(std::move(op));
      continue;
    }

    op.src_field = static_cast<std::uint32_t>(wf - wire->fields().data());
    op.src_offset = static_cast<std::uint32_t>(wf->offset);
    op.src_size = static_cast<std::uint32_t>(wf->size);
    op.dst_size = static_cast<std::uint32_t>(nf.size);
    op.swap = swap;

    // Array-kind reconciliation.
    if ((wf->type.array == ArrayKind::kDynamic) !=
        (nf.type.array == ArrayKind::kDynamic)) {
      incompatible(*wire, *native,
                   "field '" + nf.name + "' is dynamic on one side only");
    }

    bool dynamic = nf.type.array == ArrayKind::kDynamic;
    std::size_t src_count =
        wf->type.array == ArrayKind::kStatic ? wf->type.static_count : 1;
    std::size_t dst_count =
        nf.type.array == ArrayKind::kStatic ? nf.type.static_count : 1;
    std::size_t copy_count = src_count < dst_count ? src_count : dst_count;
    op.count = static_cast<std::uint32_t>(copy_count);
    op.zero_tail =
        static_cast<std::uint32_t>((dst_count - copy_count) * nf.size);

    auto classes_compatible = [](FieldClass a, FieldClass b) {
      if (a == b) return true;
      bool a_int = a == FieldClass::kInteger || a == FieldClass::kUnsigned;
      bool b_int = b == FieldClass::kInteger || b == FieldClass::kUnsigned;
      return a_int && b_int;
    };
    if (!classes_compatible(wf->type.cls, nf.type.cls)) {
      incompatible(*wire, *native,
                   "field '" + nf.name + "' changed class (" +
                       std::string(field_class_name(wf->type.cls)) + " -> " +
                       std::string(field_class_name(nf.type.cls)) + ")");
    }

    if (dynamic) {
      op.kind = ConvOp::Kind::kDynArray;
      const Field& count_field = wire->fields()[wf->count_field_index];
      if (!valid_int_width(count_field.size)) {
        incompatible(*wire, *native,
                     "count field '" + count_field.name +
                         "' has invalid width " +
                         std::to_string(count_field.size));
      }
      op.src_count_offset = static_cast<std::uint32_t>(count_field.offset);
      op.src_count_size = static_cast<std::uint8_t>(count_field.size);
      op.src_count_signed = count_field.type.cls == FieldClass::kInteger;
      op.elem_class = nf.type.cls;
      op.sign_extend = wf->type.cls == FieldClass::kInteger;
      if (nf.type.cls == FieldClass::kNested) {
        op.subplan = build(wf->subformat, nf.subformat, options);
        op.dst_align =
            static_cast<std::uint8_t>(nf.subformat->alignment());
      } else {
        op.dst_align = static_cast<std::uint8_t>(
            native->profile().scalar_align(nf.size));
        bool converts = op.swap || op.src_size != op.dst_size;
        if (converts && (nf.type.cls == FieldClass::kInteger ||
                         nf.type.cls == FieldClass::kUnsigned ||
                         nf.type.cls == FieldClass::kFloat)) {
          check_scalar_widths(*wire, *native, nf, op);
          if (options.specialize) {
            op.kernel =
                select_kernel(nf.type.cls == FieldClass::kFloat, op.src_size,
                              op.dst_size, op.swap, op.sign_extend, options);
          }
        }
      }
      plan->ops_.push_back(std::move(op));
      continue;
    }

    switch (nf.type.cls) {
      case FieldClass::kString:
        op.kind = ConvOp::Kind::kString;
        break;
      case FieldClass::kNested:
        op.kind = ConvOp::Kind::kNestedStatic;
        op.subplan = build(wf->subformat, nf.subformat, options);
        break;
      case FieldClass::kChar:
        op.kind = ConvOp::Kind::kCopy;
        op.count = static_cast<std::uint32_t>(copy_count);  // bytes == elems
        break;
      case FieldClass::kFloat:
        if (!op.swap && op.src_size == op.dst_size) {
          op.kind = ConvOp::Kind::kCopy;
          op.count = static_cast<std::uint32_t>(copy_count * nf.size);
        } else {
          op.kind = ConvOp::Kind::kFloat;
          check_scalar_widths(*wire, *native, nf, op);
          if (options.specialize) {
            op.kernel = select_kernel(/*is_float=*/true, op.src_size,
                                      op.dst_size, op.swap,
                                      /*sign_extend=*/false, options);
          }
        }
        break;
      case FieldClass::kInteger:
      case FieldClass::kUnsigned:
        op.sign_extend = wf->type.cls == FieldClass::kInteger;
        if (!op.swap && op.src_size == op.dst_size) {
          op.kind = ConvOp::Kind::kCopy;
          op.count = static_cast<std::uint32_t>(copy_count * nf.size);
        } else {
          op.kind = ConvOp::Kind::kInt;
          check_scalar_widths(*wire, *native, nf, op);
          if (options.specialize) {
            op.kernel = select_kernel(/*is_float=*/false, op.src_size,
                                      op.dst_size, op.swap, op.sign_extend,
                                      options);
          }
        }
        break;
    }
    plan->ops_.push_back(std::move(op));
  }

  if (options.coalesce) {
    // Merge adjacent raw copies that are contiguous in both source and
    // destination — in the homogeneous case this collapses whole runs of
    // fields (padding included is NOT merged; only exactly adjacent slots).
    std::vector<ConvOp> merged;
    merged.reserve(plan->ops_.size());
    for (ConvOp& op : plan->ops_) {
      if (op.kind == ConvOp::Kind::kCopy && op.zero_tail == 0 &&
          !merged.empty()) {
        ConvOp& prev = merged.back();
        if (prev.kind == ConvOp::Kind::kCopy && prev.zero_tail == 0 &&
            prev.src_offset + prev.count == op.src_offset &&
            prev.dst_offset + prev.count == op.dst_offset &&
            prev.fused_fields + op.fused_fields <= 0xFFFF) {
          prev.count += op.count;
          prev.fused_fields =
              static_cast<std::uint16_t>(prev.fused_fields + op.fused_fields);
          continue;
        }
      }
      merged.push_back(std::move(op));
    }
    plan->ops_ = std::move(merged);
  }

  if (options.fuse_runs) {
    // Run fusion: merge adjacent *converting* fields that share one element
    // shape (class, widths, byte order, signedness — and therefore the same
    // kernel) and are contiguous in both layouts, so a struct of N int32
    // fields byteswaps as one N-element run instead of N dispatches. Adjacent
    // zero-fills (evolution gaps) merge on destination contiguity alone.
    std::vector<ConvOp> fused;
    fused.reserve(plan->ops_.size());
    for (ConvOp& op : plan->ops_) {
      if (!fused.empty() && fused.back().fused_fields + op.fused_fields <=
                                0xFFFF) {
        ConvOp& prev = fused.back();
        bool elem_run =
            (op.kind == ConvOp::Kind::kInt ||
             op.kind == ConvOp::Kind::kFloat) &&
            prev.kind == op.kind && prev.zero_tail == 0 &&
            prev.src_size == op.src_size && prev.dst_size == op.dst_size &&
            prev.swap == op.swap && prev.sign_extend == op.sign_extend &&
            prev.kernel == op.kernel &&
            prev.src_offset + prev.count * prev.src_size == op.src_offset &&
            prev.dst_offset + prev.count * prev.dst_size == op.dst_offset;
        bool zero_run = op.kind == ConvOp::Kind::kZero &&
                        prev.kind == ConvOp::Kind::kZero &&
                        prev.dst_offset + prev.count == op.dst_offset;
        if (elem_run || zero_run) {
          prev.count += op.count;
          prev.zero_tail = op.zero_tail;
          prev.fused_fields =
              static_cast<std::uint16_t>(prev.fused_fields + op.fused_fields);
          continue;
        }
      }
      fused.push_back(std::move(op));
    }
    plan->ops_ = std::move(fused);
  }

  for (const ConvOp& op : plan->ops_) {
    if (op.fused_fields > 1) {
      plan->run_ops_++;
      plan->fused_away_ += op.fused_fields - 1u;
    }
  }

  plan->trivial_ =
      plan->ops_.size() == 1 && plan->ops_[0].kind == ConvOp::Kind::kCopy &&
      plan->ops_[0].src_offset == 0 && plan->ops_[0].dst_offset == 0 &&
      plan->ops_[0].count == native->struct_size() &&
      wire->struct_size() == native->struct_size();
  return plan;
}

void ConversionPlan::execute(const std::uint8_t* body, std::size_t body_len,
                             const std::uint8_t* src_region,
                             std::uint8_t* dst_region,
                             DecodeArena& arena) const {
  for (const ConvOp& op : ops_) {
    execute_op(op, body, body_len, src_region, dst_region, arena);
  }
}

void ConversionPlan::convert_batch(const std::uint8_t* const* srcs,
                                   const std::size_t* src_lens,
                                   std::uint8_t* const* dsts, std::size_t n,
                                   DecodeArena& arena) const {
  const std::size_t need = wire_->struct_size();
  for (std::size_t i = 0; i < n; ++i) {
    if (src_lens[i] < need) {
      throw DecodeError("message body shorter than wire struct");
    }
  }
  if (trivial_) {
    // Matched layout: the whole plan is one full-struct raw copy, so the
    // batch degenerates to n length-checked memcpys — memory bandwidth is
    // the only cost left.
    const std::size_t size = native_->struct_size();
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(dsts[i], srcs[i], size);
    }
    return;
  }
  // Op-outer walk: each plan step runs across every message before the next
  // step is even fetched, so op dispatch (and its branch history) amortizes
  // over the batch the same way run fusion amortizes it over fields.
  for (const ConvOp& op : ops_) {
    for (std::size_t i = 0; i < n; ++i) {
      execute_op(op, srcs[i], src_lens[i], srcs[i], dsts[i], arena);
    }
  }
}

void ConversionPlan::execute_op(const ConvOp& op, const std::uint8_t* body,
                                std::size_t body_len,
                                const std::uint8_t* src_region,
                                std::uint8_t* dst_region,
                                DecodeArena& arena) const {
  const std::uint8_t* src = src_region + op.src_offset;
  std::uint8_t* dst = dst_region + op.dst_offset;

  switch (op.kind) {
    case ConvOp::Kind::kCopy:
      std::memcpy(dst, src, op.count);
      if (op.zero_tail != 0) {
        std::memset(dst + op.count, 0, op.zero_tail);
      }
      break;

    case ConvOp::Kind::kZero:
      std::memset(dst, 0, op.count);
      break;

    case ConvOp::Kind::kDefault:
      store_int(dst, op.dst_size, op.default_bits);
      break;

    case ConvOp::Kind::kInt:
      if (op.kernel != nullptr) {
        op.kernel(src, dst, op.count);
      } else {
        for (std::uint32_t i = 0; i < op.count; ++i) {
          std::uint64_t v = load_int(src + i * op.src_size, op.src_size,
                                     op.swap, op.sign_extend);
          store_int(dst + i * op.dst_size, op.dst_size, v);
        }
      }
      if (op.zero_tail != 0) {
        std::memset(dst + op.count * op.dst_size, 0, op.zero_tail);
      }
      break;

    case ConvOp::Kind::kFloat:
      if (op.kernel != nullptr) {
        op.kernel(src, dst, op.count);
      } else {
        for (std::uint32_t i = 0; i < op.count; ++i) {
          double v = load_float(src + i * op.src_size, op.src_size, op.swap);
          store_float(dst + i * op.dst_size, op.dst_size, v);
        }
      }
      if (op.zero_tail != 0) {
        std::memset(dst + op.count * op.dst_size, 0, op.zero_tail);
      }
      break;

    case ConvOp::Kind::kString: {
      std::uint64_t off =
          load_int(src, src_ptr_size_, op.swap, /*sign_extend=*/false);
      char* out = nullptr;
      if (off != 0) {
        if (off >= body_len) {
          throw DecodeError("string offset out of range");
        }
        const auto* start = reinterpret_cast<const char*>(body + off);
        const void* nul = std::memchr(start, 0, body_len - off);
        if (nul == nullptr) {
          throw DecodeError("unterminated string in variable section");
        }
        std::size_t len = static_cast<const char*>(nul) - start;
        out = arena.copy_string(start, len);
      }
      std::memcpy(dst, &out, sizeof(out));
      break;
    }

    case ConvOp::Kind::kDynArray: {
      std::uint64_t n_raw =
          load_int(src_region + op.src_count_offset, op.src_count_size,
                   op.swap, op.src_count_signed);
      auto n_signed = static_cast<std::int64_t>(n_raw);
      if (op.src_count_signed && n_signed < 0) {
        throw DecodeError("negative dynamic array count");
      }
      std::uint64_t n = n_raw;
      std::uint64_t off =
          load_int(src, src_ptr_size_, op.swap, /*sign_extend=*/false);
      void* out = nullptr;
      if (n != 0) {
        if (off == 0) {
          throw DecodeError("null dynamic array with nonzero count");
        }
        if (off > body_len ||
            n > (body_len - off) / op.src_size) {
          throw DecodeError("dynamic array extends past message body");
        }
        const std::uint8_t* elems = body + off;
        out = arena.allocate(static_cast<std::size_t>(n) * op.dst_size,
                             op.dst_align);
        auto* dst_elems = static_cast<std::uint8_t*>(out);
        if (op.elem_class == FieldClass::kNested) {
          for (std::uint64_t i = 0; i < n; ++i) {
            op.subplan->execute(body, body_len, elems + i * op.src_size,
                                dst_elems + i * op.dst_size, arena);
          }
        } else if (op.elem_class == FieldClass::kChar) {
          std::memcpy(dst_elems, elems, static_cast<std::size_t>(n));
        } else if (!op.swap && op.src_size == op.dst_size) {
          // Same representation (floats included): one block copy.
          std::memcpy(dst_elems, elems,
                      static_cast<std::size_t>(n) * op.src_size);
        } else if (op.kernel != nullptr) {
          op.kernel(elems, dst_elems, static_cast<std::size_t>(n));
        } else if (op.elem_class == FieldClass::kFloat) {
          for (std::uint64_t i = 0; i < n; ++i) {
            store_float(dst_elems + i * op.dst_size, op.dst_size,
                        load_float(elems + i * op.src_size, op.src_size,
                                   op.swap));
          }
        } else {
          for (std::uint64_t i = 0; i < n; ++i) {
            store_int(dst_elems + i * op.dst_size, op.dst_size,
                      load_int(elems + i * op.src_size, op.src_size, op.swap,
                               op.sign_extend));
          }
        }
      }
      std::memcpy(dst, &out, sizeof(out));
      break;
    }

    case ConvOp::Kind::kNestedStatic:
      for (std::uint32_t i = 0; i < op.count; ++i) {
        op.subplan->execute(body, body_len, src + i * op.src_size,
                            dst + i * op.dst_size, arena);
      }
      if (op.zero_tail != 0) {
        std::memset(dst + op.count * op.dst_size, 0, op.zero_tail);
      }
      break;
  }
}

}  // namespace omf::pbio
