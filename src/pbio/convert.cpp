#include "pbio/convert.hpp"

#include <bit>
#include <cstring>

namespace omf::pbio {

namespace {

/// Loads an integer element of 1/2/4/8 bytes with optional swap and sign
/// extension into a 64-bit value.
std::uint64_t load_int(const std::uint8_t* p, std::size_t size, bool swap,
                       bool sign_extend) noexcept {
  std::uint64_t v = 0;
  switch (size) {
    case 1: v = *p; break;
    case 2: {
      std::uint16_t x;
      std::memcpy(&x, p, 2);
      if (swap) x = byteswap(x);
      v = x;
      break;
    }
    case 4: {
      std::uint32_t x;
      std::memcpy(&x, p, 4);
      if (swap) x = byteswap(x);
      v = x;
      break;
    }
    default: {
      std::uint64_t x;
      std::memcpy(&x, p, 8);
      if (swap) x = byteswap(x);
      v = x;
      break;
    }
  }
  if (sign_extend && size < 8) {
    std::uint64_t sign_bit = 1ull << (size * 8 - 1);
    if (v & sign_bit) {
      v |= ~((sign_bit << 1) - 1);
    }
  }
  return v;
}

/// Stores the low `size` bytes of a 64-bit value in host order.
void store_int(std::uint8_t* p, std::size_t size, std::uint64_t v) noexcept {
  switch (size) {
    case 1: {
      std::uint8_t x = static_cast<std::uint8_t>(v);
      std::memcpy(p, &x, 1);
      break;
    }
    case 2: {
      std::uint16_t x = static_cast<std::uint16_t>(v);
      std::memcpy(p, &x, 2);
      break;
    }
    case 4: {
      std::uint32_t x = static_cast<std::uint32_t>(v);
      std::memcpy(p, &x, 4);
      break;
    }
    default:
      std::memcpy(p, &v, 8);
      break;
  }
}

double load_float(const std::uint8_t* p, std::size_t size, bool swap) noexcept {
  if (size == 4) {
    std::uint32_t bits;
    std::memcpy(&bits, p, 4);
    if (swap) bits = byteswap(bits);
    return static_cast<double>(std::bit_cast<float>(bits));
  }
  std::uint64_t bits;
  std::memcpy(&bits, p, 8);
  if (swap) bits = byteswap(bits);
  return std::bit_cast<double>(bits);
}

void store_float(std::uint8_t* p, std::size_t size, double v) noexcept {
  if (size == 4) {
    float f = static_cast<float>(v);
    std::memcpy(p, &f, 4);
  } else {
    std::memcpy(p, &v, 8);
  }
}

[[noreturn]] void incompatible(const Format& wire, const Format& native,
                               const std::string& what) {
  throw FormatError("cannot convert wire format '" + wire.name() + "' (id " +
                    std::to_string(wire.id()) + ") to native format '" +
                    native.name() + "': " + what);
}

}  // namespace

PlanHandle ConversionPlan::build(FormatHandle wire, FormatHandle native,
                                 bool coalesce) {
  auto plan = std::shared_ptr<ConversionPlan>(new ConversionPlan());
  plan->wire_ = wire;
  plan->native_ = native;
  plan->src_order_ = wire->profile().byte_order;
  plan->src_ptr_size_ = wire->profile().pointer_size;
  bool swap = wire->profile().byte_order != host_byte_order();

  for (const Field& nf : native->fields()) {
    const Field* wf = wire->field_named(nf.name);
    ConvOp op;
    op.dst_offset = static_cast<std::uint32_t>(nf.offset);

    if (wf == nullptr) {
      // Restricted evolution: the sender predates this field. Apply the
      // schema default if the metadata declares one, else zero-fill.
      if (!nf.default_text.empty()) {
        auto bits =
            parse_default_scalar(nf.type.cls, nf.size, nf.default_text);
        if (bits) {
          op.kind = ConvOp::Kind::kDefault;
          op.dst_size = static_cast<std::uint32_t>(nf.size);
          op.default_bits = *bits;
          plan->ops_.push_back(std::move(op));
          continue;
        }
      }
      op.kind = ConvOp::Kind::kZero;
      op.count = static_cast<std::uint32_t>(
          nf.slot_size(native->profile().pointer_size));
      plan->ops_.push_back(std::move(op));
      continue;
    }

    op.src_offset = static_cast<std::uint32_t>(wf->offset);
    op.src_size = static_cast<std::uint32_t>(wf->size);
    op.dst_size = static_cast<std::uint32_t>(nf.size);
    op.swap = swap;

    // Array-kind reconciliation.
    if ((wf->type.array == ArrayKind::kDynamic) !=
        (nf.type.array == ArrayKind::kDynamic)) {
      incompatible(*wire, *native,
                   "field '" + nf.name + "' is dynamic on one side only");
    }

    bool dynamic = nf.type.array == ArrayKind::kDynamic;
    std::size_t src_count =
        wf->type.array == ArrayKind::kStatic ? wf->type.static_count : 1;
    std::size_t dst_count =
        nf.type.array == ArrayKind::kStatic ? nf.type.static_count : 1;
    std::size_t copy_count = src_count < dst_count ? src_count : dst_count;
    op.count = static_cast<std::uint32_t>(copy_count);
    op.zero_tail =
        static_cast<std::uint32_t>((dst_count - copy_count) * nf.size);

    auto classes_compatible = [](FieldClass a, FieldClass b) {
      if (a == b) return true;
      bool a_int = a == FieldClass::kInteger || a == FieldClass::kUnsigned;
      bool b_int = b == FieldClass::kInteger || b == FieldClass::kUnsigned;
      return a_int && b_int;
    };
    if (!classes_compatible(wf->type.cls, nf.type.cls)) {
      incompatible(*wire, *native,
                   "field '" + nf.name + "' changed class (" +
                       std::string(field_class_name(wf->type.cls)) + " -> " +
                       std::string(field_class_name(nf.type.cls)) + ")");
    }

    if (dynamic) {
      op.kind = ConvOp::Kind::kDynArray;
      const Field& count_field = wire->fields()[wf->count_field_index];
      op.src_count_offset = static_cast<std::uint32_t>(count_field.offset);
      op.src_count_size = static_cast<std::uint8_t>(count_field.size);
      op.src_count_signed = count_field.type.cls == FieldClass::kInteger;
      op.elem_class = nf.type.cls;
      op.sign_extend = wf->type.cls == FieldClass::kInteger;
      if (nf.type.cls == FieldClass::kNested) {
        op.subplan = build(wf->subformat, nf.subformat, coalesce);
        op.dst_align =
            static_cast<std::uint8_t>(nf.subformat->alignment());
      } else {
        op.dst_align = static_cast<std::uint8_t>(
            native->profile().scalar_align(nf.size));
      }
      plan->ops_.push_back(std::move(op));
      continue;
    }

    switch (nf.type.cls) {
      case FieldClass::kString:
        op.kind = ConvOp::Kind::kString;
        break;
      case FieldClass::kNested:
        op.kind = ConvOp::Kind::kNestedStatic;
        op.subplan = build(wf->subformat, nf.subformat, coalesce);
        break;
      case FieldClass::kChar:
        op.kind = ConvOp::Kind::kCopy;
        op.count = static_cast<std::uint32_t>(copy_count);  // bytes == elems
        break;
      case FieldClass::kFloat:
        if (!op.swap && op.src_size == op.dst_size) {
          op.kind = ConvOp::Kind::kCopy;
          op.count = static_cast<std::uint32_t>(copy_count * nf.size);
        } else {
          op.kind = ConvOp::Kind::kFloat;
        }
        break;
      case FieldClass::kInteger:
      case FieldClass::kUnsigned:
        op.sign_extend = wf->type.cls == FieldClass::kInteger;
        if (!op.swap && op.src_size == op.dst_size) {
          op.kind = ConvOp::Kind::kCopy;
          op.count = static_cast<std::uint32_t>(copy_count * nf.size);
        } else {
          op.kind = ConvOp::Kind::kInt;
        }
        break;
    }
    plan->ops_.push_back(std::move(op));
  }

  if (coalesce) {
    // Merge adjacent raw copies that are contiguous in both source and
    // destination — in the homogeneous case this collapses whole runs of
    // fields (padding included is NOT merged; only exactly adjacent slots).
    std::vector<ConvOp> merged;
    merged.reserve(plan->ops_.size());
    for (ConvOp& op : plan->ops_) {
      if (op.kind == ConvOp::Kind::kCopy && op.zero_tail == 0 &&
          !merged.empty()) {
        ConvOp& prev = merged.back();
        if (prev.kind == ConvOp::Kind::kCopy && prev.zero_tail == 0 &&
            prev.src_offset + prev.count == op.src_offset &&
            prev.dst_offset + prev.count == op.dst_offset) {
          prev.count += op.count;
          continue;
        }
      }
      merged.push_back(std::move(op));
    }
    plan->ops_ = std::move(merged);
  }

  plan->trivial_ =
      plan->ops_.size() == 1 && plan->ops_[0].kind == ConvOp::Kind::kCopy &&
      plan->ops_[0].src_offset == 0 && plan->ops_[0].dst_offset == 0 &&
      plan->ops_[0].count == native->struct_size() &&
      wire->struct_size() == native->struct_size();
  return plan;
}

void ConversionPlan::execute(const std::uint8_t* body, std::size_t body_len,
                             const std::uint8_t* src_region,
                             std::uint8_t* dst_region,
                             DecodeArena& arena) const {
  for (const ConvOp& op : ops_) {
    const std::uint8_t* src = src_region + op.src_offset;
    std::uint8_t* dst = dst_region + op.dst_offset;

    switch (op.kind) {
      case ConvOp::Kind::kCopy:
        std::memcpy(dst, src, op.count);
        if (op.zero_tail != 0) {
          std::memset(dst + op.count, 0, op.zero_tail);
        }
        break;

      case ConvOp::Kind::kZero:
        std::memset(dst, 0, op.count);
        break;

      case ConvOp::Kind::kDefault:
        store_int(dst, op.dst_size, op.default_bits);
        break;

      case ConvOp::Kind::kInt:
        for (std::uint32_t i = 0; i < op.count; ++i) {
          std::uint64_t v = load_int(src + i * op.src_size, op.src_size,
                                     op.swap, op.sign_extend);
          store_int(dst + i * op.dst_size, op.dst_size, v);
        }
        if (op.zero_tail != 0) {
          std::memset(dst + op.count * op.dst_size, 0, op.zero_tail);
        }
        break;

      case ConvOp::Kind::kFloat:
        for (std::uint32_t i = 0; i < op.count; ++i) {
          double v = load_float(src + i * op.src_size, op.src_size, op.swap);
          store_float(dst + i * op.dst_size, op.dst_size, v);
        }
        if (op.zero_tail != 0) {
          std::memset(dst + op.count * op.dst_size, 0, op.zero_tail);
        }
        break;

      case ConvOp::Kind::kString: {
        std::uint64_t off =
            load_int(src, src_ptr_size_, op.swap, /*sign_extend=*/false);
        char* out = nullptr;
        if (off != 0) {
          if (off >= body_len) {
            throw DecodeError("string offset out of range");
          }
          const auto* start = reinterpret_cast<const char*>(body + off);
          const void* nul = std::memchr(start, 0, body_len - off);
          if (nul == nullptr) {
            throw DecodeError("unterminated string in variable section");
          }
          std::size_t len = static_cast<const char*>(nul) - start;
          out = arena.copy_string(start, len);
        }
        std::memcpy(dst, &out, sizeof(out));
        break;
      }

      case ConvOp::Kind::kDynArray: {
        std::uint64_t n_raw =
            load_int(src_region + op.src_count_offset, op.src_count_size,
                     op.swap, op.src_count_signed);
        auto n_signed = static_cast<std::int64_t>(n_raw);
        if (op.src_count_signed && n_signed < 0) {
          throw DecodeError("negative dynamic array count");
        }
        std::uint64_t n = n_raw;
        std::uint64_t off =
            load_int(src, src_ptr_size_, op.swap, /*sign_extend=*/false);
        void* out = nullptr;
        if (n != 0) {
          if (off == 0) {
            throw DecodeError("null dynamic array with nonzero count");
          }
          if (off > body_len ||
              n > (body_len - off) / op.src_size) {
            throw DecodeError("dynamic array extends past message body");
          }
          const std::uint8_t* elems = body + off;
          out = arena.allocate(static_cast<std::size_t>(n) * op.dst_size,
                               op.dst_align);
          auto* dst_elems = static_cast<std::uint8_t*>(out);
          if (op.elem_class == FieldClass::kNested) {
            for (std::uint64_t i = 0; i < n; ++i) {
              op.subplan->execute(body, body_len, elems + i * op.src_size,
                                  dst_elems + i * op.dst_size, arena);
            }
          } else if (op.elem_class == FieldClass::kChar) {
            std::memcpy(dst_elems, elems, static_cast<std::size_t>(n));
          } else if (!op.swap && op.src_size == op.dst_size) {
            // Same representation (floats included): one block copy.
            std::memcpy(dst_elems, elems,
                        static_cast<std::size_t>(n) * op.src_size);
          } else if (op.elem_class == FieldClass::kFloat) {
            for (std::uint64_t i = 0; i < n; ++i) {
              store_float(dst_elems + i * op.dst_size, op.dst_size,
                          load_float(elems + i * op.src_size, op.src_size,
                                     op.swap));
            }
          } else {
            for (std::uint64_t i = 0; i < n; ++i) {
              store_int(dst_elems + i * op.dst_size, op.dst_size,
                        load_int(elems + i * op.src_size, op.src_size, op.swap,
                                 op.sign_extend));
            }
          }
        }
        std::memcpy(dst, &out, sizeof(out));
        break;
      }

      case ConvOp::Kind::kNestedStatic:
        for (std::uint32_t i = 0; i < op.count; ++i) {
          op.subplan->execute(body, body_len, src + i * op.src_size,
                              dst + i * op.dst_size, arena);
        }
        if (op.zero_tail != 0) {
          std::memset(dst + op.count * op.dst_size, 0, op.zero_tail);
        }
        break;
    }
  }
}

}  // namespace omf::pbio
