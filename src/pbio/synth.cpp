#include "pbio/synth.hpp"

#include <bit>
#include <cstring>

#include "pbio/wire.hpp"

namespace omf::pbio {

namespace {

struct SynthContext {
  Buffer& out;
  std::size_t body_base;
  const arch::Profile& profile;  // the foreign profile

  void store_uint_at(std::size_t at, std::size_t size, std::uint64_t v) {
    switch (size) {
      case 1:
        out.patch_int<std::uint8_t>(at, static_cast<std::uint8_t>(v),
                                    profile.byte_order);
        break;
      case 2:
        out.patch_int<std::uint16_t>(at, static_cast<std::uint16_t>(v),
                                     profile.byte_order);
        break;
      case 4:
        out.patch_int<std::uint32_t>(at, static_cast<std::uint32_t>(v),
                                     profile.byte_order);
        break;
      default:
        out.patch_int<std::uint64_t>(at, v, profile.byte_order);
        break;
    }
  }

  void patch_pointer_slot(std::size_t at, std::size_t var_off) {
    if (profile.pointer_size == 4 && var_off > 0xFFFFFFFFull) {
      throw EncodeError("variable section exceeds 32-bit offsets");
    }
    store_uint_at(at, profile.pointer_size, var_off);
  }

  void align_var_section(std::size_t align) {
    std::size_t body_len = out.size() - body_base;
    std::size_t padded = align_up(body_len, align);
    if (padded != body_len) out.append_zeros(padded - body_len);
  }
};

void fill_region(const Format& fmt, const DynamicRecord& rec,
                 std::size_t region_at, SynthContext& ctx);

void store_scalar(const Field& f, const DynamicRecord& rec,
                  std::size_t slot_at, std::size_t index, bool from_array,
                  SynthContext& ctx) {
  switch (f.type.cls) {
    case FieldClass::kInteger:
    case FieldClass::kUnsigned: {
      std::uint64_t v;
      if (from_array) {
        v = rec.get_uint_array(f.name)[index];
      } else {
        v = rec.get_uint(f.name);
      }
      ctx.store_uint_at(slot_at, f.size, v);
      break;
    }
    case FieldClass::kFloat: {
      double v = from_array ? rec.get_float_array(f.name)[index]
                            : rec.get_float(f.name);
      if (f.size == 4) {
        ctx.store_uint_at(slot_at, 4, std::bit_cast<std::uint32_t>(
                                          static_cast<float>(v)));
      } else {
        ctx.store_uint_at(slot_at, 8, std::bit_cast<std::uint64_t>(v));
      }
      break;
    }
    case FieldClass::kChar: {
      char v = rec.get_char(f.name);
      ctx.out.data()[slot_at] = static_cast<std::uint8_t>(v);
      break;
    }
    default:
      throw FormatError("store_scalar on non-scalar field '" + f.name + "'");
  }
}

void fill_field(const Field& f, const DynamicRecord& rec,
                std::size_t region_at, SynthContext& ctx) {
  std::size_t slot_at = region_at + f.offset;

  // Fields the record's format does not know stay zero (evolution).
  if (rec.format().field_named(f.name) == nullptr) return;

  switch (f.type.array) {
    case ArrayKind::kNone:
      switch (f.type.cls) {
        case FieldClass::kString: {
          const char* s = rec.get_string(f.name);
          if (s == nullptr) {
            ctx.patch_pointer_slot(slot_at, 0);
          } else {
            std::size_t len = std::strlen(s);
            std::size_t var_off = ctx.out.size() - ctx.body_base;
            ctx.out.append(s, len + 1);
            ctx.patch_pointer_slot(slot_at, var_off);
          }
          break;
        }
        case FieldClass::kNested:
          fill_region(*f.subformat, rec.nested(f.name), slot_at, ctx);
          break;
        default:
          store_scalar(f, rec, slot_at, 0, /*from_array=*/false, ctx);
          break;
      }
      break;

    case ArrayKind::kStatic: {
      std::size_t declared = f.type.static_count;
      if (f.type.cls == FieldClass::kNested) {
        std::size_t have = rec.array_length(f.name);
        std::size_t n = have < declared ? have : declared;
        for (std::size_t i = 0; i < n; ++i) {
          fill_region(*f.subformat, rec.nested(f.name, i),
                      slot_at + i * f.subformat->struct_size(), ctx);
        }
      } else if (f.type.cls == FieldClass::kChar) {
        std::string bytes = rec.get_char_array(f.name);
        std::size_t n = bytes.size() < declared ? bytes.size() : declared;
        std::memcpy(ctx.out.data() + slot_at, bytes.data(), n);
      } else {
        std::size_t have = rec.array_length(f.name);
        std::size_t n = have < declared ? have : declared;
        for (std::size_t i = 0; i < n; ++i) {
          store_scalar(f, rec, slot_at + i * f.size, i, /*from_array=*/true,
                       ctx);
        }
      }
      break;
    }

    case ArrayKind::kDynamic: {
      std::size_t n = rec.array_length(f.name);
      if (n == 0) {
        ctx.patch_pointer_slot(slot_at, 0);
        break;
      }
      std::size_t elem = f.type.cls == FieldClass::kNested
                             ? f.subformat->struct_size()
                             : f.size;
      std::size_t align = f.type.cls == FieldClass::kNested
                              ? f.subformat->alignment()
                              : ctx.profile.scalar_align(f.size);
      ctx.align_var_section(align);
      std::size_t var_off = ctx.out.size() - ctx.body_base;
      std::size_t elems_at = ctx.out.grow(n * elem);
      if (f.type.cls == FieldClass::kNested) {
        for (std::size_t i = 0; i < n; ++i) {
          fill_region(*f.subformat, rec.nested(f.name, i), elems_at + i * elem,
                      ctx);
        }
      } else if (f.type.cls == FieldClass::kChar) {
        std::string bytes = rec.get_char_array(f.name);
        std::memcpy(ctx.out.data() + elems_at, bytes.data(),
                    bytes.size() < n ? bytes.size() : n);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          store_scalar(f, rec, elems_at + i * elem, i, /*from_array=*/true,
                       ctx);
        }
      }
      ctx.patch_pointer_slot(slot_at, var_off);
      break;
    }
  }
}

void fill_region(const Format& fmt, const DynamicRecord& rec,
                 std::size_t region_at, SynthContext& ctx) {
  for (const Field& f : fmt.fields()) {
    fill_field(f, rec, region_at, ctx);
  }
}

}  // namespace

Buffer synthesize_wire(const Format& foreign_format,
                       const DynamicRecord& values) {
  Buffer out(WireHeader::kSize + foreign_format.struct_size() + 64);
  WireHeader header;
  header.byte_order = foreign_format.profile().byte_order;
  header.format_id = foreign_format.id();
  std::size_t body_length_at = header.write(out);

  SynthContext ctx{out, out.size(), foreign_format.profile()};
  std::size_t region_at = out.grow(foreign_format.struct_size());
  fill_region(foreign_format, values, region_at, ctx);

  std::size_t body_len = out.size() - ctx.body_base;
  out.patch_int<std::uint32_t>(body_length_at,
                               static_cast<std::uint32_t>(body_len),
                               header.byte_order);
  return out;
}

}  // namespace omf::pbio
