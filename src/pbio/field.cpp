#include "pbio/field.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace omf::pbio {

std::string_view field_class_name(FieldClass cls) noexcept {
  switch (cls) {
    case FieldClass::kInteger: return "integer";
    case FieldClass::kUnsigned: return "unsigned";
    case FieldClass::kFloat: return "float";
    case FieldClass::kChar: return "char";
    case FieldClass::kString: return "string";
    case FieldClass::kNested: return "<nested>";
  }
  return "?";
}

TypeSpec parse_type_string(std::string_view type) {
  TypeSpec spec;
  std::string_view base = type;

  // Split off an optional array suffix "[...]".
  std::size_t bracket = type.find('[');
  if (bracket != std::string_view::npos) {
    if (type.back() != ']') {
      throw FormatError("malformed array suffix in type '" + std::string(type) +
                        "'");
    }
    base = type.substr(0, bracket);
    std::string_view inner = type.substr(bracket + 1,
                                         type.size() - bracket - 2);
    if (inner.empty()) {
      throw FormatError("empty array bound in type '" + std::string(type) +
                        "'");
    }
    if (auto n = parse_uint(inner)) {
      if (*n == 0) {
        throw FormatError("zero-length static array in type '" +
                          std::string(type) + "'");
      }
      spec.array = ArrayKind::kStatic;
      spec.static_count = static_cast<std::size_t>(*n);
    } else {
      spec.array = ArrayKind::kDynamic;
      spec.size_field = std::string(inner);
    }
  }

  if (base.empty()) {
    throw FormatError("empty base type in type string '" + std::string(type) +
                      "'");
  }

  if (base == "integer") {
    spec.cls = FieldClass::kInteger;
  } else if (base == "unsigned" || base == "unsigned integer") {
    spec.cls = FieldClass::kUnsigned;
  } else if (base == "float" || base == "double") {
    // PBIO separates type from size: "float" covers both widths; the field
    // size distinguishes binary32 from binary64.
    spec.cls = FieldClass::kFloat;
  } else if (base == "char") {
    spec.cls = FieldClass::kChar;
  } else if (base == "string") {
    spec.cls = FieldClass::kString;
  } else {
    spec.cls = FieldClass::kNested;
    spec.nested_name = std::string(base);
  }

  if (spec.cls == FieldClass::kString && spec.array != ArrayKind::kNone) {
    throw FormatError("arrays of strings are not supported: '" +
                      std::string(type) + "'");
  }
  return spec;
}

std::optional<std::uint64_t> parse_default_scalar(FieldClass cls,
                                                  std::size_t size,
                                                  std::string_view text) {
  text = trim(text);
  switch (cls) {
    case FieldClass::kInteger: {
      auto v = parse_int(text);
      if (!v) return std::nullopt;
      return static_cast<std::uint64_t>(*v);
    }
    case FieldClass::kUnsigned: {
      // Accept the XSD boolean literals for boolean-mapped fields.
      if (text == "true") return 1;
      if (text == "false") return 0;
      auto v = parse_uint(text);
      if (!v) return std::nullopt;
      return *v;
    }
    case FieldClass::kFloat: {
      auto v = parse_double(text);
      if (!v) return std::nullopt;
      if (size == 4) {
        float f = static_cast<float>(*v);
        std::uint32_t bits;
        std::memcpy(&bits, &f, 4);
        return bits;
      }
      std::uint64_t bits;
      double d = *v;
      std::memcpy(&bits, &d, 8);
      return bits;
    }
    case FieldClass::kChar: {
      if (text.size() == 1) {
        return static_cast<std::uint8_t>(text[0]);
      }
      auto v = parse_int(text);
      if (!v || *v < -128 || *v > 255) return std::nullopt;
      return static_cast<std::uint64_t>(*v) & 0xFF;
    }
    case FieldClass::kString:
    case FieldClass::kNested:
      return std::nullopt;
  }
  return std::nullopt;
}

std::string type_string(const TypeSpec& spec) {
  std::string out = spec.cls == FieldClass::kNested
                        ? spec.nested_name
                        : std::string(field_class_name(spec.cls));
  switch (spec.array) {
    case ArrayKind::kNone:
      break;
    case ArrayKind::kStatic:
      out += "[" + std::to_string(spec.static_count) + "]";
      break;
    case ArrayKind::kDynamic:
      out += "[" + spec.size_field + "]";
      break;
  }
  return out;
}

}  // namespace omf::pbio
