// Process-wide cache of compiled conversion plans.
//
// The paper's amortization argument — conversion code is generated once per
// (wire format, native format) pair and reused for every subsequent message
// — only pays off at server scale if the cache is shared: a process holding
// N connections from senders on the same architecture should compile each
// plan once, not N times. PlanCache is that shared cache. It is read-mostly
// (a steady-state lookup takes only a shared lock), and misses have per-key
// once semantics: two threads racing to decode the first message of a pair
// never both compile — one compiles outside any cache-wide lock, the other
// blocks on that key alone and reuses the result.
//
// A Decoder constructed without an explicit cache owns a private one, which
// preserves the historical per-decoder behavior (and serves as the ablation
// baseline for the concurrent-receive benchmark).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "pbio/convert.hpp"

namespace omf::pbio {

class PlanCache {
public:
  /// Bounds-certification hook invoked on freshly compiled plans when the
  /// requesting options carry `verify`. Installed process-wide (by
  /// `analysis::install_plan_verifier`) rather than linked directly: pbio
  /// sits below analysis in the layering, so the certifier arrives as a
  /// function pointer. The verifier throws to reject a plan; the exception
  /// propagates out of get_or_build and the key stays uncompiled.
  using PlanVerifier = void (*)(const ConversionPlan&);

  /// Registers (or, with nullptr, clears) the process-wide verifier.
  /// Returns the previous hook.
  static PlanVerifier set_plan_verifier(PlanVerifier v) noexcept;

  /// The currently installed verifier, nullptr when none.
  static PlanVerifier plan_verifier() noexcept;

  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the plan converting `wire` records into `native` records,
  /// compiling it at most once per (wire id, native id, options) key even
  /// under concurrent callers. Compilation runs outside the cache-wide
  /// lock, so a slow compile never stalls lookups of other keys. If
  /// compilation throws (irreconcilable formats), the exception propagates
  /// and the key stays empty — a later call retries.
  PlanHandle get_or_build(const FormatHandle& wire, const FormatHandle& native,
                          PlanOptions options = {});

  /// Number of cached (or currently compiling) plans.
  std::size_t size() const;

  /// Every fully compiled plan currently in the cache (entries still being
  /// compiled by another thread are skipped). The introspection hook for
  /// auditors: `analysis::audit_plan` can sweep a server's whole cache
  /// without racing the decode paths that fill it.
  std::vector<PlanHandle> snapshot() const;

  /// Monotonic counters for tests and benchmarks. `compiles` counts actual
  /// plan builds; under races it stays equal to the number of distinct keys
  /// ever requested — that equality is the once-per-key guarantee.
  ///
  /// Deprecated shim: these per-instance numbers remain for tests and
  /// ablations, but production observation should read the process-wide
  /// registry aggregates ("pbio.plan_cache.hits" / ".misses" /
  /// ".compiles" and the "pbio.plan_cache.compile_ns" histogram), which
  /// sum over every cache in the process.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t compiles = 0;
  };
  Stats stats() const;

private:
  struct Key {
    FormatId wire = 0;
    FormatId native = 0;
    std::uint8_t options = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // Both ids are already FNV digests; mix asymmetrically so (a,b) and
      // (b,a) land apart.
      std::uint64_t h = k.wire * 0x9E3779B97F4A7C15ull ^ k.native;
      return static_cast<std::size_t>(h ^ (h >> 32) ^ k.options);
    }
  };
  struct Entry {
    std::once_flag once;
    PlanHandle plan;  // written exactly once, under `once`
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> entries_;
  std::vector<PlanHandle> compiled_;  // fully built plans, for snapshot()
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> compiles_{0};
};

}  // namespace omf::pbio
