#include "pbio/metaserde.hpp"

#include <vector>

namespace omf::pbio {

namespace {

constexpr std::uint32_t kBundleMagic = 0x464D424Fu;  // "OBMF"
constexpr ByteOrder kOrder = ByteOrder::kLittle;

void put_string(Buffer& out, std::string_view s) {
  out.append_int<std::uint32_t>(static_cast<std::uint32_t>(s.size()), kOrder);
  out.append(s);
}

std::string get_string(BufferReader& in) {
  std::uint32_t len = in.read_int<std::uint32_t>(kOrder);
  return in.read_string(len);
}

void serialize_one(const Format& f, Buffer& out) {
  put_string(out, f.name());
  const arch::Profile& p = f.profile();
  put_string(out, p.name);
  out.append_int<std::uint8_t>(
      p.byte_order == ByteOrder::kBig ? 1 : 0, kOrder);
  out.append_int<std::uint8_t>(p.pointer_size, kOrder);
  out.append_int<std::uint8_t>(p.int_size, kOrder);
  out.append_int<std::uint8_t>(p.long_size, kOrder);
  out.append_int<std::uint8_t>(p.alignment_cap, kOrder);
  out.append_int<std::uint64_t>(f.struct_size(), kOrder);
  out.append_int<std::uint32_t>(static_cast<std::uint32_t>(f.fields().size()),
                                kOrder);
  for (const Field& field : f.fields()) {
    put_string(out, field.name);
    put_string(out, type_string(field.type));
    out.append_int<std::uint64_t>(field.size, kOrder);
    out.append_int<std::uint64_t>(field.offset, kOrder);
    put_string(out, field.default_text);
  }
}

void collect(const Format& f, std::vector<const Format*>& out) {
  for (const Field& field : f.fields()) {
    if (field.subformat) collect(*field.subformat, out);
  }
  // Dependencies first; dedupe by id.
  for (const Format* existing : out) {
    if (existing->id() == f.id()) return;
  }
  out.push_back(&f);
}

}  // namespace

Buffer serialize_format_bundle(const Format& format) {
  std::vector<const Format*> formats;
  collect(format, formats);

  Buffer out;
  out.append_int<std::uint32_t>(kBundleMagic, kOrder);
  out.append_int<std::uint32_t>(static_cast<std::uint32_t>(formats.size()),
                                kOrder);
  for (const Format* f : formats) {
    serialize_one(*f, out);
  }
  return out;
}

std::vector<RawFormat> decode_format_bundle(
    std::span<const std::uint8_t> bytes) {
  BufferReader in(bytes);
  if (in.read_int<std::uint32_t>(kOrder) != kBundleMagic) {
    throw DecodeError("not a format bundle (bad magic)");
  }
  std::uint32_t count = in.read_int<std::uint32_t>(kOrder);
  if (count == 0) {
    throw DecodeError("empty format bundle");
  }

  std::vector<RawFormat> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RawFormat raw;
    raw.name = get_string(in);
    raw.profile.name = get_string(in);
    raw.profile.byte_order = in.read_int<std::uint8_t>(kOrder) != 0
                                 ? ByteOrder::kBig
                                 : ByteOrder::kLittle;
    raw.profile.pointer_size = in.read_int<std::uint8_t>(kOrder);
    raw.profile.int_size = in.read_int<std::uint8_t>(kOrder);
    raw.profile.long_size = in.read_int<std::uint8_t>(kOrder);
    raw.profile.alignment_cap = in.read_int<std::uint8_t>(kOrder);
    raw.struct_size = in.read_int<std::uint64_t>(kOrder);
    std::uint32_t field_count = in.read_int<std::uint32_t>(kOrder);

    raw.fields.reserve(field_count);
    for (std::uint32_t j = 0; j < field_count; ++j) {
      RawField f;
      f.name = get_string(in);
      f.type = get_string(in);
      f.size = in.read_int<std::uint64_t>(kOrder);
      f.offset = in.read_int<std::uint64_t>(kOrder);
      f.default_text = get_string(in);
      raw.fields.push_back(std::move(f));
    }
    out.push_back(std::move(raw));
  }
  return out;
}

FormatHandle deserialize_format_bundle(FormatRegistry& registry,
                                       std::span<const std::uint8_t> bytes) {
  std::vector<RawFormat> raws = decode_format_bundle(bytes);
  FormatHandle last;
  for (const RawFormat& raw : raws) {
    std::vector<IOField> fields;
    fields.reserve(raw.fields.size());
    for (const RawField& rf : raw.fields) {
      fields.emplace_back(rf.name, rf.type, static_cast<std::size_t>(rf.size),
                          static_cast<std::size_t>(rf.offset),
                          rf.default_text);
    }
    last = registry.register_format(raw.name, fields,
                                    static_cast<std::size_t>(raw.struct_size),
                                    raw.profile);
  }
  return last;
}

}  // namespace omf::pbio
