#include "pbio/metaserde.hpp"

#include <vector>

namespace omf::pbio {

namespace {

constexpr std::uint32_t kBundleMagic = 0x464D424Fu;  // "OBMF"
constexpr ByteOrder kOrder = ByteOrder::kLittle;

void put_string(Buffer& out, std::string_view s) {
  out.append_int<std::uint32_t>(static_cast<std::uint32_t>(s.size()), kOrder);
  out.append(s);
}

std::string get_string(BufferReader& in) {
  std::uint32_t len = in.read_int<std::uint32_t>(kOrder);
  return in.read_string(len);
}

void serialize_one(const Format& f, Buffer& out) {
  put_string(out, f.name());
  const arch::Profile& p = f.profile();
  put_string(out, p.name);
  out.append_int<std::uint8_t>(
      p.byte_order == ByteOrder::kBig ? 1 : 0, kOrder);
  out.append_int<std::uint8_t>(p.pointer_size, kOrder);
  out.append_int<std::uint8_t>(p.int_size, kOrder);
  out.append_int<std::uint8_t>(p.long_size, kOrder);
  out.append_int<std::uint8_t>(p.alignment_cap, kOrder);
  out.append_int<std::uint64_t>(f.struct_size(), kOrder);
  out.append_int<std::uint32_t>(static_cast<std::uint32_t>(f.fields().size()),
                                kOrder);
  for (const Field& field : f.fields()) {
    put_string(out, field.name);
    put_string(out, type_string(field.type));
    out.append_int<std::uint64_t>(field.size, kOrder);
    out.append_int<std::uint64_t>(field.offset, kOrder);
    put_string(out, field.default_text);
  }
}

void collect(const Format& f, std::vector<const Format*>& out) {
  for (const Field& field : f.fields()) {
    if (field.subformat) collect(*field.subformat, out);
  }
  // Dependencies first; dedupe by id.
  for (const Format* existing : out) {
    if (existing->id() == f.id()) return;
  }
  out.push_back(&f);
}

}  // namespace

Buffer serialize_format_bundle(const Format& format) {
  std::vector<const Format*> formats;
  collect(format, formats);

  Buffer out;
  out.append_int<std::uint32_t>(kBundleMagic, kOrder);
  out.append_int<std::uint32_t>(static_cast<std::uint32_t>(formats.size()),
                                kOrder);
  for (const Format* f : formats) {
    serialize_one(*f, out);
  }
  return out;
}

FormatHandle deserialize_format_bundle(FormatRegistry& registry,
                                       std::span<const std::uint8_t> bytes) {
  BufferReader in(bytes);
  if (in.read_int<std::uint32_t>(kOrder) != kBundleMagic) {
    throw DecodeError("not a format bundle (bad magic)");
  }
  std::uint32_t count = in.read_int<std::uint32_t>(kOrder);
  if (count == 0) {
    throw DecodeError("empty format bundle");
  }

  FormatHandle last;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = get_string(in);
    arch::Profile profile;
    profile.name = get_string(in);
    profile.byte_order = in.read_int<std::uint8_t>(kOrder) != 0
                             ? ByteOrder::kBig
                             : ByteOrder::kLittle;
    profile.pointer_size = in.read_int<std::uint8_t>(kOrder);
    profile.int_size = in.read_int<std::uint8_t>(kOrder);
    profile.long_size = in.read_int<std::uint8_t>(kOrder);
    profile.alignment_cap = in.read_int<std::uint8_t>(kOrder);
    std::uint64_t struct_size = in.read_int<std::uint64_t>(kOrder);
    std::uint32_t field_count = in.read_int<std::uint32_t>(kOrder);

    std::vector<IOField> fields;
    fields.reserve(field_count);
    for (std::uint32_t j = 0; j < field_count; ++j) {
      IOField f;
      f.name = get_string(in);
      f.type = get_string(in);
      f.size = static_cast<std::size_t>(in.read_int<std::uint64_t>(kOrder));
      f.offset = static_cast<std::size_t>(in.read_int<std::uint64_t>(kOrder));
      f.default_text = get_string(in);
      fields.push_back(std::move(f));
    }
    last = registry.register_format(name, fields,
                                    static_cast<std::size_t>(struct_size),
                                    profile);
  }
  return last;
}

}  // namespace omf::pbio
