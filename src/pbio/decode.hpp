// Receiver-side decoding.
//
// Two paths, mirroring PBIO:
//
//  * decode_in_place — the homogeneous fast path. When the wire format *is*
//    the receiver's native format, no data is converted or copied at all:
//    pointer slots in the (mutable) receive buffer are patched from
//    body-relative offsets back to real addresses and the caller gets a
//    pointer to the struct, living inside the buffer. This is the "move data
//    directly from the transmission medium into memory" claim of the paper.
//
//  * Decoder::decode — the general path. Parses the header, looks the wire
//    format up by id in the registry, compiles (or fetches from cache) a
//    conversion plan against the caller's native format, and executes it
//    into caller-provided struct memory + an arena.
#pragma once

#include <memory>
#include <span>

#include "pbio/arena.hpp"
#include "pbio/convert.hpp"
#include "pbio/format.hpp"
#include "pbio/plan_cache.hpp"
#include "pbio/wire.hpp"

namespace omf::pbio {

class Decoder {
public:
  /// `registry` is where wire formats are looked up by id; it must outlive
  /// the decoder. `coalesce_plans` is the plan-compilation optimization
  /// switch (on in production; the ablation bench turns it off). The
  /// decoder owns a private plan cache.
  explicit Decoder(const FormatRegistry& registry, bool coalesce_plans = true)
      : Decoder(registry, nullptr, PlanOptions{coalesce_plans, true}) {}

  /// Shares `cache` with other decoders — the production shape for a server
  /// process, where every connection's decoder reuses one process-wide
  /// cache and a plan is compiled once per format pair for the whole
  /// process. Passing nullptr creates a private cache.
  Decoder(const FormatRegistry& registry, std::shared_ptr<PlanCache> cache,
          PlanOptions options = {})
      : registry_(&registry),
        options_(options),
        cache_(cache ? std::move(cache) : std::make_shared<PlanCache>()) {}

  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  /// Decodes a complete wire message into `out_struct`, laid out per
  /// `native` (which must be a native-profile format). Variable-length data
  /// is materialized in `arena`. Throws DecodeError for malformed messages
  /// and FormatError when the wire format id is not in the registry or the
  /// formats cannot be reconciled.
  void decode(std::span<const std::uint8_t> message, const Format& native,
              void* out_struct, DecodeArena& arena);

  /// Decodes `n` complete wire messages that all carry the *same* wire
  /// format id (DecodeError otherwise — callers group bursts by format)
  /// into `out_structs[i]`, each laid out per `native`. Header parsing,
  /// plan lookup, and the plan walk itself are paid once per batch rather
  /// than once per message: the plan's op program runs op-outer across all
  /// n bodies (ConversionPlan::convert_batch), which is where bursts of
  /// small homogeneous messages recover the per-message fixed costs.
  /// Matched-layout (trivial) plans decode as one memcpy per message.
  void decode_batch(const std::span<const std::uint8_t>* messages,
                    std::size_t n, const Format& native,
                    void* const* out_structs, DecodeArena& arena);

  /// Returns the cached (or freshly compiled) plan for a format pair.
  /// Thread-safe; concurrent callers compile a given pair at most once.
  PlanHandle plan_for(const FormatHandle& wire, const FormatHandle& native);

  /// Number of compiled plans currently cached. For a decoder sharing a
  /// process-wide cache this counts the whole cache, not just the pairs
  /// this decoder touched.
  std::size_t cached_plans() const;

  /// The cache this decoder resolves plans from (private unless one was
  /// shared in at construction).
  const std::shared_ptr<PlanCache>& plan_cache() const noexcept {
    return cache_;
  }

  /// Plan-compilation options this decoder was constructed with.
  PlanOptions plan_options() const noexcept { return options_; }

  /// Reads the format id out of a message header without decoding. Lets
  /// receivers detect unknown formats and fetch metadata before decoding.
  static FormatId peek_format_id(std::span<const std::uint8_t> message);

  /// Parses and validates just the header.
  static WireHeader peek_header(std::span<const std::uint8_t> message);

  /// Zero-copy homogeneous decode; see file comment. `message` must remain
  /// alive and unmodified (other than this call's patching) while the
  /// returned struct is in use. Throws DecodeError if the message's format
  /// id differs from `native.id()` or the body is malformed. Must be called
  /// at most once per message buffer.
  static void* decode_in_place(const Format& native, std::uint8_t* message,
                               std::size_t len);

private:
  const FormatRegistry* registry_;
  PlanOptions options_;
  std::shared_ptr<PlanCache> cache_;
};

}  // namespace omf::pbio
