// Receiver-side decoding.
//
// Two paths, mirroring PBIO:
//
//  * decode_in_place — the homogeneous fast path. When the wire format *is*
//    the receiver's native format, no data is converted or copied at all:
//    pointer slots in the (mutable) receive buffer are patched from
//    body-relative offsets back to real addresses and the caller gets a
//    pointer to the struct, living inside the buffer. This is the "move data
//    directly from the transmission medium into memory" claim of the paper.
//
//  * Decoder::decode — the general path. Parses the header, looks the wire
//    format up by id in the registry, compiles (or fetches from cache) a
//    conversion plan against the caller's native format, and executes it
//    into caller-provided struct memory + an arena.
#pragma once

#include <mutex>
#include <span>
#include <unordered_map>

#include "pbio/arena.hpp"
#include "pbio/convert.hpp"
#include "pbio/format.hpp"
#include "pbio/wire.hpp"

namespace omf::pbio {

class Decoder {
public:
  /// `registry` is where wire formats are looked up by id; it must outlive
  /// the decoder. `coalesce_plans` is the plan-compilation optimization
  /// switch (on in production; the ablation bench turns it off).
  explicit Decoder(const FormatRegistry& registry, bool coalesce_plans = true)
      : registry_(&registry), coalesce_(coalesce_plans) {}

  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  /// Decodes a complete wire message into `out_struct`, laid out per
  /// `native` (which must be a native-profile format). Variable-length data
  /// is materialized in `arena`. Throws DecodeError for malformed messages
  /// and FormatError when the wire format id is not in the registry or the
  /// formats cannot be reconciled.
  void decode(std::span<const std::uint8_t> message, const Format& native,
              void* out_struct, DecodeArena& arena);

  /// Returns the cached (or freshly compiled) plan for a format pair.
  PlanHandle plan_for(const FormatHandle& wire, const FormatHandle& native);

  /// Number of compiled plans currently cached.
  std::size_t cached_plans() const;

  /// Reads the format id out of a message header without decoding. Lets
  /// receivers detect unknown formats and fetch metadata before decoding.
  static FormatId peek_format_id(std::span<const std::uint8_t> message);

  /// Parses and validates just the header.
  static WireHeader peek_header(std::span<const std::uint8_t> message);

  /// Zero-copy homogeneous decode; see file comment. `message` must remain
  /// alive and unmodified (other than this call's patching) while the
  /// returned struct is in use. Throws DecodeError if the message's format
  /// id differs from `native.id()` or the body is malformed. Must be called
  /// at most once per message buffer.
  static void* decode_in_place(const Format& native, std::uint8_t* message,
                               std::size_t len);

private:
  const FormatRegistry* registry_;
  bool coalesce_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, PlanHandle> plans_;
};

}  // namespace omf::pbio
