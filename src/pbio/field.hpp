// Field metadata: the unit all marshaling machinery is driven by.
//
// Mirrors PBIO's model: a message format is a list of fields, each with a
// name, a *type* (a marshaling technique — "integer", "float", "string", a
// nested format name, optionally an array suffix), a *size* (the element
// width in bytes; kept separate from type, so "integer" can be 2, 4, or 8
// bytes depending on the architecture), and an *offset* within the struct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <optional>
#include <string_view>

namespace omf::pbio {

/// Marshaling class of a field.
enum class FieldClass : std::uint8_t {
  kInteger,   ///< signed integral, 1/2/4/8 bytes
  kUnsigned,  ///< unsigned integral, 1/2/4/8 bytes
  kFloat,     ///< IEEE-754 binary32 or binary64
  kChar,      ///< single byte, never swapped
  kString,    ///< NUL-terminated char*, variable length
  kNested,    ///< embedded previously-registered format
};

/// Returns the PBIO type keyword for a class ("integer", "string", ...).
std::string_view field_class_name(FieldClass cls) noexcept;

enum class ArrayKind : std::uint8_t {
  kNone,     ///< scalar field
  kStatic,   ///< fixed-length in-struct array, e.g. "integer[5]"
  kDynamic,  ///< pointer + companion count field, e.g. "integer[eta_count]"
};

/// A parsed PBIO type string.
struct TypeSpec {
  FieldClass cls = FieldClass::kInteger;
  std::string nested_name;  ///< referenced format name when cls == kNested
  ArrayKind array = ArrayKind::kNone;
  std::size_t static_count = 0;  ///< for kStatic
  std::string size_field;        ///< for kDynamic: name of the count field

  bool operator==(const TypeSpec&) const = default;
};

/// Parses a PBIO type string: one of the primitive keywords ("integer",
/// "unsigned", "float", "char", "string") or the name of a nested format,
/// optionally suffixed with "[N]" (static array) or "[field]" (dynamic
/// array sized by the named integer field). Throws FormatError on syntax
/// errors or meaningless combinations (e.g. "string[3]" arrays of strings
/// are not supported, matching PBIO).
TypeSpec parse_type_string(std::string_view type);

/// Canonical text form of a TypeSpec (inverse of parse_type_string).
std::string type_string(const TypeSpec& spec);

/// Parses a textual default value for a scalar field into the bit pattern
/// to store in a `size`-byte slot (floats: IEEE bits of the narrowed
/// value; chars: the single character, or an integer code). Returns
/// nullopt when the text does not parse for the class. String, nested,
/// and array fields cannot have defaults.
std::optional<std::uint64_t> parse_default_scalar(FieldClass cls,
                                                  std::size_t size,
                                                  std::string_view text);

/// User-facing field description, as produced by hand (with sizeof/offsetof,
/// like the paper's IOField lists) or by xml2wire. A sentinel with an empty
/// name terminates C-style arrays; the span-based APIs don't need one.
struct IOField {
  IOField() = default;
  // The constructor (rather than aggregate init) keeps the paper-style
  // four-element brace lists working cleanly now that default_text exists.
  IOField(std::string name, std::string type, std::size_t size,
          std::size_t offset, std::string default_text = {})
      : name(std::move(name)),
        type(std::move(type)),
        size(size),
        offset(offset),
        default_text(std::move(default_text)) {}

  std::string name;
  std::string type;        ///< PBIO type string
  std::size_t size = 0;    ///< element size in bytes
  std::size_t offset = 0;  ///< offset of the field's slot within the struct
  /// Optional receiver-side default (empty = none); see Field::default_text.
  std::string default_text;
};

}  // namespace omf::pbio
