#include "pbio/run_kernels.hpp"

#include <bit>
#include <cstring>

#include "arch/profile.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"

#if !defined(OMF_SIMD_DISABLED) && (defined(__x86_64__) || defined(__i386__))
#define OMF_RUN_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace omf::pbio {

#ifdef OMF_RUN_KERNELS_X86

namespace {

// ---------------------------------------------------------------------------
// Scalar tails. Every vector loop below consumes whole lanes and finishes the
// remaining 0..lane-1 elements with one of these, which mirror the scalar
// specialized kernels element-for-element so odd run lengths stay
// bit-identical to the pure scalar plan.
// ---------------------------------------------------------------------------

inline void tail_bswap16(const std::uint8_t* src, std::uint8_t* dst,
                         std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint16_t x;
    std::memcpy(&x, src + i * 2, 2);
    x = byteswap(x);
    std::memcpy(dst + i * 2, &x, 2);
  }
}

inline void tail_bswap32(const std::uint8_t* src, std::uint8_t* dst,
                         std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t x;
    std::memcpy(&x, src + i * 4, 4);
    x = byteswap(x);
    std::memcpy(dst + i * 4, &x, 4);
  }
}

inline void tail_bswap64(const std::uint8_t* src, std::uint8_t* dst,
                         std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t x;
    std::memcpy(&x, src + i * 8, 8);
    x = byteswap(x);
    std::memcpy(dst + i * 8, &x, 8);
  }
}

template <bool Swap, bool SignExtend>
inline void tail_i32_to_i64(const std::uint8_t* src, std::uint8_t* dst,
                            std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t x;
    std::memcpy(&x, src + i * 4, 4);
    if constexpr (Swap) x = byteswap(x);
    std::uint64_t d =
        SignExtend
            ? static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(static_cast<std::int32_t>(x)))
            : static_cast<std::uint64_t>(x);
    std::memcpy(dst + i * 8, &d, 8);
  }
}

template <bool Swap>
inline void tail_i64_to_i32(const std::uint8_t* src, std::uint8_t* dst,
                            std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t x;
    std::memcpy(&x, src + i * 8, 8);
    if constexpr (Swap) x = byteswap(x);
    std::uint32_t d = static_cast<std::uint32_t>(x);
    std::memcpy(dst + i * 4, &d, 4);
  }
}

template <bool Swap>
inline void tail_f32_to_f64(const std::uint8_t* src, std::uint8_t* dst,
                            std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, src + i * 4, 4);
    if constexpr (Swap) bits = byteswap(bits);
    double d = static_cast<double>(std::bit_cast<float>(bits));
    std::memcpy(dst + i * 8, &d, 8);
  }
}

template <bool Swap>
inline void tail_f64_to_f32(const std::uint8_t* src, std::uint8_t* dst,
                            std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, src + i * 8, 8);
    if constexpr (Swap) bits = byteswap(bits);
    float f = static_cast<float>(std::bit_cast<double>(bits));
    std::memcpy(dst + i * 4, &f, 4);
  }
}

// ---------------------------------------------------------------------------
// SSE2 tier: same-width byte-swap runs over 16-byte lanes. SSE2 has no byte
// shuffle (that's SSSE3), so the swaps compose from 16-bit shifts and dword
// shuffles. All loads/stores are unaligned — wire bodies and arena
// destinations sit at arbitrary byte offsets.
// ---------------------------------------------------------------------------

void sse2_bswap16(const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t count) {
  const std::size_t bytes = count * 2;
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    v = _mm_or_si128(_mm_slli_epi16(v, 8), _mm_srli_epi16(v, 8));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), v);
  }
  tail_bswap16(src + i, dst + i, (bytes - i) / 2);
}

void sse2_bswap32(const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t count) {
  const std::size_t bytes = count * 4;
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    v = _mm_or_si128(_mm_slli_epi16(v, 8), _mm_srli_epi16(v, 8));
    v = _mm_or_si128(_mm_slli_epi32(v, 16), _mm_srli_epi32(v, 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), v);
  }
  tail_bswap32(src + i, dst + i, (bytes - i) / 4);
}

void sse2_bswap64(const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t count) {
  const std::size_t bytes = count * 8;
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    v = _mm_or_si128(_mm_slli_epi16(v, 8), _mm_srli_epi16(v, 8));
    v = _mm_or_si128(_mm_slli_epi32(v, 16), _mm_srli_epi32(v, 16));
    v = _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), v);
  }
  tail_bswap64(src + i, dst + i, (bytes - i) / 8);
}

// ---------------------------------------------------------------------------
// AVX2 tier. vpshufb shuffles independently within each 128-bit lane, which
// is exactly what a byteswap needs (no element crosses a lane); the widen/
// narrow and float-convert kernels use the 128->256 / 256->128 converting
// forms. Compiled with a per-function target attribute so the rest of the
// binary stays at the baseline ISA; these bodies are only reachable after
// runtime dispatch confirms AVX2.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"), always_inline)) inline __m256i
avx2_mask_bswap16() {
  return _mm256_setr_epi8(1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15,
                          14, 1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12,
                          15, 14);
}

__attribute__((target("avx2"), always_inline)) inline __m256i
avx2_mask_bswap32() {
  return _mm256_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13,
                          12, 3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14,
                          13, 12);
}

__attribute__((target("avx2"), always_inline)) inline __m256i
avx2_mask_bswap64() {
  return _mm256_setr_epi8(7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9,
                          8, 7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10,
                          9, 8);
}

__attribute__((target("avx2"))) void avx2_bswap16(const std::uint8_t* src,
                                                  std::uint8_t* dst,
                                                  std::size_t count) {
  const __m256i m = avx2_mask_bswap16();
  const std::size_t bytes = count * 2;
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_shuffle_epi8(v, m));
  }
  tail_bswap16(src + i, dst + i, (bytes - i) / 2);
}

__attribute__((target("avx2"))) void avx2_bswap32(const std::uint8_t* src,
                                                  std::uint8_t* dst,
                                                  std::size_t count) {
  const __m256i m = avx2_mask_bswap32();
  const std::size_t bytes = count * 4;
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_shuffle_epi8(v, m));
  }
  tail_bswap32(src + i, dst + i, (bytes - i) / 4);
}

__attribute__((target("avx2"))) void avx2_bswap64(const std::uint8_t* src,
                                                  std::uint8_t* dst,
                                                  std::size_t count) {
  const __m256i m = avx2_mask_bswap64();
  const std::size_t bytes = count * 8;
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_shuffle_epi8(v, m));
  }
  tail_bswap64(src + i, dst + i, (bytes - i) / 8);
}

// int32 -> int64 widen, 4 elements per iteration (16B load, 32B store). The
// optional byte swap happens on the 32-bit source elements *before* the
// widening sign/zero extension, matching the scalar kernel's load order.

template <bool Swap, bool SignExtend>
__attribute__((target("avx2"))) void avx2_i32_to_i64(const std::uint8_t* src,
                                                     std::uint8_t* dst,
                                                     std::size_t count) {
  [[maybe_unused]] const __m128i m =
      _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i * 4));
    if constexpr (Swap) v = _mm_shuffle_epi8(v, m);
    __m256i w = SignExtend ? _mm256_cvtepi32_epi64(v)
                           : _mm256_cvtepu32_epi64(v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i * 8), w);
  }
  tail_i32_to_i64<Swap, SignExtend>(src + i * 4, dst + i * 8, count - i);
}

// int64 -> int32 truncation (signedness is irrelevant to a truncating
// store), 4 elements per iteration. After the in-lane swap the low dword of
// each qword holds the value's low 32 bits; the cross-lane permute gathers
// dwords 0,2,4,6 into the bottom half.

template <bool Swap>
__attribute__((target("avx2"))) void avx2_i64_to_i32(const std::uint8_t* src,
                                                     std::uint8_t* dst,
                                                     std::size_t count) {
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i * 8));
    if constexpr (Swap) v = _mm256_shuffle_epi8(v, avx2_mask_bswap64());
    __m256i p = _mm256_permutevar8x32_epi32(v, pick);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i * 4),
                     _mm256_castsi256_si128(p));
  }
  tail_i64_to_i32<Swap>(src + i * 8, dst + i * 4, count - i);
}

// float32 <-> float64, 4 elements per iteration. vcvtps2pd / vcvtpd2ps have
// the same IEEE semantics (round-to-nearest, sNaN quieting) as the scalar
// cvtss2sd/cvtsd2ss the specialized kernels compile to, so results stay
// bit-identical.

template <bool Swap>
__attribute__((target("avx2"))) void avx2_f32_to_f64(const std::uint8_t* src,
                                                     std::uint8_t* dst,
                                                     std::size_t count) {
  [[maybe_unused]] const __m128i m =
      _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i * 4));
    if constexpr (Swap) v = _mm_shuffle_epi8(v, m);
    __m256d d = _mm256_cvtps_pd(_mm_castsi128_ps(v));
    _mm256_storeu_pd(reinterpret_cast<double*>(dst + i * 8), d);
  }
  tail_f32_to_f64<Swap>(src + i * 4, dst + i * 8, count - i);
}

template <bool Swap>
__attribute__((target("avx2"))) void avx2_f64_to_f32(const std::uint8_t* src,
                                                     std::uint8_t* dst,
                                                     std::size_t count) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i * 8));
    if constexpr (Swap) v = _mm256_shuffle_epi8(v, avx2_mask_bswap64());
    __m128 f = _mm256_cvtpd_ps(_mm256_castsi256_pd(v));
    _mm_storeu_ps(reinterpret_cast<float*>(dst + i * 4), f);
  }
  tail_f64_to_f32<Swap>(src + i * 8, dst + i * 4, count - i);
}

ScalarKernel select_same_width_swap(std::size_t width, bool avx2) noexcept {
  switch (width) {
    case 2: return avx2 ? &avx2_bswap16 : &sse2_bswap16;
    case 4: return avx2 ? &avx2_bswap32 : &sse2_bswap32;
    case 8: return avx2 ? &avx2_bswap64 : &sse2_bswap64;
    default: return nullptr;  // 1-byte elements never swap
  }
}

}  // namespace

ScalarKernel select_simd_kernel(bool is_float, std::size_t src_size,
                                std::size_t dst_size, bool swap,
                                bool sign_extend) noexcept {
  const arch::SimdTier tier = arch::simd_tier();
  if (tier == arch::SimdTier::kScalar) return nullptr;
  const bool avx2 = tier >= arch::SimdTier::kAVX2;

  // Same-width byte-swap runs apply to ints and floats alike: the scalar
  // float kernel's load-swap-bitcast-store at equal widths is a pure
  // byteswap, so the integer shuffle form is bit-identical.
  if (src_size == dst_size) {
    if (!swap) return nullptr;  // plan emits kCopy; never reaches a kernel
    return select_same_width_swap(src_size, avx2);
  }

  // Width-changing runs only have AVX2 forms (the converting loads/stores
  // below are AVX2/SSE4.1-era instructions).
  if (!avx2) return nullptr;

  if (is_float) {
    if (src_size == 4 && dst_size == 8) {
      return swap ? &avx2_f32_to_f64<true> : &avx2_f32_to_f64<false>;
    }
    if (src_size == 8 && dst_size == 4) {
      return swap ? &avx2_f64_to_f32<true> : &avx2_f64_to_f32<false>;
    }
    return nullptr;
  }

  if (src_size == 4 && dst_size == 8) {
    if (sign_extend) {
      return swap ? &avx2_i32_to_i64<true, true>
                  : &avx2_i32_to_i64<false, true>;
    }
    return swap ? &avx2_i32_to_i64<true, false>
                : &avx2_i32_to_i64<false, false>;
  }
  if (src_size == 8 && dst_size == 4) {
    return swap ? &avx2_i64_to_i32<true> : &avx2_i64_to_i32<false>;
  }
  return nullptr;  // 1/2-byte widths fall back to the scalar kernels
}

#else  // !OMF_RUN_KERNELS_X86: scalar-only build (-DOMF_SIMD=OFF or non-x86)

ScalarKernel select_simd_kernel(bool, std::size_t, std::size_t, bool,
                                bool) noexcept {
  return nullptr;
}

#endif  // OMF_RUN_KERNELS_X86

void publish_kernel_tier() noexcept {
  static const bool published = [] {
    obs::MetricsRegistry::instance()
        .gauge("pbio.decode.kernel_tier")
        .set(static_cast<std::int64_t>(arch::simd_tier()));
    return true;
  }();
  (void)published;
}

}  // namespace omf::pbio
