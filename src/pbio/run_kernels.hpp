// SIMD kernels for fused field runs.
//
// The scalar specialized kernels (convert.cpp) bake element widths and byte
// order into the function at plan-build time but still move one element per
// loop iteration. For the shapes that dominate heterogeneous bulk decode —
// same-width byte-swap runs, int widen/narrow between the common long sizes,
// and float32<->float64 conversion — this unit provides vector
// implementations working 16-byte (SSE2) or 32-byte (AVX2) lanes at a time,
// selected once per process by runtime CPU dispatch (arch::simd_tier()).
//
// Every kernel is bit-identical to its scalar counterpart (the golden and
// property suites decode through both and compare bytes), handles arbitrary
// (odd) element counts with a scalar tail, and makes no alignment
// assumptions — wire bodies and arena destinations land on arbitrary byte
// offsets.
//
// A build with -DOMF_SIMD=OFF compiles none of the vector bodies; selection
// always returns nullptr and plans run the portable scalar kernels.
#pragma once

#include "pbio/convert.hpp"

namespace omf::pbio {

/// Returns the SIMD implementation for an element-converting run — element
/// class, wire/native widths, byte-order mismatch, source signedness — at
/// this process's dispatch tier, or nullptr when no vector form exists for
/// the shape (the caller falls back to the scalar specialized kernel).
ScalarKernel select_simd_kernel(bool is_float, std::size_t src_size,
                                std::size_t dst_size, bool swap,
                                bool sign_extend) noexcept;

/// Publishes the dispatch tier to the "pbio.decode.kernel_tier" gauge
/// (0 = scalar, 1 = sse2, 2 = avx2) so /metrics exposes which kernels this
/// process selected. Idempotent; called from Decoder construction.
void publish_kernel_tier() noexcept;

}  // namespace omf::pbio
