#include "pbio/format.hpp"

#include <algorithm>
#include <mutex>

#include "util/hash.hpp"
#include "util/strings.hpp"

namespace omf::pbio {

namespace {

bool valid_scalar_width(std::size_t w) noexcept {
  return w == 1 || w == 2 || w == 4 || w == 8;
}

[[noreturn]] void fail(const std::string& format_name, const std::string& what) {
  throw FormatError("format '" + format_name + "': " + what);
}

}  // namespace

const Field* Format::field_named(std::string_view name) const noexcept {
  for (const Field& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::size_t Format::field_index(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return SIZE_MAX;
}

FormatId compute_format_id(const std::string& name,
                           const arch::Profile& profile,
                           std::span<const Field> fields,
                           std::size_t struct_size) {
  Fnv1a h;
  h.update(name);
  h.update(profile.canonical());
  h.update(static_cast<std::uint64_t>(struct_size));
  for (const Field& f : fields) {
    h.update(f.name);
    h.update(type_string(f.type));
    h.update(static_cast<std::uint64_t>(f.size));
    h.update(static_cast<std::uint64_t>(f.offset));
    h.update(f.default_text);
    if (f.subformat) h.update(f.subformat->id());
  }
  return h.digest();
}

void FormatRegistry::validate_and_resolve(Format& format) const {
  const arch::Profile& profile = format.profile_;
  const std::string& fname = format.name_;

  if (fname.empty()) {
    throw FormatError("format name must not be empty");
  }
  if (format.fields_.empty()) {
    fail(fname, "must have at least one field");
  }

  // Resolve nested subformats and dynamic count fields; validate each field.
  for (Field& f : format.fields_) {
    if (f.name.empty()) fail(fname, "field with empty name");
    for (const Field& other : format.fields_) {
      if (&other != &f && other.name == f.name) {
        fail(fname, "duplicate field name '" + f.name + "'");
      }
    }

    switch (f.type.cls) {
      case FieldClass::kInteger:
      case FieldClass::kUnsigned:
        if (!valid_scalar_width(f.size)) {
          fail(fname, "field '" + f.name + "': invalid integer size " +
                          std::to_string(f.size));
        }
        break;
      case FieldClass::kFloat:
        if (f.size != 4 && f.size != 8) {
          fail(fname, "field '" + f.name + "': invalid float size " +
                          std::to_string(f.size));
        }
        break;
      case FieldClass::kChar:
        if (f.size != 1) {
          fail(fname, "field '" + f.name + "': char fields are 1 byte");
        }
        break;
      case FieldClass::kString:
        // By convention PBIO metadata gives sizeof(char*) as a string's
        // size; normalize to the profile's pointer size.
        f.size = profile.pointer_size;
        break;
      case FieldClass::kNested: {
        FormatHandle sub = by_name_profile(f.type.nested_name, profile);
        if (!sub) {
          fail(fname, "field '" + f.name + "' references unknown format '" +
                          f.type.nested_name + "'");
        }
        if (!(sub->profile() == profile)) {
          fail(fname, "field '" + f.name + "': nested format '" +
                          f.type.nested_name +
                          "' was registered for a different architecture "
                          "profile");
        }
        f.subformat = sub;
        f.size = sub->struct_size();
        break;
      }
    }

    if (!f.default_text.empty()) {
      if (f.type.array != ArrayKind::kNone ||
          !parse_default_scalar(f.type.cls, f.size, f.default_text)) {
        fail(fname, "field '" + f.name + "': default value '" +
                        f.default_text +
                        "' is only supported on scalar integer/float/char "
                        "fields and must parse for the field's class");
      }
    }

    if (f.type.array == ArrayKind::kDynamic) {
      std::size_t idx = SIZE_MAX;
      for (std::size_t i = 0; i < format.fields_.size(); ++i) {
        if (format.fields_[i].name == f.type.size_field) {
          idx = i;
          break;
        }
      }
      if (idx == SIZE_MAX) {
        fail(fname, "dynamic array '" + f.name + "' references missing count "
                        "field '" + f.type.size_field + "'");
      }
      const Field& count = format.fields_[idx];
      if ((count.type.cls != FieldClass::kInteger &&
           count.type.cls != FieldClass::kUnsigned) ||
          count.type.array != ArrayKind::kNone) {
        fail(fname, "count field '" + f.type.size_field +
                        "' for dynamic array '" + f.name +
                        "' must be a scalar integer");
      }
      f.count_field_index = idx;
    }
  }

  // Slot-bounds and overlap checks: sort field views by offset and verify
  // each slot ends before the next begins and within the struct.
  std::vector<const Field*> by_offset;
  by_offset.reserve(format.fields_.size());
  for (const Field& f : format.fields_) by_offset.push_back(&f);
  std::sort(by_offset.begin(), by_offset.end(),
            [](const Field* a, const Field* b) { return a->offset < b->offset; });
  std::size_t prev_end = 0;
  for (const Field* f : by_offset) {
    std::size_t slot = f->slot_size(profile.pointer_size);
    if (f->offset < prev_end) {
      fail(fname, "field '" + f->name + "' overlaps the previous field");
    }
    if (f->offset + slot > format.struct_size_) {
      fail(fname, "field '" + f->name + "' extends past the declared struct "
                      "size (" + std::to_string(format.struct_size_) + ")");
    }
    prev_end = f->offset + slot;
  }

  // Precompute pointer-bearing fields and the alignment.
  format.has_pointers_ = false;
  format.pointer_fields_.clear();
  std::size_t max_align = 1;
  for (std::size_t i = 0; i < format.fields_.size(); ++i) {
    const Field& f = format.fields_[i];
    bool pointery = f.is_pointer_slot() ||
                    (f.type.cls == FieldClass::kNested &&
                     f.subformat->has_pointers());
    if (pointery) {
      format.has_pointers_ = true;
      format.pointer_fields_.push_back(i);
    }
    std::size_t a = f.type.cls == FieldClass::kNested
                        ? f.subformat->alignment()
                        : profile.scalar_align(
                              f.is_pointer_slot() ? profile.pointer_size
                                                  : f.size);
    max_align = std::max(max_align, a);
  }
  format.alignment_ = max_align;
}

FormatHandle FormatRegistry::register_format(const std::string& name,
                                             std::span<const IOField> fields,
                                             std::size_t struct_size,
                                             const arch::Profile& profile) {
  auto format = std::unique_ptr<Format>(new Format());
  format->name_ = name;
  format->profile_ = profile;
  format->struct_size_ = struct_size;
  format->fields_.reserve(fields.size());
  for (const IOField& io : fields) {
    if (io.name.empty()) break;  // tolerate C-style sentinel terminators
    Field f;
    f.name = io.name;
    f.type = parse_type_string(io.type);
    f.size = io.size;
    f.offset = io.offset;
    f.default_text = io.default_text;
    format->fields_.push_back(std::move(f));
  }
  return finish_registration(std::move(format));
}

FormatHandle FormatRegistry::register_computed(
    const std::string& name, std::span<const FieldSpec> fields,
    const arch::Profile& profile) {
  auto format = std::unique_ptr<Format>(new Format());
  format->name_ = name;
  format->profile_ = profile;
  format->fields_.reserve(fields.size());

  arch::StructLayout layout(profile);
  for (const FieldSpec& spec : fields) {
    Field f;
    f.name = spec.name;
    f.type = parse_type_string(spec.type);
    f.default_text = spec.default_text;

    // Determine element size and the in-struct slot.
    std::size_t elem_size = spec.element_size;
    std::size_t slot_size = 0;
    std::size_t slot_align = 0;
    switch (f.type.cls) {
      case FieldClass::kString:
        elem_size = profile.pointer_size;
        break;
      case FieldClass::kNested: {
        FormatHandle sub = by_name_profile(f.type.nested_name, profile);
        if (!sub) {
          fail(name, "field '" + f.name + "' references unknown format '" +
                         f.type.nested_name + "'");
        }
        elem_size = sub->struct_size();
        break;
      }
      default:
        if (elem_size == 0) {
          fail(name, "field '" + f.name + "' needs an element size");
        }
        break;
    }
    f.size = elem_size;

    if (f.is_pointer_slot()) {
      slot_size = profile.pointer_size;
      slot_align = profile.scalar_align(profile.pointer_size);
    } else if (f.type.cls == FieldClass::kNested) {
      FormatHandle sub = by_name_profile(f.type.nested_name, profile);
      std::size_t count =
          f.type.array == ArrayKind::kStatic ? f.type.static_count : 1;
      slot_size = sub->struct_size() * count;
      slot_align = sub->alignment();
    } else {
      std::size_t count =
          f.type.array == ArrayKind::kStatic ? f.type.static_count : 1;
      slot_size = elem_size * count;
      slot_align = profile.scalar_align(elem_size);
    }
    f.offset = layout.add_member(slot_size, slot_align);
    format->fields_.push_back(std::move(f));
  }
  format->struct_size_ = layout.size();
  return finish_registration(std::move(format));
}

FormatHandle FormatRegistry::finish_registration(
    std::unique_ptr<Format> format) {
  validate_and_resolve(*format);
  format->id_ = compute_format_id(format->name_, format->profile_,
                                  format->fields_, format->struct_size_);

  FormatHandle handle(std::move(format));
  std::unique_lock lock(mutex_);
  auto [it, inserted] = by_id_.try_emplace(handle->id(), handle);
  if (!inserted) {
    // Identical metadata registered twice: return the existing instance so
    // handles compare equal and plan caches stay small.
    return it->second;
  }
  by_name_[handle->name()].push_back(handle);
  in_order_.push_back(handle);
  return handle;
}

namespace {

FormatHandle newest_with_profile(const std::vector<FormatHandle>& versions,
                                 const arch::Profile& profile) {
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if ((*it)->profile() == profile) return *it;
  }
  return nullptr;
}

}  // namespace

FormatHandle FormatRegistry::by_name(const std::string& name) const {
  return by_name_profile(name, arch::native());
}

FormatHandle FormatRegistry::by_name_profile(
    const std::string& name, const arch::Profile& profile) const {
  std::shared_lock lock(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return newest_with_profile(it->second, profile);
}

FormatHandle FormatRegistry::by_id(FormatId id) const {
  std::shared_lock lock(mutex_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<FormatHandle> FormatRegistry::all() const {
  std::shared_lock lock(mutex_);
  return in_order_;
}

std::size_t FormatRegistry::size() const {
  std::shared_lock lock(mutex_);
  return in_order_.size();
}

}  // namespace omf::pbio
