#include "pbio/plan_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace omf::pbio {

namespace {
// Process-wide aggregates across every PlanCache instance; the per-instance
// Stats struct remains for tests and ablations. The miss/compile metrics
// are cold (a handful per process) and update the registry directly; the
// hit counter fires once per decoded message, so it batches in thread-local
// storage like decode's counters (see decode.cpp) — the registry value lags
// by up to kFlushEvery-1 hits per live thread and is exact at thread exit.
struct CacheMetrics {
  obs::Counter& misses;
  obs::Counter& compiles;
  obs::Histogram& compile_ns;
  static const CacheMetrics& get() {
    static CacheMetrics m{
        obs::MetricsRegistry::instance().counter("pbio.plan_cache.misses"),
        obs::MetricsRegistry::instance().counter("pbio.plan_cache.compiles"),
        obs::MetricsRegistry::instance().histogram(
            "pbio.plan_cache.compile_ns")};
    return m;
  }
};

#ifndef OMF_NO_METRICS
struct CacheHitTls {
  static constexpr std::uint32_t kFlushEvery = 64;
  obs::Counter& hits =
      obs::MetricsRegistry::instance().counter("pbio.plan_cache.hits");
  std::uint32_t pending = 0;

  void hit() noexcept {
    if (++pending >= kFlushEvery) flush();
  }
  void flush() noexcept {
    if (pending != 0) hits.add(pending);
    pending = 0;
  }
  ~CacheHitTls() { flush(); }
};
#else
struct CacheHitTls {
  void hit() noexcept {}
};
#endif

thread_local CacheHitTls t_cache_hits;

std::atomic<PlanCache::PlanVerifier> g_plan_verifier{nullptr};
}  // namespace

PlanCache::PlanVerifier PlanCache::set_plan_verifier(PlanVerifier v) noexcept {
  return g_plan_verifier.exchange(v, std::memory_order_acq_rel);
}

PlanCache::PlanVerifier PlanCache::plan_verifier() noexcept {
  return g_plan_verifier.load(std::memory_order_acquire);
}

PlanHandle PlanCache::get_or_build(const FormatHandle& wire,
                                   const FormatHandle& native,
                                   PlanOptions options) {
  Key key{wire->id(), native->id(), options.bits()};

  std::shared_ptr<Entry> entry;
  {
    std::shared_lock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) entry = it->second;
  }
  if (entry) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    t_cache_hits.hit();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().misses.add();
    std::unique_lock lock(mutex_);
    entry = entries_.try_emplace(key, std::make_shared<Entry>()).first->second;
  }

  // Compile outside any cache-wide lock; call_once serializes per key and
  // publishes `plan` to every waiter. On throw the flag stays unset.
  bool compiled_here = false;
  std::call_once(entry->once, [&] {
    // Compilation is the paper's *binding* step: metadata becomes an
    // executable plan. Rare and milliseconds-scale, so it is always traced
    // and timed.
    const CacheMetrics& metrics = CacheMetrics::get();
    obs::ScopedSpan span(obs::Phase::kBind, native->name());
    obs::ScopedTimer timer(metrics.compile_ns);
    PlanHandle plan = ConversionPlan::build(wire, native, options);
    if (options.verify) {
      // Trust boundary: the plan must carry a bounds certificate before it
      // is published. No installed verifier means no certificate — fail
      // closed rather than serve an unchecked plan.
      PlanVerifier verifier = plan_verifier();
      if (verifier == nullptr) {
        throw FormatError(
            "PlanOptions::verify set but no plan verifier installed "
            "(call analysis::install_plan_verifier at process start)");
      }
      verifier(*plan);  // throws on certification failure
    }
    entry->plan = std::move(plan);
    compiles_.fetch_add(1, std::memory_order_relaxed);
    metrics.compiles.add();
    compiled_here = true;
  });
  if (compiled_here) {
    std::unique_lock lock(mutex_);
    compiled_.push_back(entry->plan);
  }
  return entry->plan;
}

std::vector<PlanHandle> PlanCache::snapshot() const {
  std::shared_lock lock(mutex_);
  return compiled_;
}

std::size_t PlanCache::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}


PlanCache::Stats PlanCache::stats() const {
  return Stats{hits_.load(std::memory_order_relaxed),
               misses_.load(std::memory_order_relaxed),
               compiles_.load(std::memory_order_relaxed)};
}

}  // namespace omf::pbio
