#include "pbio/plan_cache.hpp"

namespace omf::pbio {

PlanHandle PlanCache::get_or_build(const FormatHandle& wire,
                                   const FormatHandle& native,
                                   PlanOptions options) {
  Key key{wire->id(), native->id(), options.bits()};

  std::shared_ptr<Entry> entry;
  {
    std::shared_lock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) entry = it->second;
  }
  if (entry) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock lock(mutex_);
    entry = entries_.try_emplace(key, std::make_shared<Entry>()).first->second;
  }

  // Compile outside any cache-wide lock; call_once serializes per key and
  // publishes `plan` to every waiter. On throw the flag stays unset.
  bool compiled_here = false;
  std::call_once(entry->once, [&] {
    entry->plan = ConversionPlan::build(wire, native, options);
    compiles_.fetch_add(1, std::memory_order_relaxed);
    compiled_here = true;
  });
  if (compiled_here) {
    std::unique_lock lock(mutex_);
    compiled_.push_back(entry->plan);
  }
  return entry->plan;
}

std::vector<PlanHandle> PlanCache::snapshot() const {
  std::shared_lock lock(mutex_);
  return compiled_;
}

std::size_t PlanCache::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}


PlanCache::Stats PlanCache::stats() const {
  return Stats{hits_.load(std::memory_order_relaxed),
               misses_.load(std::memory_order_relaxed),
               compiles_.load(std::memory_order_relaxed)};
}

}  // namespace omf::pbio
