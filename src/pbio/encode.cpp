#include "pbio/encode.hpp"

#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pbio/wire.hpp"

namespace omf::pbio {

namespace {

/// Reads a dynamic-array count field from native struct memory.
std::int64_t read_count(const std::uint8_t* struct_mem, const Field& count_field) {
  const std::uint8_t* p = struct_mem + count_field.offset;
  bool is_signed = count_field.type.cls == FieldClass::kInteger;
  switch (count_field.size) {
    case 1:
      return is_signed ? static_cast<std::int64_t>(
                             *reinterpret_cast<const std::int8_t*>(p))
                       : *p;
    case 2:
      return is_signed
                 ? static_cast<std::int64_t>(static_cast<std::int16_t>(
                       load_order<std::uint16_t>(p, host_byte_order())))
                 : load_order<std::uint16_t>(p, host_byte_order());
    case 4:
      return is_signed
                 ? static_cast<std::int64_t>(static_cast<std::int32_t>(
                       load_order<std::uint32_t>(p, host_byte_order())))
                 : load_order<std::uint32_t>(p, host_byte_order());
    case 8:
      return static_cast<std::int64_t>(
          load_order<std::uint64_t>(p, host_byte_order()));
    default:
      throw EncodeError("invalid count field size");
  }
}

struct EncodeContext {
  Buffer& out;
  std::size_t body_base;            // buffer offset where the body starts
  const arch::Profile& profile;     // always the native profile

  /// Overwrites a pointer slot at absolute buffer offset `slot_at` with a
  /// body-relative variable-section offset.
  void patch_pointer_slot(std::size_t slot_at, std::size_t var_off) {
    if (profile.pointer_size == 8) {
      out.patch_int<std::uint64_t>(slot_at, var_off, profile.byte_order);
    } else {
      if (var_off > 0xFFFFFFFFull) {
        throw EncodeError("variable section exceeds 32-bit offset range");
      }
      out.patch_int<std::uint32_t>(slot_at, static_cast<std::uint32_t>(var_off),
                                   profile.byte_order);
    }
  }

  /// Pads the variable section so the next append lands body-aligned to
  /// `align` — receivers may reference array elements in place.
  void align_var_section(std::size_t align) {
    std::size_t body_len = out.size() - body_base;
    std::size_t padded = align_up(body_len, align);
    if (padded != body_len) out.append_zeros(padded - body_len);
  }
};

/// Fixes up all pointer-bearing fields of one struct region.
///
/// `src` is the field data in application memory (real pointers); `region_at`
/// is the absolute buffer offset of this region's verbatim copy.
void fix_region(const Format& format, const std::uint8_t* src,
                std::size_t region_at, EncodeContext& ctx) {
  for (std::size_t idx : format.pointer_fields()) {
    const Field& f = format.fields()[idx];
    std::size_t slot_at = region_at + f.offset;

    switch (f.type.cls) {
      case FieldClass::kString: {
        const char* s = nullptr;
        std::memcpy(&s, src + f.offset, sizeof(s));
        if (s == nullptr) {
          ctx.patch_pointer_slot(slot_at, 0);
          break;
        }
        std::size_t len = std::strlen(s);
        std::size_t var_off = ctx.out.size() - ctx.body_base;
        ctx.out.append(s, len + 1);
        ctx.patch_pointer_slot(slot_at, var_off);
        break;
      }

      case FieldClass::kNested: {
        const Format& sub = *f.subformat;
        if (f.type.array == ArrayKind::kDynamic) {
          std::int64_t n =
              read_count(src, format.fields()[f.count_field_index]);
          if (n < 0) {
            throw EncodeError("negative count for dynamic array '" + f.name +
                              "'");
          }
          const std::uint8_t* elems = nullptr;
          std::memcpy(&elems, src + f.offset, sizeof(elems));
          if (n == 0) {
            ctx.patch_pointer_slot(slot_at, 0);
            break;
          }
          if (elems == nullptr) {
            throw EncodeError("null dynamic array '" + f.name +
                              "' with count " + std::to_string(n));
          }
          ctx.align_var_section(sub.alignment());
          std::size_t var_off = ctx.out.size() - ctx.body_base;
          std::size_t total = static_cast<std::size_t>(n) * sub.struct_size();
          ctx.out.append(elems, total);
          if (sub.has_pointers()) {
            for (std::int64_t i = 0; i < n; ++i) {
              fix_region(sub, elems + i * sub.struct_size(),
                         ctx.body_base + var_off + i * sub.struct_size(), ctx);
            }
          }
          ctx.patch_pointer_slot(slot_at, var_off);
        } else {
          // Scalar nested or static array of nested: embedded in the struct
          // copy itself; recurse into each element in place.
          std::size_t count =
              f.type.array == ArrayKind::kStatic ? f.type.static_count : 1;
          for (std::size_t i = 0; i < count; ++i) {
            fix_region(sub, src + f.offset + i * sub.struct_size(),
                       slot_at + i * sub.struct_size(), ctx);
          }
        }
        break;
      }

      default: {
        // Dynamic array of scalars.
        std::int64_t n = read_count(src, format.fields()[f.count_field_index]);
        if (n < 0) {
          throw EncodeError("negative count for dynamic array '" + f.name +
                            "'");
        }
        const std::uint8_t* elems = nullptr;
        std::memcpy(&elems, src + f.offset, sizeof(elems));
        if (n == 0) {
          ctx.patch_pointer_slot(slot_at, 0);
          break;
        }
        if (elems == nullptr) {
          throw EncodeError("null dynamic array '" + f.name + "' with count " +
                            std::to_string(n));
        }
        ctx.align_var_section(ctx.profile.scalar_align(f.size));
        std::size_t var_off = ctx.out.size() - ctx.body_base;
        ctx.out.append(elems, static_cast<std::size_t>(n) * f.size);
        ctx.patch_pointer_slot(slot_at, var_off);
        break;
      }
    }
  }
}

#ifndef OMF_NO_METRICS
// Per-message marshal counters batch in thread-local storage, like decode's
// (see decode.cpp): registry values lag by up to kFlushEvery-1 messages per
// live thread, and are exact at thread exit.
struct EncodeTls {
  static constexpr std::uint32_t kFlushEvery = 64;

  obs::Counter& messages =
      obs::MetricsRegistry::instance().counter("pbio.encode.messages");
  obs::Counter& bytes =
      obs::MetricsRegistry::instance().counter("pbio.encode.bytes");

  std::uint32_t p_messages = 0;
  std::uint64_t p_bytes = 0;

  void note(std::size_t message_bytes) noexcept {
    p_bytes += message_bytes;
    if (++p_messages >= kFlushEvery) flush();
  }

  void flush() noexcept {
    if (p_messages == 0) return;
    messages.add(p_messages);
    bytes.add(p_bytes);
    p_messages = 0;
    p_bytes = 0;
  }

  ~EncodeTls() { flush(); }
};
#else
struct EncodeTls {
  void note(std::size_t) noexcept {}
};
#endif

thread_local EncodeTls t_encode;

void check_native(const Format& format) {
  if (!(format.profile() == arch::native())) {
    throw EncodeError("format '" + format.name() +
                      "' is registered for profile '" +
                      format.profile().name +
                      "', not the native architecture; only native formats "
                      "can marshal live structs");
  }
}

}  // namespace

void encode(const Format& format, const void* data, Buffer& out) {
  check_native(format);
  std::size_t size_before = out.size();
  obs::ScopedSpan span(obs::Phase::kMarshal, format.name(),
                       obs::Tracer::sample());

  WireHeader header;
  header.byte_order = format.profile().byte_order;
  header.format_id = format.id();
  std::size_t body_length_at = header.write(out);

  EncodeContext ctx{out, out.size(), format.profile()};

  // The fast path: the struct goes on the wire verbatim.
  std::size_t region_at = out.grow(format.struct_size());
  std::memcpy(out.data() + region_at, data, format.struct_size());

  if (format.has_pointers()) {
    fix_region(format, static_cast<const std::uint8_t*>(data), region_at, ctx);
  }

  std::size_t body_len = out.size() - ctx.body_base;
  if (body_len > 0xFFFFFFFFull) {
    throw EncodeError("message body exceeds 4 GiB");
  }
  out.patch_int<std::uint32_t>(body_length_at,
                               static_cast<std::uint32_t>(body_len),
                               header.byte_order);

  t_encode.note(out.size() - size_before);
}

Buffer encode(const Format& format, const void* data) {
  Buffer out(WireHeader::kSize + format.struct_size() + 64);
  encode(format, data, out);
  return out;
}

namespace {

std::size_t var_section_size(const Format& format, const std::uint8_t* src) {
  std::size_t total = 0;
  for (std::size_t idx : format.pointer_fields()) {
    const Field& f = format.fields()[idx];
    switch (f.type.cls) {
      case FieldClass::kString: {
        const char* s = nullptr;
        std::memcpy(&s, src + f.offset, sizeof(s));
        if (s != nullptr) total += std::strlen(s) + 1;
        break;
      }
      case FieldClass::kNested: {
        const Format& sub = *f.subformat;
        if (f.type.array == ArrayKind::kDynamic) {
          std::int64_t n =
              read_count(src, format.fields()[f.count_field_index]);
          const std::uint8_t* elems = nullptr;
          std::memcpy(&elems, src + f.offset, sizeof(elems));
          if (n > 0 && elems != nullptr) {
            total += sub.alignment() - 1;  // worst-case padding
            total += static_cast<std::size_t>(n) * sub.struct_size();
            if (sub.has_pointers()) {
              for (std::int64_t i = 0; i < n; ++i) {
                total += var_section_size(sub, elems + i * sub.struct_size());
              }
            }
          }
        } else {
          std::size_t count =
              f.type.array == ArrayKind::kStatic ? f.type.static_count : 1;
          for (std::size_t i = 0; i < count; ++i) {
            total += var_section_size(sub, src + f.offset + i * sub.struct_size());
          }
        }
        break;
      }
      default: {
        std::int64_t n = read_count(src, format.fields()[f.count_field_index]);
        if (n > 0) {
          total += f.size - 1;  // worst-case padding
          total += static_cast<std::size_t>(n) * f.size;
        }
        break;
      }
    }
  }
  return total;
}

}  // namespace

std::size_t encoded_size(const Format& format, const void* data) {
  check_native(format);
  return WireHeader::kSize + format.struct_size() +
         var_section_size(format, static_cast<const std::uint8_t*>(data));
}

}  // namespace omf::pbio
