// The unit the metadata cache stores: one immutable metadata bundle (a
// serialized format bundle or a schema document) plus the freshness state
// HTTP cache semantics need — the strong validator (ETag / content hash),
// when it was last known fresh, and how long the origin said it may be
// served without (max_age) and with (stale_while_revalidate) revalidation.
//
// Bundles are immutable and shared (shared_ptr<const Bundle>): a revalidated
// or refreshed entry is a *new* Bundle, so readers holding the old handle
// are never raced.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/hash.hpp"

namespace omf::metacache {

struct Bundle {
  std::string body;
  /// Strong validator as the origin spelled it (quoted hex for HTTP ETags,
  /// bare 16-hex content hash for the TCP format service); "" when the
  /// origin supplied none.
  std::string etag;
  std::uint64_t content_hash = 0;  ///< fnv1a(body), the disk store's key half
  std::chrono::seconds max_age{60};
  std::chrono::seconds stale_while_revalidate{3600};
  /// Cache-clock milliseconds (wall time) when this copy was fetched or
  /// last revalidated. Wall time, not steady time, so freshness survives a
  /// process restart through the disk tier.
  std::int64_t fetched_ms = 0;

  std::size_t cost_bytes() const noexcept {
    return body.size() + etag.size() + sizeof(Bundle);
  }

  std::chrono::milliseconds age_at(std::int64_t now_ms) const noexcept {
    std::int64_t age = now_ms - fetched_ms;
    return std::chrono::milliseconds(age < 0 ? 0 : age);
  }

  bool fresh_at(std::int64_t now_ms) const noexcept {
    return age_at(now_ms) <= max_age;
  }

  /// Inside the stale-while-revalidate window: serve immediately, but a
  /// revalidation should be in flight.
  bool within_swr_at(std::int64_t now_ms) const noexcept {
    return age_at(now_ms) <= max_age + stale_while_revalidate;
  }
};

using BundleHandle = std::shared_ptr<const Bundle>;

/// What one origin-fetch attempt produced.
enum class FetchStatus {
  kFetched,      ///< full body in FetchResult::bundle
  kNotModified,  ///< validator matched; cached copy is still current
  kNotFound,     ///< the origin authoritatively does not have it
  kUnavailable,  ///< every replica failed / was skipped; nothing learned
};

struct FetchResult {
  FetchStatus status = FetchStatus::kUnavailable;
  Bundle bundle;  ///< meaningful only for kFetched
};

/// Reaches the origin (through the replica router): given the cached
/// validator ("" = unconditional), returns what the origin said. Must be
/// self-contained (capture by value / shared_ptr) — background revalidation
/// may run it after the caller's stack frame is gone.
using Fetcher = std::function<FetchResult(const std::string& etag)>;

}  // namespace omf::metacache
