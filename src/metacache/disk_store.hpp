// On-disk tier of the metadata cache: a content-addressed store keyed by
// {key id, content hash}.
//
// One file per key, named "<16-hex key>-<16-hex content hash>.omfc" —
// content-addressing means a new revision of a format never overwrites the
// bytes a concurrent reader may be mapping; it lands under a new name and
// the old one is pruned. Installs are crash-safe (write temp, fsync,
// rename, fsync the directory — util/fsio.hpp); loads reject torn or
// tampered files by magic/length/CRC before a byte reaches a parser, so a
// cache directory that survived a power loss cold-starts the process
// without touching the origin.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>

#include "metacache/bundle.hpp"

namespace omf::metacache {

class DiskStore {
public:
  /// Creates `dir` if needed. Throws omf::Error when the directory cannot
  /// be created or written.
  explicit DiskStore(std::filesystem::path dir);

  /// Atomically installs `bundle` as the current copy for `key`, replacing
  /// (and pruning) any previous content revision.
  void install(std::uint64_t key, const Bundle& bundle);

  /// Loads the current copy for `key`. Returns nullopt when absent or when
  /// every candidate file is torn/corrupt (counted in
  /// omf.metacache.disk_rejects; the bad file is quarantined by unlink so
  /// it is not re-parsed on every miss).
  std::optional<Bundle> load(std::uint64_t key);

  void erase(std::uint64_t key);

  const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Entries currently on disk (diagnostics; walks the directory).
  std::size_t entries() const;

private:
  std::filesystem::path path_for(std::uint64_t key,
                                 std::uint64_t content_hash) const;

  std::filesystem::path dir_;
  std::mutex mutex_;  // serializes install/prune for one store instance
};

}  // namespace omf::metacache
