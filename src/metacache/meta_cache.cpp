#include "metacache/meta_cache.hpp"

#include <chrono>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace omf::metacache {

namespace {

struct CacheMetrics {
  obs::Counter& hit;
  obs::Counter& miss;
  obs::Counter& revalidate;
  obs::Counter& stale_served;
  obs::Counter& disk_hit;
  static const CacheMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static CacheMetrics m{reg.counter("omf.metacache.hit"),
                          reg.counter("omf.metacache.miss"),
                          reg.counter("omf.metacache.revalidate"),
                          reg.counter("omf.metacache.stale_served"),
                          reg.counter("omf.metacache.disk_hit")};
    return m;
  }
};

}  // namespace

std::int64_t MetaCache::wall_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

MetaCache::MetaCache(MetaCacheOptions options)
    : options_(options),
      memory_(options.memory_bytes, options.memory_shards),
      now_fn_(&MetaCache::wall_now_ms) {
  if (options_.disk_dir) disk_ = std::make_unique<DiskStore>(*options_.disk_dir);
  reval_thread_ = std::thread([this] { revalidation_loop(); });
}

MetaCache::~MetaCache() {
  {
    std::lock_guard lock(reval_mutex_);
    stop_ = true;
  }
  reval_cv_.notify_all();
  if (reval_thread_.joinable()) reval_thread_.join();
}

std::int64_t MetaCache::now_ms() const {
  std::lock_guard lock(now_mutex_);
  return now_fn_();
}

void MetaCache::set_now_fn(std::function<std::int64_t()> now_fn) {
  std::lock_guard lock(now_mutex_);
  now_fn_ = now_fn ? std::move(now_fn) : &MetaCache::wall_now_ms;
}

BundleHandle MetaCache::resolve(std::uint64_t key, const Fetcher& fetch) {
  BundleHandle cached = memory_.get(key);
  bool from_disk = false;
  if (!cached && disk_) {
    if (std::optional<Bundle> loaded = disk_->load(key)) {
      cached = std::make_shared<const Bundle>(std::move(*loaded));
      memory_.put(key, cached);
      from_disk = true;
    }
  }
  const std::int64_t now = now_ms();
  if (cached) {
    if (cached->fresh_at(now)) {
      if (from_disk) {
        disk_hits_.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::get().disk_hit.add();
      } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::get().hit.add();
      }
      return cached;
    }
    if (cached->within_swr_at(now)) {
      // Stale-while-revalidate: the caller gets the stale copy NOW; a
      // background conditional fetch refreshes the tiers for the next one.
      if (from_disk) {
        disk_hits_.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::get().disk_hit.add();
      } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::get().hit.add();
      }
      enqueue_revalidation(key, cached, fetch);
      return cached;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().miss.add();
  return refresh(key, std::move(cached), fetch);
}

void MetaCache::install(std::uint64_t key, Bundle bundle, BundleHandle* out) {
  if (bundle.content_hash == 0) bundle.content_hash = fnv1a(bundle.body);
  auto handle = std::make_shared<const Bundle>(std::move(bundle));
  memory_.put(key, handle);
  if (disk_) {
    try {
      disk_->install(key, *handle);
    } catch (const std::exception& e) {
      // A full or read-only disk degrades to a memory-only cache.
      OMF_LOG_WARN("metacache", "disk install failed for key ", key, ": ",
                   e.what());
    }
  }
  if (out) *out = std::move(handle);
}

BundleHandle MetaCache::refresh(std::uint64_t key, BundleHandle cached,
                                const Fetcher& fetch) {
  const std::string etag = cached ? cached->etag : std::string();
  FetchResult result;
  try {
    result = fetch(etag);
  } catch (const std::exception& e) {
    OMF_LOG_WARN("metacache", "fetch for key ", key, " failed: ", e.what());
    result.status = FetchStatus::kUnavailable;
  }
  if (!etag.empty() && (result.status == FetchStatus::kNotModified ||
                        result.status == FetchStatus::kFetched)) {
    revalidations_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().revalidate.add();
  }
  switch (result.status) {
    case FetchStatus::kFetched: {
      Bundle b = std::move(result.bundle);
      if (b.fetched_ms == 0) b.fetched_ms = now_ms();
      BundleHandle handle;
      install(key, std::move(b), &handle);
      return handle;
    }
    case FetchStatus::kNotModified: {
      if (!cached) return nullptr;  // origin confirmed a copy we don't hold
      Bundle b = *cached;
      b.fetched_ms = now_ms();
      BundleHandle handle;
      install(key, std::move(b), &handle);
      return handle;
    }
    case FetchStatus::kNotFound:
      invalidate(key);
      return nullptr;
    case FetchStatus::kUnavailable:
      break;
  }
  if (cached) {
    // Every replica down or skipped: metadata is immutable by content, so a
    // stale format description still decodes — serve it at any age. A
    // request that fell all the way here is worth keeping: pin its trace
    // and note the serve in the flight recorder.
    stale_served_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().stale_served.add();
    obs::Tracer::instance().mark_trace(obs::current_trace_id(),
                                       "stale_served");
    obs::flight_record("stale", "served stale bundle for key " +
                                    std::to_string(key));
    return cached;
  }
  return nullptr;
}

void MetaCache::invalidate(std::uint64_t key) {
  memory_.erase(key);
  if (disk_) disk_->erase(key);
}

MetaCache::Stats MetaCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.revalidations = revalidations_.load(std::memory_order_relaxed);
  s.stale_served = stale_served_.load(std::memory_order_relaxed);
  return s;
}

void MetaCache::enqueue_revalidation(std::uint64_t key, BundleHandle cached,
                                     Fetcher fetch) {
  std::lock_guard lock(reval_mutex_);
  if (stop_) return;
  if (!reval_inflight_.insert(key).second) return;  // already queued/running
  reval_queue_.push_back(Revalidation{key, std::move(cached), std::move(fetch)});
  reval_cv_.notify_one();
}

void MetaCache::revalidation_loop() {
  std::unique_lock lock(reval_mutex_);
  for (;;) {
    reval_cv_.wait(lock, [this] { return stop_ || !reval_queue_.empty(); });
    if (stop_) return;
    Revalidation job = std::move(reval_queue_.front());
    reval_queue_.pop_front();
    lock.unlock();
    try {
      // Background refresh: nothing is being served, so kUnavailable here is
      // simply "try again next time" — no stale_served accounting.
      const std::string etag = job.cached ? job.cached->etag : std::string();
      FetchResult result;
      try {
        result = job.fetch(etag);
      } catch (const std::exception&) {
        result.status = FetchStatus::kUnavailable;
      }
      if (!etag.empty() && (result.status == FetchStatus::kNotModified ||
                            result.status == FetchStatus::kFetched)) {
        revalidations_.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::get().revalidate.add();
      }
      if (result.status == FetchStatus::kFetched) {
        Bundle b = std::move(result.bundle);
        if (b.fetched_ms == 0) b.fetched_ms = now_ms();
        install(job.key, std::move(b), nullptr);
      } else if (result.status == FetchStatus::kNotModified && job.cached) {
        Bundle b = *job.cached;
        b.fetched_ms = now_ms();
        install(job.key, std::move(b), nullptr);
      } else if (result.status == FetchStatus::kNotFound) {
        invalidate(job.key);
      }
    } catch (...) {
      // Revalidation is best-effort by definition.
    }
    lock.lock();
    reval_inflight_.erase(job.key);
    if (reval_queue_.empty() && reval_inflight_.empty()) {
      reval_idle_cv_.notify_all();
    }
  }
}

void MetaCache::wait_revalidations_idle() {
  std::unique_lock lock(reval_mutex_);
  reval_idle_cv_.wait(lock, [this] {
    return reval_queue_.empty() && reval_inflight_.empty();
  });
}

}  // namespace omf::metacache
