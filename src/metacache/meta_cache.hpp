// Two-tier metadata cache with HTTP freshness semantics.
//
// resolve(key) walks: memory LRU -> disk store -> origin (through whatever
// Fetcher the caller supplies — usually a ReplicaSet walk). Freshness
// follows RFC 9111's shape:
//
//   age <= max_age                 serve from cache, no traffic
//   age <= max_age + swr window    serve the stale copy NOW, revalidate in
//                                  the background (subscribers never stall
//                                  on a refresh)
//   beyond the swr window          revalidate synchronously (conditional:
//                                  the cached validator rides along, so an
//                                  unchanged bundle costs a 304, not a body)
//   origin unavailable             serve whatever copy exists at ANY age and
//                                  count omf.metacache.stale_served — the
//                                  paper's availability argument: metadata
//                                  is immutable-by-content, so a stale
//                                  format description beats no decode at all
//
// The disk tier makes restarts cheap: fetched_ms is wall-clock, so a bundle
// written yesterday is correctly seen as stale-but-servable after a restart
// with the origin down. Disk hits are promoted into memory.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>

#include "metacache/bundle.hpp"
#include "metacache/disk_store.hpp"
#include "metacache/memory_cache.hpp"

namespace omf::metacache {

struct MetaCacheOptions {
  std::size_t memory_bytes = 8u << 20;
  std::size_t memory_shards = 8;
  /// Directory for the disk tier; nullopt = memory-only cache.
  std::optional<std::filesystem::path> disk_dir;
};

class MetaCache {
public:
  struct Stats {
    std::uint64_t hits = 0;          ///< served from memory (fresh or swr)
    std::uint64_t misses = 0;        ///< synchronous trip to the origin
    std::uint64_t disk_hits = 0;     ///< served after disk->memory promotion
    std::uint64_t revalidations = 0; ///< conditional refreshes performed
    std::uint64_t stale_served = 0;  ///< origin unavailable, stale copy served
  };

  explicit MetaCache(MetaCacheOptions options);
  ~MetaCache();
  MetaCache(const MetaCache&) = delete;
  MetaCache& operator=(const MetaCache&) = delete;

  /// Resolves `key` through the tiers; `fetch` reaches the origin when
  /// needed and must be self-contained (it may run on the background
  /// revalidation thread after the caller returns). Returns nullptr only
  /// when no tier has a copy and the origin answered kNotFound /
  /// kUnavailable.
  BundleHandle resolve(std::uint64_t key, const Fetcher& fetch);

  /// Drops `key` from every tier.
  void invalidate(std::uint64_t key);

  Stats stats() const;
  MemoryCache& memory() noexcept { return memory_; }
  DiskStore* disk() noexcept { return disk_ ? disk_.get() : nullptr; }

  /// Test clock: milliseconds of wall time. Defaults to system_clock.
  void set_now_fn(std::function<std::int64_t()> now_fn);

  /// Blocks until the background revalidation queue is drained (tests).
  void wait_revalidations_idle();

  static std::int64_t wall_now_ms();

private:
  void install(std::uint64_t key, Bundle bundle, BundleHandle* out);
  /// Runs one conditional fetch and folds the answer into the tiers.
  /// Returns the bundle to serve, or nullptr for kNotFound/kUnavailable.
  BundleHandle refresh(std::uint64_t key, BundleHandle cached,
                       const Fetcher& fetch);
  void enqueue_revalidation(std::uint64_t key, BundleHandle cached,
                            Fetcher fetch);
  void revalidation_loop();
  std::int64_t now_ms() const;

  MetaCacheOptions options_;
  MemoryCache memory_;
  std::unique_ptr<DiskStore> disk_;

  mutable std::mutex now_mutex_;
  std::function<std::int64_t()> now_fn_;

  struct Revalidation {
    std::uint64_t key;
    BundleHandle cached;
    Fetcher fetch;
  };
  std::mutex reval_mutex_;
  std::condition_variable reval_cv_;
  std::condition_variable reval_idle_cv_;
  std::deque<Revalidation> reval_queue_;
  std::unordered_set<std::uint64_t> reval_inflight_;
  bool stop_ = false;
  std::thread reval_thread_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> revalidations_{0};
  std::atomic<std::uint64_t> stale_served_{0};
};

}  // namespace omf::metacache
