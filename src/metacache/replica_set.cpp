#include "metacache/replica_set.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace omf::metacache {

namespace {
obs::Counter& failover_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("omf.replica.failover");
  return c;
}
}  // namespace

ReplicaSet::ReplicaSet(std::vector<std::string> endpoints,
                       fault::CircuitBreaker::Config breaker_config,
                       std::size_t vnodes)
    : endpoints_(std::move(endpoints)) {
  if (vnodes == 0) vnodes = 1;
  breakers_.reserve(endpoints_.size());
  ring_.reserve(endpoints_.size() * vnodes);
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    breakers_.push_back(std::make_unique<fault::CircuitBreaker>(breaker_config));
    for (std::size_t v = 0; v < vnodes; ++v) {
      Fnv1a h;
      h.update(endpoints_[i]);
      h.update(static_cast<std::uint64_t>(v));
      ring_.push_back(Point{h.digest(), i});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.replica < b.replica);
  });
}

std::vector<std::size_t> ReplicaSet::route(std::uint64_t key) const {
  std::vector<std::size_t> order;
  if (ring_.empty()) return order;
  order.reserve(endpoints_.size());
  Fnv1a h;
  h.update(key);
  const std::uint64_t point = h.digest();
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  std::vector<bool> seen(endpoints_.size(), false);
  for (std::size_t walked = 0;
       walked < ring_.size() && order.size() < endpoints_.size(); ++walked) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[it->replica]) {
      seen[it->replica] = true;
      order.push_back(it->replica);
    }
    ++it;
  }
  return order;
}

FetchResult ReplicaSet::fetch(std::uint64_t key, const Attempt& attempt) {
  const std::vector<std::size_t> order = route(key);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t idx = order[rank];
    fault::CircuitBreaker& breaker = *breakers_[idx];
    if (!breaker.allow()) continue;
    FetchResult result;
    try {
      result = attempt(idx, endpoints_[idx]);
    } catch (const std::exception& e) {
      OMF_LOG_WARN("metacache", "replica ", endpoints_[idx], " failed: ",
                   e.what());
      result.status = FetchStatus::kUnavailable;
    }
    if (result.status == FetchStatus::kUnavailable) {
      breaker.record_failure();
      continue;
    }
    breaker.record_success();
    if (rank != 0) {
      failover_metric().add();
      // A failover is exactly the kind of anomaly tail sampling exists
      // for: pin the active trace (with an event span naming the replica
      // that served) and note it in the flight recorder.
      obs::Tracer::instance().mark_trace(obs::current_trace_id(),
                                         "replica.failover");
      obs::flight_record("failover", "replica " + endpoints_[idx] +
                                         " served after " +
                                         std::to_string(rank) + " skips");
    }
    return result;
  }
  return FetchResult{FetchStatus::kUnavailable, {}};
}

}  // namespace omf::metacache
