// One conditional HTTP fetch against one origin, translated into the
// cache's FetchResult vocabulary. Shared by the replicated format client
// (bundle URLs) and the cached discovery source (schema URLs).
#pragma once

#include <chrono>
#include <string>

#include "metacache/bundle.hpp"
#include "util/retry.hpp"

namespace omf::metacache {

/// GETs `url` with If-None-Match when `etag` is non-empty. 200 -> kFetched
/// (freshness lifetimes from Cache-Control, or the supplied defaults),
/// 304 -> kNotModified, 404 -> kNotFound, anything else -> kUnavailable.
/// Network failures (connect refused, deadline expiry) propagate as
/// exceptions — the replica walk turns them into breaker failures.
FetchResult http_conditional_get(const std::string& url,
                                 const std::string& etag,
                                 const RetryPolicy& retry,
                                 std::chrono::milliseconds timeout,
                                 std::chrono::seconds default_max_age,
                                 std::chrono::seconds default_swr);

}  // namespace omf::metacache
