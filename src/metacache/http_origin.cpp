#include "metacache/http_origin.hpp"

#include "http/http.hpp"
#include "util/deadline.hpp"
#include "util/hash.hpp"

namespace omf::metacache {

FetchResult http_conditional_get(const std::string& url,
                                 const std::string& etag,
                                 const RetryPolicy& retry,
                                 std::chrono::milliseconds timeout,
                                 std::chrono::seconds default_max_age,
                                 std::chrono::seconds default_swr) {
  http::HeaderList headers;
  if (!etag.empty()) headers.emplace_back("If-None-Match", etag);
  http::Response resp =
      http::get_with_retry(http::Url::parse(url), headers, retry,
                           Deadline::from_timeout(timeout));
  FetchResult out;
  if (resp.status == 304) {
    out.status = FetchStatus::kNotModified;
    return out;
  }
  if (resp.status == 404) {
    out.status = FetchStatus::kNotFound;
    return out;
  }
  if (resp.status != 200) {
    out.status = FetchStatus::kUnavailable;
    return out;
  }
  out.status = FetchStatus::kFetched;
  Bundle b;
  b.body = std::move(resp.body);
  b.etag = resp.etag();
  if (b.etag.empty()) b.etag = http::strong_etag(b.body);
  b.content_hash = fnv1a(b.body);
  http::Response::CacheControl cc = resp.cache_control();
  b.max_age = cc.present ? cc.max_age : default_max_age;
  b.stale_while_revalidate =
      cc.present ? cc.stale_while_revalidate : default_swr;
  out.bundle = std::move(b);
  return out;
}

}  // namespace omf::metacache
