// ReplicatedFormatClient: the receiver-side entry point of the replicated
// metadata plane.
//
// Where transport::FormatServiceClient talks to ONE format service,
// this client consistent-hashes each format id across N replicas
// (metacache::ReplicaSet) and resolves bundles through the two-tier
// MetaCache, so the common case costs zero network traffic, an unchanged
// bundle costs a validator exchange (HTTP 304 / TCP 'C' not-modified), and
// a dead first-choice replica costs one failover hop instead of a decode
// outage. When every replica is down, a previously-seen bundle is served
// stale at any age — format metadata is immutable by content, so stale
// metadata still decodes.
//
// Replica endpoints come in two spellings:
//   "http://host:port/prefix/"  an HttpFormatPublisher URL space
//                               (conditional GET + ETag)
//   "7001"                      a TCP format-service port on loopback
//                               (the 'C' conditional-fetch opcode)
// Both use the same validator — the fnv1a content hash of the bundle
// bytes — so a bundle cached from one replica kind revalidates against the
// other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/circuit_breaker.hpp"
#include "metacache/meta_cache.hpp"
#include "metacache/replica_set.hpp"
#include "pbio/format.hpp"
#include "util/retry.hpp"

namespace omf::metacache {

class ReplicatedFormatClient {
public:
  struct Options {
    MetaCacheOptions cache{};
    fault::CircuitBreaker::Config breaker{};
    /// Per-replica attempt policy; the replica walk itself is the primary
    /// retry mechanism, so default is one attempt per replica.
    RetryPolicy retry{.max_attempts = 1};
    std::chrono::milliseconds fetch_timeout{0};  ///< per attempt; 0 = none
    /// Freshness lifetimes for origins that state none (TCP replicas, HTTP
    /// replicas without a Cache-Control policy).
    std::chrono::seconds default_max_age{60};
    std::chrono::seconds default_swr{3600};
    std::size_t vnodes = 64;
  };

  explicit ReplicatedFormatClient(std::vector<std::string> endpoints)
      : ReplicatedFormatClient(std::move(endpoints), Options{}) {}
  ReplicatedFormatClient(std::vector<std::string> endpoints, Options options);

  /// Resolves the bundle for `id` (cache tiers first, replicas on miss or
  /// expiry) and registers it into `registry`. Returns nullptr when no
  /// replica knows the id and no tier holds a copy.
  pbio::FormatHandle resolve(pbio::FormatRegistry& registry,
                             pbio::FormatId id);

  /// The raw cached bundle for `id` without registering it (diagnostics).
  BundleHandle resolve_bundle(pbio::FormatId id);

  MetaCache& cache() noexcept { return cache_; }
  ReplicaSet& replicas() noexcept { return replicas_; }

private:
  FetchResult attempt(const std::string& endpoint, pbio::FormatId id,
                      const std::string& etag);

  Options options_;
  ReplicaSet replicas_;
  // Declared after replicas_: the cache dtor joins the revalidation thread,
  // whose fetchers walk replicas_, so the cache must die first.
  MetaCache cache_;
};

}  // namespace omf::metacache
