// Replica-aware routing for the metadata plane.
//
// A ReplicaSet consistent-hashes format ids across N format-service
// replicas: each endpoint contributes `vnodes` virtual points on a hash
// ring, and route(key) walks the ring from the key's position collecting
// every distinct replica in successor order. Two properties matter:
//
//  * stability — a key's preferred replica changes only when that replica
//    is added or removed, so warm caches on the replicas stay warm when
//    the set is resized (classic consistent hashing, vs. `key % N` which
//    reshuffles almost everything);
//  * a full preference order — the walk does not stop at the first owner,
//    so failover has a deterministic second, third, ... choice per key
//    instead of a random scatter.
//
// Each replica sits behind its own fault::CircuitBreaker: a replica that
// keeps failing is skipped without paying its connect timeout, and probed
// again after the cooldown. fetch() packages the whole policy — walk the
// preference order, skip open breakers, record outcomes, count failovers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/circuit_breaker.hpp"
#include "metacache/bundle.hpp"

namespace omf::metacache {

class ReplicaSet {
public:
  /// One fetch attempt against one replica. Must return kUnavailable (or
  /// throw) when the replica could not answer; any other status is treated
  /// as an authoritative answer and ends the walk.
  using Attempt =
      std::function<FetchResult(std::size_t replica, const std::string& endpoint)>;

  explicit ReplicaSet(std::vector<std::string> endpoints,
                      fault::CircuitBreaker::Config breaker_config = {},
                      std::size_t vnodes = 64);

  std::size_t size() const noexcept { return endpoints_.size(); }
  const std::string& endpoint(std::size_t i) const { return endpoints_.at(i); }

  /// Preference-ordered replica indices for `key` (all replicas, no
  /// duplicates). Deterministic for a given endpoint set.
  std::vector<std::size_t> route(std::uint64_t key) const;

  /// Walks route(key), skipping replicas whose breaker is open, running
  /// `attempt` against each until one answers (any status but
  /// kUnavailable). Successes/failures are recorded on the breakers; an
  /// answer from any replica other than the key's first choice counts in
  /// omf.replica.failover. Returns kUnavailable when every replica failed
  /// or was skipped — the caller's cue to serve stale.
  FetchResult fetch(std::uint64_t key, const Attempt& attempt);

  fault::CircuitBreaker& breaker(std::size_t i) { return *breakers_.at(i); }

private:
  struct Point {
    std::uint64_t hash;
    std::size_t replica;
  };

  std::vector<std::string> endpoints_;
  std::vector<std::unique_ptr<fault::CircuitBreaker>> breakers_;
  std::vector<Point> ring_;  // sorted by hash
};

}  // namespace omf::metacache
