#include "metacache/caching_source.hpp"

#include "http/http.hpp"
#include "metacache/http_origin.hpp"
#include "util/hash.hpp"

namespace omf::metacache {

CachedHttpSource::CachedHttpSource(std::vector<std::string> replica_bases,
                                   CachedHttpSourceOptions options)
    : options_(options),
      replicas_(std::move(replica_bases), options.breaker, options.vnodes),
      cache_(options.cache) {}

bool CachedHttpSource::handles(const std::string& locator) const {
  return locator.rfind("http://", 0) == 0;
}

std::optional<std::string> CachedHttpSource::fetch(const std::string& locator) {
  std::string path;
  try {
    path = http::Url::parse(locator).path;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const std::uint64_t key = fnv1a(path);
  // Value captures only: background revalidation may run this after the
  // discover() frame that triggered it is gone.
  const RetryPolicy retry = options_.retry;
  const auto timeout = options_.fetch_timeout;
  const auto max_age = options_.default_max_age;
  const auto swr = options_.default_swr;
  ReplicaSet* replicas = &replicas_;
  Fetcher fetcher = [=](const std::string& etag) {
    return replicas->fetch(
        key, [&](std::size_t, const std::string& base) {
          return http_conditional_get(base + path, etag, retry, timeout,
                                      max_age, swr);
        });
  };
  BundleHandle bundle = cache_.resolve(key, fetcher);
  if (!bundle) return std::nullopt;
  return bundle->body;
}

std::unique_ptr<CachedHttpSource> make_cached_http_source(
    std::vector<std::string> replica_bases) {
  return make_cached_http_source(std::move(replica_bases),
                                 CachedHttpSourceOptions{});
}

std::unique_ptr<CachedHttpSource> make_cached_http_source(
    std::vector<std::string> replica_bases, CachedHttpSourceOptions options) {
  return std::make_unique<CachedHttpSource>(std::move(replica_bases), options);
}

}  // namespace omf::metacache
