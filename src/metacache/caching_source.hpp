// The replicated, cached HTTP metadata source for the discovery chain.
//
// Drop-in upgrade for core::make_http_source(): handles the same
// "http://..." locators, but resolves each document through the two-tier
// MetaCache and fans fetches out across replica base URLs with
// consistent-hash failover. Install it with
//
//   ctx.discovery().set_source(0, metacache::make_cached_http_source(
//       {"http://127.0.0.1:7001", "http://127.0.0.1:7002"}));
//
// so the discovery chain's ordering (remote -> file -> compiled-in) is
// preserved while the remote leg gains caching, revalidation, and replica
// failover. The document key is the locator's *path*, not its host — every
// replica serves the same URL space, so a locator minted against one
// replica hits the cache no matter which replica answers.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/discovery.hpp"
#include "fault/circuit_breaker.hpp"
#include "metacache/meta_cache.hpp"
#include "metacache/replica_set.hpp"
#include "util/retry.hpp"

namespace omf::metacache {

struct CachedHttpSourceOptions {
  MetaCacheOptions cache{};
  fault::CircuitBreaker::Config breaker{};
  RetryPolicy retry{.max_attempts = 1};
  std::chrono::milliseconds fetch_timeout{0};  ///< per attempt; 0 = none
  std::chrono::seconds default_max_age{60};
  std::chrono::seconds default_swr{3600};
  std::size_t vnodes = 64;
};

class CachedHttpSource : public core::MetadataSource {
public:
  /// `replica_bases` are origin prefixes ("http://127.0.0.1:7001"); the
  /// locator's path is appended to whichever replica the walk picks.
  explicit CachedHttpSource(std::vector<std::string> replica_bases)
      : CachedHttpSource(std::move(replica_bases), CachedHttpSourceOptions{}) {}
  CachedHttpSource(std::vector<std::string> replica_bases,
                   CachedHttpSourceOptions options);

  std::string name() const override { return "http-cached"; }
  bool remote() const override { return true; }
  bool handles(const std::string& locator) const override;
  std::optional<std::string> fetch(const std::string& locator) override;

  MetaCache& cache() noexcept { return cache_; }
  ReplicaSet& replicas() noexcept { return replicas_; }

private:
  CachedHttpSourceOptions options_;
  ReplicaSet replicas_;
  MetaCache cache_;  // after replicas_: dtor joins the revalidation thread
};

std::unique_ptr<CachedHttpSource> make_cached_http_source(
    std::vector<std::string> replica_bases);
std::unique_ptr<CachedHttpSource> make_cached_http_source(
    std::vector<std::string> replica_bases, CachedHttpSourceOptions options);

}  // namespace omf::metacache
