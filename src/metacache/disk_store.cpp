#include "metacache/disk_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/logging.hpp"

namespace omf::metacache {

namespace {

constexpr char kMagic[8] = {'O', 'M', 'F', 'C', 'A', 'C', 'H', '1'};
constexpr std::size_t kHeaderBytes = 8 + 8 + 8 + 4 + 4 + 8;

struct DiskMetrics {
  obs::Counter& installs;
  obs::Counter& rejects;
  static const DiskMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static DiskMetrics m{reg.counter("omf.metacache.disk_installs"),
                         reg.counter("omf.metacache.disk_rejects")};
    return m;
  }
};

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::vector<std::uint8_t> serialize(std::uint64_t key, const Bundle& b) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + 8 + b.etag.size() + b.body.size() + 4);
  auto push_bytes = [&](const void* p, std::size_t n) {
    const auto* u = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), u, u + n);
  };
  auto push_u32 = [&](std::uint32_t v) {
    std::uint8_t buf[4];
    store_le<std::uint32_t>(buf, v);
    push_bytes(buf, 4);
  };
  auto push_u64 = [&](std::uint64_t v) {
    std::uint8_t buf[8];
    store_le<std::uint64_t>(buf, v);
    push_bytes(buf, 8);
  };
  push_bytes(kMagic, 8);
  push_u64(key);
  push_u64(b.content_hash);
  push_u32(static_cast<std::uint32_t>(b.max_age.count()));
  push_u32(static_cast<std::uint32_t>(b.stale_while_revalidate.count()));
  push_u64(static_cast<std::uint64_t>(b.fetched_ms));
  push_u32(static_cast<std::uint32_t>(b.etag.size()));
  push_bytes(b.etag.data(), b.etag.size());
  push_u32(static_cast<std::uint32_t>(b.body.size()));
  push_bytes(b.body.data(), b.body.size());
  push_u32(crc32(out.data(), out.size()));
  return out;
}

/// Parses one cache file defensively: any structural violation — short
/// file, bad magic, key mismatch, length overflow, CRC mismatch — yields
/// nullopt. A file that passed the CRC also has its content hash
/// recomputed, so even a CRC collision cannot smuggle a body whose hash
/// (the half of the cache key clients revalidate with) lies.
std::optional<Bundle> parse(std::uint64_t key,
                            const std::vector<std::uint8_t>& data) {
  if (data.size() < kHeaderBytes + 8 + 4) return std::nullopt;
  if (std::memcmp(data.data(), kMagic, 8) != 0) return std::nullopt;
  std::uint32_t stored_crc = load_le<std::uint32_t>(&data[data.size() - 4]);
  if (crc32(data.data(), data.size() - 4) != stored_crc) return std::nullopt;
  std::size_t off = 8;
  auto read_u32 = [&](std::uint32_t* v) {
    *v = load_le<std::uint32_t>(&data[off]);
    off += 4;
  };
  auto read_u64 = [&](std::uint64_t* v) {
    *v = load_le<std::uint64_t>(&data[off]);
    off += 8;
  };
  std::uint64_t stored_key = 0;
  Bundle b;
  std::uint64_t fetched = 0;
  std::uint32_t max_age = 0, swr = 0, etag_len = 0, body_len = 0;
  read_u64(&stored_key);
  if (stored_key != key) return std::nullopt;
  read_u64(&b.content_hash);
  read_u32(&max_age);
  read_u32(&swr);
  read_u64(&fetched);
  read_u32(&etag_len);
  if (data.size() - off - 4 < etag_len) return std::nullopt;
  b.etag.assign(reinterpret_cast<const char*>(&data[off]), etag_len);
  off += etag_len;
  read_u32(&body_len);
  if (data.size() - off - 4 != body_len) return std::nullopt;
  b.body.assign(reinterpret_cast<const char*>(&data[off]), body_len);
  if (fnv1a(b.body) != b.content_hash) return std::nullopt;
  b.max_age = std::chrono::seconds(max_age);
  b.stale_while_revalidate = std::chrono::seconds(swr);
  b.fetched_ms = static_cast<std::int64_t>(fetched);
  return b;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::vector<std::uint8_t> out;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      break;
    }
    out.insert(out.end(), buf, buf + r);
  }
  ::close(fd);
  return out;
}

}  // namespace

DiskStore::DiskStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw Error("metacache: cannot create disk store " + dir_.string() +
                ": " + ec.message());
  }
}

std::filesystem::path DiskStore::path_for(std::uint64_t key,
                                          std::uint64_t content_hash) const {
  return dir_ / (hex16(key) + "-" + hex16(content_hash) + ".omfc");
}

void DiskStore::install(std::uint64_t key, const Bundle& bundle) {
  std::vector<std::uint8_t> bytes = serialize(key, bundle);
  std::lock_guard lock(mutex_);
  fsio::atomic_install(path_for(key, bundle.content_hash), bytes,
                       hex16(key) + ".tmp");
  DiskMetrics::get().installs.add();
  // Prune superseded revisions of this key (crash-safe: the new file is
  // already durable, and readers only ever need one intact copy).
  std::string prefix = hex16(key) + "-";
  std::string keep = path_for(key, bundle.content_hash).filename().string();
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() == keep.size() && name.compare(0, prefix.size(), prefix) == 0 &&
        name != keep) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

std::optional<Bundle> DiskStore::load(std::uint64_t key) {
  std::string prefix = hex16(key) + "-";
  std::vector<std::filesystem::path> candidates;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    if (name.compare(0, prefix.size(), prefix) == 0 &&
        name.size() > prefix.size() && entry.path().extension() == ".omfc") {
      candidates.push_back(entry.path());
    }
  }
  std::optional<Bundle> best;
  for (const auto& path : candidates) {
    std::optional<Bundle> parsed = parse(key, read_file(path));
    if (!parsed) {
      DiskMetrics::get().rejects.add();
      OMF_LOG_WARN("metacache", "rejecting torn/corrupt cache file ",
                   path.string());
      std::filesystem::remove(path, ec);
      continue;
    }
    if (!best || parsed->fetched_ms > best->fetched_ms) best = parsed;
  }
  return best;
}

void DiskStore::erase(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  std::string prefix = hex16(key) + "-";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    if (name.compare(0, prefix.size(), prefix) == 0) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

std::size_t DiskStore::entries() const {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".omfc") ++n;
  }
  return n;
}

}  // namespace omf::metacache
