// In-process tier of the metadata cache: a sharded, bytes-bounded LRU.
//
// Sharded by key hash so concurrent subscribers resolving different formats
// never contend on one mutex; bounded in bytes, not entries, because bundle
// sizes span three orders of magnitude. Every cached byte is charged to the
// process-wide overload::MemoryBudget — when the process is under memory
// pressure the cache declines new entries (callers still work, they just
// pay the origin/disk again) rather than deepening the pressure.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "metacache/bundle.hpp"

namespace omf::metacache {

class MemoryCache {
public:
  /// `max_bytes` bounds the sum of cost_bytes() across all shards.
  explicit MemoryCache(std::size_t max_bytes, std::size_t shards = 8);
  ~MemoryCache();
  MemoryCache(const MemoryCache&) = delete;
  MemoryCache& operator=(const MemoryCache&) = delete;

  /// Returns the cached bundle and marks it most-recently-used.
  BundleHandle get(std::uint64_t key);

  /// Inserts/replaces. Returns false when the entry was *not* cached: it is
  /// larger than a shard's whole budget, or the memory budget refused the
  /// charge (process under pressure).
  bool put(std::uint64_t key, BundleHandle bundle);

  void erase(std::uint64_t key);

  std::size_t bytes() const;
  std::size_t entries() const;
  std::size_t evictions() const;

private:
  struct Entry {
    BundleHandle bundle;
    std::list<std::uint64_t>::iterator lru_it;
    std::size_t cost = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::uint64_t> lru;  // front = most recent
    std::unordered_map<std::uint64_t, Entry> map;
    std::size_t bytes = 0;
    std::size_t evictions = 0;
  };

  Shard& shard_for(std::uint64_t key) noexcept {
    return shards_[key % shards_.size()];
  }
  const Shard& shard_for(std::uint64_t key) const noexcept {
    return shards_[key % shards_.size()];
  }

  std::size_t per_shard_bytes_;
  std::vector<Shard> shards_;
};

}  // namespace omf::metacache
