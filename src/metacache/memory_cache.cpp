#include "metacache/memory_cache.hpp"

#include "obs/metrics.hpp"
#include "overload/budget.hpp"

namespace omf::metacache {

namespace {
obs::Counter& eviction_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("omf.metacache.evictions");
  return c;
}
obs::Gauge& bytes_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("omf.metacache.memory_bytes");
  return g;
}
}  // namespace

MemoryCache::MemoryCache(std::size_t max_bytes, std::size_t shards)
    : per_shard_bytes_(max_bytes / (shards == 0 ? 1 : shards)),
      shards_(shards == 0 ? 1 : shards) {}

MemoryCache::~MemoryCache() {
  auto& budget = overload::MemoryBudget::instance();
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    if (shard.bytes > 0) budget.release(shard.bytes);
    bytes_gauge().add(-static_cast<std::int64_t>(shard.bytes));
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

BundleHandle MemoryCache::get(std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.bundle;
}

bool MemoryCache::put(std::uint64_t key, BundleHandle bundle) {
  if (!bundle) return false;
  const std::size_t cost = bundle->cost_bytes();
  if (cost > per_shard_bytes_) return false;  // would evict the whole shard
  auto& budget = overload::MemoryBudget::instance();

  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    budget.release(it->second.cost);
    bytes_gauge().add(-static_cast<std::int64_t>(it->second.cost));
    shard.bytes -= it->second.cost;
    shard.lru.erase(it->second.lru_it);
    shard.map.erase(it);
  }
  // Make room first, then charge: eviction releases budget, so the charge
  // below sees the best case the shard can offer.
  while (shard.bytes + cost > per_shard_bytes_ && !shard.lru.empty()) {
    std::uint64_t victim = shard.lru.back();
    auto vit = shard.map.find(victim);
    budget.release(vit->second.cost);
    bytes_gauge().add(-static_cast<std::int64_t>(vit->second.cost));
    shard.bytes -= vit->second.cost;
    shard.lru.pop_back();
    shard.map.erase(vit);
    ++shard.evictions;
    eviction_metric().add();
  }
  if (!budget.try_charge(cost)) return false;  // process under pressure
  shard.lru.push_front(key);
  shard.map.emplace(key, Entry{std::move(bundle), shard.lru.begin(), cost});
  shard.bytes += cost;
  bytes_gauge().add(static_cast<std::int64_t>(cost));
  return true;
}

void MemoryCache::erase(std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return;
  overload::MemoryBudget::instance().release(it->second.cost);
  bytes_gauge().add(-static_cast<std::int64_t>(it->second.cost));
  shard.bytes -= it->second.cost;
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
}

std::size_t MemoryCache::bytes() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.bytes;
  }
  return total;
}

std::size_t MemoryCache::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

std::size_t MemoryCache::evictions() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.evictions;
  }
  return total;
}

}  // namespace omf::metacache
