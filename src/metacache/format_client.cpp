#include "metacache/format_client.hpp"

#include <cstdlib>

#include "core/http_formats.hpp"
#include "http/http.hpp"
#include "metacache/http_origin.hpp"
#include "pbio/metaserde.hpp"
#include "transport/format_service.hpp"
#include "util/hash.hpp"

namespace omf::metacache {

namespace {

bool is_http_endpoint(const std::string& endpoint) {
  return endpoint.rfind("http://", 0) == 0;
}

/// Recovers the content hash from a validator ("\"16-hex\"" or bare hex).
/// 0 on anything unparsable — which never matches a live bundle, so the
/// replica simply answers with the full body.
std::uint64_t hash_from_etag(const std::string& etag) {
  std::string_view v(etag);
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
    v = v.substr(1, v.size() - 2);
  }
  if (v.empty() || v.size() > 16) return 0;
  std::uint64_t out = 0;
  for (char c : v) {
    out <<= 4;
    if (c >= '0' && c <= '9') out |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return 0;
  }
  return out;
}

}  // namespace

ReplicatedFormatClient::ReplicatedFormatClient(
    std::vector<std::string> endpoints, Options options)
    : options_(options),
      replicas_(std::move(endpoints), options.breaker, options.vnodes),
      cache_(options.cache) {}

FetchResult ReplicatedFormatClient::attempt(const std::string& endpoint,
                                            pbio::FormatId id,
                                            const std::string& etag) {
  if (is_http_endpoint(endpoint)) {
    return http_conditional_get(endpoint + core::format_id_hex(id), etag,
                                options_.retry, options_.fetch_timeout,
                                options_.default_max_age, options_.default_swr);
  }
  const auto port =
      static_cast<std::uint16_t>(std::strtoul(endpoint.c_str(), nullptr, 10));
  transport::FormatServiceClient client(
      port, {.retry = options_.retry, .rpc_timeout = options_.fetch_timeout});
  auto cf = client.conditional_fetch(id, hash_from_etag(etag));
  using Status = transport::FormatServiceClient::ConditionalFetch::Status;
  FetchResult out;
  switch (cf.status) {
    case Status::kUnknown:
      out.status = FetchStatus::kNotFound;
      break;
    case Status::kNotModified:
      out.status = FetchStatus::kNotModified;
      break;
    case Status::kFetched: {
      out.status = FetchStatus::kFetched;
      Bundle b;
      b.body.assign(reinterpret_cast<const char*>(cf.bundle.data()),
                    cf.bundle.size());
      b.content_hash = fnv1a(b.body);
      // Same validator spelling as the HTTP origin, so a bundle cached from
      // a TCP replica revalidates against an HTTP one and vice versa.
      b.etag = http::strong_etag(b.body);
      b.max_age = options_.default_max_age;
      b.stale_while_revalidate = options_.default_swr;
      out.bundle = std::move(b);
      break;
    }
  }
  return out;
}

BundleHandle ReplicatedFormatClient::resolve_bundle(pbio::FormatId id) {
  // Self-contained fetcher: captures only what the background revalidation
  // thread may still need after the caller returns.
  Fetcher fetch = [this, id](const std::string& etag) {
    return replicas_.fetch(
        id, [this, id, &etag](std::size_t, const std::string& endpoint) {
          return attempt(endpoint, id, etag);
        });
  };
  return cache_.resolve(id, fetch);
}

pbio::FormatHandle ReplicatedFormatClient::resolve(
    pbio::FormatRegistry& registry, pbio::FormatId id) {
  BundleHandle bundle = resolve_bundle(id);
  if (!bundle) return nullptr;
  return pbio::deserialize_format_bundle(
      registry, {reinterpret_cast<const std::uint8_t*>(bundle->body.data()),
                 bundle->body.size()});
}

}  // namespace omf::metacache
