// Bounded MPMC message queue: the in-process transport primitive.
//
// Buffers are moved, never copied, queue-to-queue — the event backbone and
// the in-process channel endpoints are built on this.
//
// Capacity and overflow policy are the server-side overload story: an
// unbounded queue turns one stalled subscriber into unbounded process
// growth. A bounded queue instead picks, per subscriber, what to sacrifice
// when the consumer falls behind:
//
//   kBlock       backpressure the producer (in-process pipelines that must
//                not lose messages and trust their consumers)
//   kShedOldest  drop the oldest queued message to admit the new one — a
//                slow subscriber sees a gap, everyone else sees nothing
//   kDisconnect  close the queue at the overflow point; the subscriber is
//                torn down rather than served stale data
//
// Queued bytes are charged against the process-wide overload::MemoryBudget,
// so /metrics' budget gauges reflect queue growth as it happens.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "overload/budget.hpp"
#include "util/buffer.hpp"

namespace omf::transport {

enum class OverflowPolicy {
  kBlock,
  kShedOldest,
  kDisconnect,
};

struct QueueOptions {
  std::size_t max_messages = 0;  ///< 0 = unbounded
  std::size_t max_bytes = 0;     ///< 0 = unbounded
  OverflowPolicy policy = OverflowPolicy::kShedOldest;
};

/// What happened to a pushed message.
enum class PushOutcome {
  kOk,            ///< enqueued, nothing lost
  kShed,          ///< enqueued, but older message(s) were dropped for room
  kClosed,        ///< queue was already closed; message lost
  kDisconnected,  ///< this push overflowed a kDisconnect queue and closed it
};

class MessageQueue {
public:
  MessageQueue() = default;
  explicit MessageQueue(QueueOptions options) : options_(options) {}
  MessageQueue(const MessageQueue&) = delete;
  MessageQueue& operator=(const MessageQueue&) = delete;
  ~MessageQueue() {
    std::lock_guard lock(mutex_);
    release_all_locked();
  }

  /// Enqueues a message under the queue's capacity/policy. Never blocks
  /// except under OverflowPolicy::kBlock at capacity (then it waits for the
  /// consumer or close()). Returns what happened; bool-style callers can
  /// use push() below.
  PushOutcome offer(Buffer message) {
    const std::size_t bytes = message.size();
    std::unique_lock lock(mutex_);
    if (closed_) return PushOutcome::kClosed;
    bool shed = false;
    if (bounded()) {
      if (options_.policy == OverflowPolicy::kBlock) {
        not_full_.wait(lock, [&] { return !would_overflow(bytes) || closed_; });
        if (closed_) return PushOutcome::kClosed;
      } else {
        while (would_overflow(bytes) && !queue_.empty()) {
          if (options_.policy == OverflowPolicy::kDisconnect) {
            // The overflowing message and everything queued are lost; the
            // consumer observes closure and tears the subscriber down.
            dropped_ += queue_.size() + 1;
            release_all_locked();
            closed_ = true;
            lock.unlock();
            cv_.notify_all();
            not_full_.notify_all();
            return PushOutcome::kDisconnected;
          }
          overload::MemoryBudget::instance().release(queue_.front().size());
          queued_bytes_ -= queue_.front().size();
          queue_.pop_front();
          ++dropped_;
          shed = true;
        }
        // A message alone larger than max_bytes can never fit: count it as
        // shed-on-arrival rather than growing past the bound.
        if (would_overflow(bytes)) {
          ++dropped_;
          return PushOutcome::kShed;
        }
      }
    }
    overload::MemoryBudget::instance().charge(bytes);
    queued_bytes_ += bytes;
    queue_.push_back(std::move(message));
    lock.unlock();
    cv_.notify_one();
    return shed ? PushOutcome::kShed : PushOutcome::kOk;
  }

  /// Enqueues a message. Returns false if the queue has been closed.
  bool push(Buffer message) {
    PushOutcome out = offer(std::move(message));
    return out == PushOutcome::kOk || out == PushOutcome::kShed;
  }

  /// Blocks until a message is available or the queue is closed and
  /// drained; nullopt means closed-and-empty.
  std::optional<Buffer> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    return take_front_locked();
  }

  /// Blocks up to `timeout` for a message; nullopt on timeout or when
  /// closed-and-empty (check closed() to distinguish). Lets pollers (e.g.
  /// network bridge threads) observe external stop flags periodically.
  std::optional<Buffer> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
    return take_front_locked();
  }

  /// Non-blocking pop; nullopt when nothing is queued right now.
  std::optional<Buffer> try_pop() {
    std::lock_guard lock(mutex_);
    return take_front_locked();
  }

  /// Wakes all blocked consumers; subsequent pushes are rejected. Messages
  /// already queued remain poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  std::size_t queued_bytes() const {
    std::lock_guard lock(mutex_);
    return queued_bytes_;
  }

  /// Messages lost to overflow (shed or discarded at a disconnect) so far.
  std::size_t dropped() const {
    std::lock_guard lock(mutex_);
    return dropped_;
  }

  const QueueOptions& options() const noexcept { return options_; }

private:
  bool bounded() const noexcept {
    return options_.max_messages != 0 || options_.max_bytes != 0;
  }

  bool would_overflow(std::size_t incoming_bytes) const {
    if (options_.max_messages != 0 &&
        queue_.size() + 1 > options_.max_messages) {
      return true;
    }
    return options_.max_bytes != 0 &&
           queued_bytes_ + incoming_bytes > options_.max_bytes;
  }

  std::optional<Buffer> take_front_locked() {
    if (queue_.empty()) return std::nullopt;
    Buffer b = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= b.size();
    overload::MemoryBudget::instance().release(b.size());
    not_full_.notify_one();
    return b;
  }

  void release_all_locked() {
    if (queued_bytes_ != 0) {
      overload::MemoryBudget::instance().release(queued_bytes_);
      queued_bytes_ = 0;
    }
    queue_.clear();
  }

  QueueOptions options_{};
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable not_full_;
  std::deque<Buffer> queue_;
  std::size_t queued_bytes_ = 0;
  std::size_t dropped_ = 0;
  bool closed_ = false;
};

}  // namespace omf::transport
