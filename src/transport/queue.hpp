// Bounded-unbounded MPMC message queue: the in-process transport primitive.
//
// Buffers are moved, never copied, queue-to-queue — the event backbone and
// the in-process channel endpoints are built on this.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "util/buffer.hpp"

namespace omf::transport {

class MessageQueue {
public:
  MessageQueue() = default;
  MessageQueue(const MessageQueue&) = delete;
  MessageQueue& operator=(const MessageQueue&) = delete;

  /// Enqueues a message. Returns false if the queue has been closed.
  bool push(Buffer message) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a message is available or the queue is closed and
  /// drained; nullopt means closed-and-empty.
  std::optional<Buffer> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    Buffer b = std::move(queue_.front());
    queue_.pop_front();
    return b;
  }

  /// Blocks up to `timeout` for a message; nullopt on timeout or when
  /// closed-and-empty (check closed() to distinguish). Lets pollers (e.g.
  /// network bridge threads) observe external stop flags periodically.
  std::optional<Buffer> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    Buffer b = std::move(queue_.front());
    queue_.pop_front();
    return b;
  }

  /// Non-blocking pop; nullopt when nothing is queued right now.
  std::optional<Buffer> try_pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    Buffer b = std::move(queue_.front());
    queue_.pop_front();
    return b;
  }

  /// Wakes all blocked consumers; subsequent pushes are rejected. Messages
  /// already queued remain poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Buffer> queue_;
  bool closed_ = false;
};

}  // namespace omf::transport
