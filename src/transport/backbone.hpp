// Event backbone: the publish/subscribe substrate of the application
// scenario (Figure 1 of the paper).
//
// Capture points publish encoded messages on named channels; consumers
// subscribe and drain their own queues. Each channel can also announce a
// *metadata locator* — the URL/path of the XML document describing the
// messages flowing on it — which is how subscribers bootstrap xml2wire
// discovery for streams they have never seen before.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "transport/queue.hpp"

namespace omf::transport {

class EventBackbone {
public:
  /// A live subscription. Dropping it unsubscribes. Move-only.
  class Subscription {
  public:
    Subscription() = default;
    Subscription(Subscription&& other) noexcept
        : backbone_(other.backbone_),
          channel_(std::move(other.channel_)),
          queue_(std::move(other.queue_)) {
      other.backbone_ = nullptr;
    }
    Subscription& operator=(Subscription&& other) noexcept {
      if (this != &other) {
        unsubscribe();
        backbone_ = other.backbone_;
        channel_ = std::move(other.channel_);
        queue_ = std::move(other.queue_);
        other.backbone_ = nullptr;
      }
      return *this;
    }
    Subscription(const Subscription&) = delete;
    Subscription& operator=(const Subscription&) = delete;
    ~Subscription() { unsubscribe(); }

    /// Blocking receive; nullopt when the backbone (or this subscription)
    /// has been closed and the queue is drained.
    std::optional<Buffer> receive() {
      return queue_ ? queue_->pop() : std::nullopt;
    }

    /// Non-blocking receive.
    std::optional<Buffer> try_receive() {
      return queue_ ? queue_->try_pop() : std::nullopt;
    }

    /// Bounded-wait receive; nullopt on timeout or closure.
    std::optional<Buffer> receive_for(std::chrono::milliseconds timeout) {
      return queue_ ? queue_->pop_for(timeout) : std::nullopt;
    }

    /// True once the backbone (or this subscription) has shut the queue.
    bool closed() const { return !queue_ || queue_->closed(); }

    std::size_t pending() const { return queue_ ? queue_->size() : 0; }

    /// Messages this subscription lost to its overflow policy.
    std::size_t dropped() const { return queue_ ? queue_->dropped() : 0; }
    const std::string& channel() const noexcept { return channel_; }
    bool active() const noexcept { return queue_ != nullptr; }

    void unsubscribe();

  private:
    friend class EventBackbone;
    Subscription(EventBackbone* backbone, std::string channel,
                 std::shared_ptr<MessageQueue> queue)
        : backbone_(backbone),
          channel_(std::move(channel)),
          queue_(std::move(queue)) {}

    EventBackbone* backbone_ = nullptr;
    std::string channel_;
    std::shared_ptr<MessageQueue> queue_;
  };

  EventBackbone() = default;
  EventBackbone(const EventBackbone&) = delete;
  EventBackbone& operator=(const EventBackbone&) = delete;
  ~EventBackbone() { close(); }

  /// Subscribes to a channel (created on first use) with the backbone's
  /// default queue options, or explicit per-subscription ones.
  Subscription subscribe(const std::string& channel);
  Subscription subscribe(const std::string& channel,
                         const QueueOptions& options);

  /// Default queue options applied to *future* subscriptions (existing
  /// queues keep theirs). Unbounded by default.
  void set_queue_options(const QueueOptions& options);
  QueueOptions queue_options() const;

  /// Delivers `message` to every current subscriber of `channel` (each gets
  /// its own copy). The subscriber list is snapshotted under the backbone
  /// mutex and the pushes happen outside it, so one contended or blocking
  /// subscriber queue cannot serialize the fan-out or wedge the backbone.
  /// Returns the number of queues it was delivered to (shed-oldest
  /// deliveries count; overflow disconnects and closed queues do not).
  std::size_t publish(const std::string& channel, const Buffer& message);

  /// Announces where the metadata for this channel's messages can be
  /// discovered (a file path or URL understood by the DiscoveryManager).
  void announce(const std::string& channel, std::string metadata_locator);

  /// The announced metadata locator, if any.
  std::optional<std::string> metadata_locator(const std::string& channel) const;

  /// Channels with at least one subscriber or an announcement.
  std::vector<std::string> channels() const;

  std::size_t subscriber_count(const std::string& channel) const;

  /// Closes every subscriber queue; subsequent publishes deliver nowhere.
  void close();

private:
  void remove(const std::string& channel, const MessageQueue* queue);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<std::shared_ptr<MessageQueue>>>
      subscribers_;
  std::unordered_map<std::string, std::string> locators_;
  QueueOptions default_queue_options_{};
  bool closed_ = false;
};

}  // namespace omf::transport
