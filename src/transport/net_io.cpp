#include "transport/net_io.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace omf::transport::netio {

namespace {

[[noreturn]] void fail_errno(const char* what, int err) {
  // glibc strerror is thread-safe (per-thread buffer); see tcp.cpp.
  throw TransportError(std::string(what) + ": " + std::strerror(err));  // NOLINT(concurrency-mt-unsafe)
}

[[noreturn]] void fail_timeout(const char* what) {
  obs::MetricsRegistry::instance().counter("transport.timeouts").add();
  throw TimeoutError(std::string(what) + " deadline exceeded");
}

}  // namespace

void set_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail_errno("fcntl(F_GETFL)", errno);
  int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    fail_errno("fcntl(F_SETFL)", errno);
  }
}

void wait_ready(int fd, short events, const Deadline& deadline,
                const char* what) {
  for (;;) {
    if (deadline.expired()) {
      fail_timeout(what);
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    int rc = ::poll(&pfd, 1, deadline.poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;  // re-poll against the same deadline
      fail_errno("poll", errno);
    }
    if (rc == 0) {
      fail_timeout(what);
    }
    // POLLERR/POLLHUP: let the subsequent read/write surface the error.
    return;
  }
}

void write_all(int fd, const void* data, std::size_t n,
               const Deadline& deadline, const char* what) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd, POLLOUT, deadline, what);
        continue;
      }
      fail_errno(what, errno);
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

std::size_t read_some(int fd, void* data, std::size_t n,
                      const Deadline& deadline, const char* what) {
  for (;;) {
    ssize_t r = ::recv(fd, data, n, 0);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(fd, POLLIN, deadline, what);
      continue;
    }
    fail_errno(what, errno);
  }
}

bool read_exact(int fd, void* data, std::size_t n, bool eof_ok,
                const Deadline& deadline, const char* what) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    std::size_t r = read_some(fd, p + got, n - got, deadline, what);
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw TransportError(std::string(what) + ": connection closed mid-frame");
    }
    got += r;
  }
  return true;
}

int connect_loopback(std::uint16_t port, const Deadline& deadline) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket", errno);
  try {
    set_nonblocking(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (errno != EINPROGRESS && errno != EINTR) {
        fail_errno("connect", errno);
      }
      wait_ready(fd, POLLOUT, deadline, "connect");
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        fail_errno("getsockopt(SO_ERROR)", errno);
      }
      if (err != 0) fail_errno("connect", err);
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

void arm_reset_on_close(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

}  // namespace omf::transport::netio
