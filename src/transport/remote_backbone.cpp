#include "transport/remote_backbone.hpp"

#include <chrono>
#include <cstring>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace omf::transport {

using namespace std::chrono_literals;

RemoteBackboneServer::RemoteBackboneServer(EventBackbone& backbone,
                                           std::uint16_t port)
    : backbone_(&backbone),
      listener_(port),
      acceptor_([this] { accept_loop(); }) {}

RemoteBackboneServer::~RemoteBackboneServer() { stop(); }

void RemoteBackboneServer::stop() {
  // Order matters: the acceptor polls with a short deadline and re-checks
  // running_, so it exits on its own; only then is it safe to close the
  // listener from this thread (no cross-thread fd access).
  running_.store(false);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

void RemoteBackboneServer::accept_loop() {
  while (running_.load()) {
    TcpConnection conn;
    try {
      conn = listener_.accept(Deadline::after(50ms));
    } catch (const TimeoutError&) {
      continue;  // periodic running_ re-check; stop() relies on this
    } catch (const TransportError&) {
      break;
    }
    if (!conn.valid()) break;
    std::optional<Buffer> hello;
    try {
      // The accept loop is single-threaded: a client that connects and
      // never says hello (or trickles a partial frame) must not wedge it.
      hello = conn.receive(Deadline::after(10000ms));
    } catch (const Error& e) {
      OMF_LOG_WARN("remote-backbone", "bad hello: ", e.what());
      continue;
    }
    if (!hello || hello->empty()) continue;
    char op = static_cast<char>(*hello->data());
    std::lock_guard lock(workers_mutex_);
    if (op == 'S') {
      std::string channel(reinterpret_cast<const char*>(hello->data()) + 1,
                          hello->size() - 1);
      workers_.emplace_back(
          [this, channel,
           c = std::make_shared<TcpConnection>(std::move(conn))]() mutable {
            serve_subscriber(std::move(*c), channel);
          });
    } else if (op == 'P') {
      workers_.emplace_back(
          [this, c = std::make_shared<TcpConnection>(std::move(conn))]() mutable {
            serve_publisher(std::move(*c));
          });
    } else {
      OMF_LOG_WARN("remote-backbone", "unknown hello op");
    }
  }
}

void RemoteBackboneServer::serve_subscriber(TcpConnection conn,
                                            const std::string& channel) {
  // A subscriber that stops draining its socket must not pin this worker
  // (and the messages queued behind it) forever: bound the send.
  conn.set_timeouts({.connect = {}, .send = 10000ms, .recv = {}});
  EventBackbone::Subscription sub = backbone_->subscribe(channel);
  try {
    while (running_.load()) {
      auto msg = sub.receive_for(50ms);
      if (msg) {
        conn.send(*msg);
      } else if (sub.closed()) {
        break;
      }
    }
  } catch (const Error&) {
    // Peer went away; the subscription unsubscribes via RAII.
  }
}

void RemoteBackboneServer::serve_publisher(TcpConnection conn) {
  try {
    while (running_.load()) {
      auto frame = conn.receive();
      if (!frame) break;
      BufferReader in(*frame);
      std::uint16_t name_len = in.read_int<std::uint16_t>(ByteOrder::kLittle);
      std::string channel = in.read_string(name_len);
      const std::uint8_t* payload = in.read_bytes(in.remaining());
      Buffer message;
      message.append(payload,
                     frame->size() - 2 - name_len);
      backbone_->publish(channel, message);
    }
  } catch (const Error& e) {
    OMF_LOG_WARN("remote-backbone", "publisher session ended: ", e.what());
  }
}

RemoteSubscription::RemoteSubscription(std::uint16_t port,
                                       const std::string& channel,
                                       ReconnectOptions options)
    : port_(port), channel_(channel), options_(options) {
  dial();
}

void RemoteSubscription::dial() {
  connection_ = tcp_connect(port_);
  connection_.set_timeouts(
      {.connect = {}, .send = {}, .recv = options_.recv_timeout});
  Buffer hello;
  char op = 'S';
  hello.append(&op, 1);
  hello.append(channel_);
  connection_.send(hello);
}

std::optional<Buffer> RemoteSubscription::receive() {
  for (;;) {
    bool orderly_close = false;
    try {
      std::optional<Buffer> msg = connection_.receive();
      if (msg) return msg;
      orderly_close = true;  // server closed cleanly; maybe it restarted
    } catch (const TimeoutError&) {
      throw;  // an idle channel is not a dead connection
    } catch (const TransportError&) {
      if (!options_.enabled) throw;
    }
    if (!options_.enabled) return std::nullopt;

    // Reconnect-and-resubscribe per the retry policy. Each attempt re-dials
    // and resends the hello; the server sees a brand-new subscriber.
    int attempts =
        options_.retry.max_attempts < 1 ? 1 : options_.retry.max_attempts;
    bool restored = false;
    for (int attempt = 1; attempt <= attempts && !restored; ++attempt) {
      default_retry_sleeper(options_.retry.backoff(attempt));
      try {
        dial();
        restored = true;
      } catch (const TransportError&) {
        // Server still down; keep backing off.
      }
    }
    if (!restored) {
      if (orderly_close) return std::nullopt;
      throw TransportError("remote subscription lost: reconnect to port " +
                           std::to_string(port_) + " failed after " +
                           std::to_string(attempts) + " attempts");
    }
    ++reconnects_;
  }
}

RemotePublisher::RemotePublisher(std::uint16_t port)
    : connection_(tcp_connect(port)) {
  Buffer hello;
  char op = 'P';
  hello.append(&op, 1);
  connection_.send(hello);
}

void RemotePublisher::publish(const std::string& channel,
                              const Buffer& message) {
  if (channel.size() > 0xFFFF) {
    throw TransportError("channel name too long");
  }
  Buffer frame(2 + channel.size() + message.size());
  frame.append_int<std::uint16_t>(static_cast<std::uint16_t>(channel.size()),
                                  ByteOrder::kLittle);
  frame.append(channel);
  frame.append(message.span());
  connection_.send(frame);
}

}  // namespace omf::transport
