#include "transport/remote_backbone.hpp"

#include <chrono>
#include <cstring>

#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "overload/health.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace omf::transport {

using namespace std::chrono_literals;

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RemoteBackboneServer::RemoteBackboneServer(EventBackbone& backbone,
                                           std::uint16_t port)
    : RemoteBackboneServer(backbone, Options{.port = port}) {}

RemoteBackboneServer::RemoteBackboneServer(EventBackbone& backbone,
                                           Options options)
    : backbone_(&backbone),
      options_(options),
      admission_(options.admission),
      listener_(options.port),
      acceptor_([this] { accept_loop(); }) {}

RemoteBackboneServer::~RemoteBackboneServer() { stop(); }

void RemoteBackboneServer::join_workers() {
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

void RemoteBackboneServer::stop() {
  // Order matters: the acceptor polls with a short deadline and re-checks
  // its flags, so it exits on its own; only then is it safe to close the
  // listener from this thread (no cross-thread fd access).
  running_.store(false);
  accepting_.store(false);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  join_workers();
}

void RemoteBackboneServer::drain(std::chrono::milliseconds deadline) {
  // Graceful shutdown in three acts: (1) stop accepting, so no new work
  // arrives; (2) mark draining — publisher sessions stop consuming frames
  // immediately, subscriber workers keep sending until their queues are
  // empty or the deadline lapses; (3) tear down whatever remains.
  accepting_.store(false);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  drain_deadline_ns_.store(steady_now_ns() +
                           static_cast<std::uint64_t>(
                               std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(deadline)
                                   .count()));
  draining_.store(true);
  join_workers();
  running_.store(false);
}

void RemoteBackboneServer::accept_loop() {
  static obs::Counter& degraded_sheds =
      obs::MetricsRegistry::instance().counter(
          "omf.admission.rejected.degraded");
  while (running_.load() && accepting_.load()) {
    TcpConnection conn;
    try {
      conn = listener_.accept(Deadline::after(50ms));
    } catch (const TimeoutError&) {
      continue;  // periodic flag re-check; stop()/drain() rely on this
    } catch (const TransportError&) {
      break;
    }
    if (!conn.valid()) break;
    std::optional<Buffer> hello;
    try {
      // The accept loop is single-threaded: a client that connects and
      // never says hello (or trickles a partial frame) must not wedge it.
      hello = conn.receive(Deadline::after(10000ms));
    } catch (const Error& e) {
      OMF_LOG_WARN("remote-backbone", "bad hello: ", e.what());
      continue;
    }
    if (!hello || hello->empty()) continue;
    char op = static_cast<char>(*hello->data());
    if (op != 'S' && op != 'P') {
      OMF_LOG_WARN("remote-backbone", "unknown hello op");
      continue;
    }
    // Brownout: past the memory high-watermark, refuse new work outright
    // rather than degrade established sessions (OMF500).
    if (options_.shed_connections_when_degraded &&
        overload::HealthMonitor::instance().state() != overload::Health::kOk) {
      degraded_sheds.add();
      OMF_LOG_WARN("remote-backbone",
                   "connection shed [OMF500]: process is in brownout");
      continue;
    }
    const std::string peer = conn.peer_ip();
    overload::Admission adm = admission_.admit_connection(peer);
    if (!adm) {
      OMF_LOG_WARN("remote-backbone", "connection rejected [", adm.code,
                   "]: ", adm.detail);
      continue;
    }
    std::lock_guard lock(workers_mutex_);
    if (op == 'S') {
      std::string channel(reinterpret_cast<const char*>(hello->data()) + 1,
                          hello->size() - 1);
      workers_.emplace_back(
          [this, channel, peer,
           c = std::make_shared<TcpConnection>(std::move(conn))]() mutable {
            serve_subscriber(std::move(*c), channel, peer);
            admission_.release_connection(peer);
          });
    } else {
      workers_.emplace_back(
          [this, peer,
           c = std::make_shared<TcpConnection>(std::move(conn))]() mutable {
            serve_publisher(std::move(*c), peer);
            admission_.release_connection(peer);
          });
    }
  }
}

void RemoteBackboneServer::serve_subscriber(TcpConnection conn,
                                            const std::string& channel,
                                            const std::string& peer) {
  // A subscriber that stops draining its socket must not pin this worker
  // (and the messages queued behind it) forever: bound the send. The
  // subscription's queue carries the server's bound/overflow policy, so a
  // stalled socket backs up into *shedding*, not unbounded memory.
  conn.set_timeouts(
      {.connect = {}, .send = options_.subscriber_send_timeout, .recv = {}});
  EventBackbone::Subscription sub =
      backbone_->subscribe(channel, options_.queue);
  ++subscriber_seq_;
  // One pre-registered aggregate counter; the per-subscriber breakdown
  // lives in the bounded attribution family keyed on the peer, not in an
  // unbounded set of dynamically named counters.
  static obs::Counter& drops = obs::MetricsRegistry::instance().counter(
      "transport.backbone.subscriber_dropped");
  std::size_t drops_flushed = 0;
  auto flush_drops = [&] {
    std::size_t d = sub.dropped();
    if (d > drops_flushed) {
      drops.add(d - drops_flushed);
      obs::Attribution::instance().charge(
          0, peer, obs::AttrDelta{.drops = d - drops_flushed});
      drops_flushed = d;
    }
  };
  try {
    while (running_.load()) {
      if (draining_.load() &&
          steady_now_ns() >= drain_deadline_ns_.load()) {
        break;  // deadline lapsed with messages still queued: cut losses
      }
      auto msg = sub.receive_for(50ms);
      flush_drops();
      if (msg) {
        conn.send(*msg);
      } else if (sub.closed()) {
        break;
      } else if (draining_.load()) {
        break;  // queue ran dry while draining: this subscriber is flushed
      }
    }
  } catch (const Error&) {
    // Peer went away; the subscription unsubscribes via RAII.
  }
  flush_drops();
}

void RemoteBackboneServer::serve_publisher(TcpConnection conn,
                                           const std::string& peer) {
  bool reject_logged = false;
  try {
    while (running_.load() && !draining_.load()) {
      // Poll readability instead of using a receive timeout: a timeout can
      // expire *mid-frame* (the chaos suite delays bytes in transit) and
      // desynchronize the stream, whereas this blocks only once a frame
      // has started arriving — and an idle publisher cannot pin this
      // worker across stop()/drain().
      if (!conn.readable()) {
        std::this_thread::sleep_for(5ms);
        continue;
      }
      auto frame = conn.receive();
      if (!frame) break;
      // Per-peer rate admission: a flooding publisher is shed frame by
      // frame (counted in omf.admission.*), never queued.
      overload::Admission adm = admission_.admit_message(peer, frame->size());
      if (!adm) {
        if (!reject_logged) {
          OMF_LOG_WARN("remote-backbone", "publish rejected [", adm.code,
                       "]: ", adm.detail, " (further rejects counted only)");
          reject_logged = true;
        }
        continue;
      }
      BufferReader in(*frame);
      std::uint16_t name_len = in.read_int<std::uint16_t>(ByteOrder::kLittle);
      std::string channel = in.read_string(name_len);
      const std::uint8_t* payload = in.read_bytes(in.remaining());
      Buffer message;
      message.append(payload,
                     frame->size() - 2 - name_len);
      backbone_->publish(channel, message);
    }
  } catch (const Error& e) {
    OMF_LOG_WARN("remote-backbone", "publisher session ended: ", e.what());
  }
}

RemoteSubscription::RemoteSubscription(std::uint16_t port,
                                       const std::string& channel,
                                       ReconnectOptions options)
    : port_(port), channel_(channel), options_(options) {
  dial();
}

void RemoteSubscription::dial() {
  connection_ = tcp_connect(port_);
  connection_.set_timeouts(
      {.connect = {}, .send = {}, .recv = options_.recv_timeout});
  Buffer hello;
  char op = 'S';
  hello.append(&op, 1);
  hello.append(channel_);
  connection_.send(hello);
}

std::optional<Buffer> RemoteSubscription::receive() {
  for (;;) {
    bool orderly_close = false;
    try {
      std::optional<Buffer> msg = connection_.receive();
      if (msg) return msg;
      orderly_close = true;  // server closed cleanly; maybe it restarted
    } catch (const TimeoutError&) {
      throw;  // an idle channel is not a dead connection
    } catch (const TransportError&) {
      if (!options_.enabled) throw;
    }
    if (!options_.enabled) return std::nullopt;

    // Reconnect-and-resubscribe per the retry policy. Each attempt re-dials
    // and resends the hello; the server sees a brand-new subscriber.
    int attempts =
        options_.retry.max_attempts < 1 ? 1 : options_.retry.max_attempts;
    bool restored = false;
    for (int attempt = 1; attempt <= attempts && !restored; ++attempt) {
      default_retry_sleeper(options_.retry.backoff(attempt));
      try {
        dial();
        restored = true;
      } catch (const TransportError&) {
        // Server still down; keep backing off.
      }
    }
    if (!restored) {
      if (orderly_close) return std::nullopt;
      throw TransportError("remote subscription lost: reconnect to port " +
                           std::to_string(port_) + " failed after " +
                           std::to_string(attempts) + " attempts");
    }
    ++reconnects_;
  }
}

RemotePublisher::RemotePublisher(std::uint16_t port)
    : connection_(tcp_connect(port)) {
  Buffer hello;
  char op = 'P';
  hello.append(&op, 1);
  connection_.send(hello);
}

void RemotePublisher::publish(const std::string& channel,
                              const Buffer& message) {
  if (channel.size() > 0xFFFF) {
    throw TransportError("channel name too long");
  }
  Buffer frame(2 + channel.size() + message.size());
  frame.append_int<std::uint16_t>(static_cast<std::uint16_t>(channel.size()),
                                  ByteOrder::kLittle);
  frame.append(channel);
  frame.append(message.span());
  connection_.send(frame);
}

}  // namespace omf::transport
