#include "transport/format_service.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overload/health.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace omf::transport {

namespace {
struct FormatServiceMetrics {
  obs::Counter& requests;
  obs::Counter& fetches;
  obs::Counter& pushes;
  obs::Counter& unknown_ids;
  obs::Counter& retries;
  obs::Counter& push_rejects;
  obs::Counter& not_modified;
  obs::Counter& traced_requests;
  static const FormatServiceMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static FormatServiceMetrics m{
        reg.counter("transport.format_service.requests"),
        reg.counter("transport.format_service.fetches"),
        reg.counter("transport.format_service.pushes"),
        reg.counter("transport.format_service.unknown_ids"),
        reg.counter("transport.format_service.retries"),
        reg.counter("transport.format_service.push_rejects"),
        reg.counter("transport.format_service.not_modified"),
        reg.counter("transport.format_service.traced_requests")};
    return m;
  }
};

/// Response to a rejected 'P': status 0 then the lint-style reason.
Buffer reject_response(const char* code, const std::string& detail) {
  Buffer response;
  response.append_int<std::uint8_t>(0, ByteOrder::kLittle);
  std::string reason = std::string("[") + code + "] " + detail;
  response.append(reason);
  return response;
}
}  // namespace

FormatServiceServer::FormatServiceServer(std::uint16_t port)
    : FormatServiceServer(Options{.port = port}) {}

FormatServiceServer::FormatServiceServer(Options options)
    : options_(std::move(options)),
      admission_(options_.admission),
      listener_(options_.port) {
  if (!options_.journal_dir.empty()) {
    journal_ = std::make_unique<overload::Journal>(options_.journal_dir,
                                                   options_.journal);
    // Replay before serving: a request must never observe a half-recovered
    // registry. A torn tail (killed mid-append) is truncated by recover().
    recovered_ = journal_->recover([&](std::span<const std::uint8_t> record) {
      pbio::deserialize_format_bundle(registry_, record);
    });
    if (recovered_.snapshot_records + recovered_.journal_records > 0 ||
        recovered_.torn_tail) {
      OMF_LOG_INFO("format-service", "recovered ",
                   recovered_.snapshot_records, " snapshot + ",
                   recovered_.journal_records, " journal records",
                   recovered_.torn_tail ? " (torn tail truncated)" : "");
    }
  }
  thread_ = std::thread([this] { serve(); });
}

FormatServiceServer::~FormatServiceServer() { stop(); }

void FormatServiceServer::stop() {
  // serve() polls accept with a short deadline and re-checks running_, so
  // it exits on its own; closing the listener only after the join keeps
  // all fd accesses on one thread.
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  listener_.close();
  if (journal_) journal_->flush();  // graceful shutdown: nothing buffered
}

pbio::FormatHandle FormatServiceServer::ingest(
    std::span<const std::uint8_t> bundle) {
  // One mutex around {register, journal, maybe-compact} so a compaction
  // snapshot can never miss a registration that beat it to the registry
  // but not yet to the journal.
  std::lock_guard lock(persist_mutex_);
  pbio::FormatHandle format = pbio::deserialize_format_bundle(registry_, bundle);
  if (journal_) {
    // Registration validated above — only well-formed bundles are journaled,
    // and the push is acknowledged only after the record is durable.
    journal_->append(bundle);
    if (journal_->wants_compaction()) {
      std::vector<Buffer> records;
      for (const pbio::FormatHandle& f : registry_.all()) {
        records.push_back(pbio::serialize_format_bundle(*f));
      }
      journal_->compact(records);
    }
  }
  return format;
}

void FormatServiceServer::publish(const pbio::Format& format) {
  Buffer bundle = pbio::serialize_format_bundle(format);
  ingest(bundle.span());
}

void FormatServiceServer::serve() {
  while (running_.load()) {
    TcpConnection conn;
    try {
      conn = listener_.accept(Deadline::after(std::chrono::milliseconds(50)));
    } catch (const TimeoutError&) {
      continue;  // periodic running_ re-check; stop() relies on this
    } catch (const TransportError&) {
      break;
    }
    if (!conn.valid()) break;
    try {
      handle(std::move(conn));
    } catch (const Error& e) {
      OMF_LOG_WARN("format-service", "request failed: ", e.what());
    }
    // A traced 'C' adopts the caller's trace context for the serve span;
    // drop it so the next request on this thread starts clean.
    obs::set_current_trace_id(0);
  }
}

void FormatServiceServer::handle(TcpConnection conn) {
  // One request per connection keeps the protocol stateless and trivially
  // robust; discovery traffic is rare by design.
  std::chrono::milliseconds t(request_timeout_.load());
  conn.set_timeouts({.connect = {}, .send = t, .recv = t});
  const std::string peer = conn.peer_ip();
  std::optional<Buffer> request = conn.receive();
  if (!request) return;
  BufferReader in(*request);
  std::uint8_t op = in.read_int<std::uint8_t>(ByteOrder::kLittle);
  const FormatServiceMetrics& metrics = FormatServiceMetrics::get();
  metrics.requests.add();

  // Per-peer rate quota, checked before any registration or serialization
  // happens on the request's behalf. A throttled fetch just loses its
  // connection (clients retry per policy); a throttled push gets the
  // structured reason.
  overload::Admission adm = admission_.admit_message(peer, request->size());

  Buffer response;
  if (op == 'G') {
    if (!adm) return;
    auto id = in.read_int<std::uint64_t>(ByteOrder::kLittle);
    pbio::FormatHandle format = registry_.by_id(id);
    if (format) {
      Buffer bundle = pbio::serialize_format_bundle(*format);
      response.append_int<std::uint32_t>(
          static_cast<std::uint32_t>(bundle.size()), ByteOrder::kLittle);
      response.append(bundle.span());
    } else {
      metrics.unknown_ids.add();
      response.append_int<std::uint32_t>(0, ByteOrder::kLittle);
    }
  } else if (op == 'C') {
    if (!adm) return;
    auto id = in.read_int<std::uint64_t>(ByteOrder::kLittle);
    auto known_hash = in.read_int<std::uint64_t>(ByteOrder::kLittle);
    // Optional trailing trace context (8-byte LE trace id + 8-byte LE
    // parent span id): the serve span joins the caller's trace tree as a
    // child of the client's fetch span. Old clients simply omit it.
    if (in.remaining() >= 16) {
      std::uint64_t trace_id = in.read_int<std::uint64_t>(ByteOrder::kLittle);
      std::uint64_t parent = in.read_int<std::uint64_t>(ByteOrder::kLittle);
      obs::set_current_trace(trace_id, parent);
      metrics.traced_requests.add();
    }
    obs::ScopedSpan serve_span(obs::Phase::kDiscover, "format_service.serve");
    pbio::FormatHandle format = registry_.by_id(id);
    if (!format) {
      metrics.unknown_ids.add();
      response.append_int<std::uint8_t>(0, ByteOrder::kLittle);
    } else {
      Buffer bundle = pbio::serialize_format_bundle(*format);
      std::uint64_t hash = fnv1a(
          {reinterpret_cast<const char*>(bundle.data()), bundle.size()});
      if (hash == known_hash) {
        // Validator match: spend one status byte, not the whole bundle.
        metrics.not_modified.add();
        response.append_int<std::uint8_t>(1, ByteOrder::kLittle);
      } else {
        response.append_int<std::uint8_t>(2, ByteOrder::kLittle);
        response.append_int<std::uint32_t>(
            static_cast<std::uint32_t>(bundle.size()), ByteOrder::kLittle);
        response.append(bundle.span());
      }
    }
  } else if (op == 'P') {
    if (!adm) {
      metrics.push_rejects.add();
      conn.send(reject_response(adm.code, adm.detail));
      return;
    }
    if (options_.reject_publishes_when_degraded &&
        overload::HealthMonitor::instance().state() != overload::Health::kOk) {
      // Brownout: keep serving (possibly stale) metadata, but refuse to
      // grow the registry until memory pressure recedes.
      metrics.push_rejects.add();
      static obs::Counter& degraded_rejects =
          obs::MetricsRegistry::instance().counter(
              "omf.admission.rejected.degraded");
      degraded_rejects.add();
      conn.send(reject_response(
          "OMF500", "publish rejected: memory budget in brownout; the "
                    "registry is read-only until pressure recedes"));
      return;
    }
    auto len = in.read_int<std::uint32_t>(ByteOrder::kLittle);
    const std::uint8_t* bundle = in.read_bytes(len);
    ingest({bundle, len});
    response.append_int<std::uint8_t>(1, ByteOrder::kLittle);
  } else {
    throw TransportError("unknown format-service opcode");
  }
  conn.send(response);
}

/// One request/response exchange on a fresh connection, bounded by a single
/// deadline spanning connect + send + receive, retried per the policy.
Buffer FormatServiceClient::roundtrip(const Buffer& request) {
  int attempt = 0;
  return retry_call(options_.retry, [&] {
    if (attempt++ > 0) {
      ++retries_;
      FormatServiceMetrics::get().retries.add();
    }
    Deadline deadline = Deadline::from_timeout(options_.rpc_timeout);
    TcpConnection conn = tcp_connect(port_, deadline);
    conn.send(request, deadline);
    std::optional<Buffer> response = conn.receive(deadline);
    if (!response) throw TransportError("format service closed connection");
    return std::move(*response);
  });
}

pbio::FormatHandle FormatServiceClient::fetch(pbio::FormatRegistry& registry,
                                              pbio::FormatId id) {
  FormatServiceMetrics::get().fetches.add();
  Buffer request;
  request.append_int<std::uint8_t>('G', ByteOrder::kLittle);
  request.append_int<std::uint64_t>(id, ByteOrder::kLittle);
  Buffer response = roundtrip(request);
  BufferReader in(response);
  auto len = in.read_int<std::uint32_t>(ByteOrder::kLittle);
  if (len == 0) return nullptr;
  const std::uint8_t* bundle = in.read_bytes(len);
  return pbio::deserialize_format_bundle(registry, {bundle, len});
}

FormatServiceClient::ConditionalFetch FormatServiceClient::conditional_fetch(
    pbio::FormatId id, std::uint64_t known_hash) {
  FormatServiceMetrics::get().fetches.add();
  // The fetch gets its own discover span; its id rides the request as the
  // trailing trace context, so the server's serve span parents under it.
  obs::ScopedSpan fetch_span(obs::Phase::kDiscover, "format_service.cfetch");
  Buffer request;
  request.append_int<std::uint8_t>('C', ByteOrder::kLittle);
  request.append_int<std::uint64_t>(id, ByteOrder::kLittle);
  request.append_int<std::uint64_t>(known_hash, ByteOrder::kLittle);
  if (std::uint64_t trace = obs::current_trace_id(); trace != 0) {
    request.append_int<std::uint64_t>(trace, ByteOrder::kLittle);
    request.append_int<std::uint64_t>(
        fetch_span.active() ? fetch_span.span_id() : obs::current_span_id(),
        ByteOrder::kLittle);
    FormatServiceMetrics::get().traced_requests.add();
  }
  Buffer response = roundtrip(request);
  BufferReader in(response);
  ConditionalFetch out;
  switch (in.read_int<std::uint8_t>(ByteOrder::kLittle)) {
    case 0:
      out.status = ConditionalFetch::Status::kUnknown;
      break;
    case 1:
      out.status = ConditionalFetch::Status::kNotModified;
      break;
    case 2: {
      out.status = ConditionalFetch::Status::kFetched;
      auto len = in.read_int<std::uint32_t>(ByteOrder::kLittle);
      const std::uint8_t* bundle = in.read_bytes(len);
      out.bundle.append({bundle, len});
      break;
    }
    default:
      throw TransportError("format service: bad conditional-fetch tag");
  }
  return out;
}

void FormatServiceClient::push(const pbio::Format& format) {
  FormatServiceMetrics::get().pushes.add();
  Buffer bundle = pbio::serialize_format_bundle(format);
  Buffer request;
  request.append_int<std::uint8_t>('P', ByteOrder::kLittle);
  request.append_int<std::uint32_t>(static_cast<std::uint32_t>(bundle.size()),
                                    ByteOrder::kLittle);
  request.append(bundle.span());
  Buffer response = roundtrip(request);
  BufferReader in(response);
  if (in.read_int<std::uint8_t>(ByteOrder::kLittle) != 1) {
    // New servers follow the status byte with a lint-style "[OMFnnn] why"
    // string; surface it verbatim so callers can branch on the code.
    std::string reason = in.remaining() > 0
                             ? in.read_string(in.remaining())
                             : std::string("(no reason given)");
    throw TransportError("format service rejected push: " + reason);
  }
}

}  // namespace omf::transport
