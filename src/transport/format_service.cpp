#include "transport/format_service.hpp"

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace omf::transport {

namespace {
struct FormatServiceMetrics {
  obs::Counter& requests;
  obs::Counter& fetches;
  obs::Counter& pushes;
  obs::Counter& unknown_ids;
  obs::Counter& retries;
  static const FormatServiceMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static FormatServiceMetrics m{
        reg.counter("transport.format_service.requests"),
        reg.counter("transport.format_service.fetches"),
        reg.counter("transport.format_service.pushes"),
        reg.counter("transport.format_service.unknown_ids"),
        reg.counter("transport.format_service.retries")};
    return m;
  }
};
}  // namespace

FormatServiceServer::FormatServiceServer(std::uint16_t port)
    : listener_(port), thread_([this] { serve(); }) {}

FormatServiceServer::~FormatServiceServer() { stop(); }

void FormatServiceServer::stop() {
  // serve() polls accept with a short deadline and re-checks running_, so
  // it exits on its own; closing the listener only after the join keeps
  // all fd accesses on one thread.
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void FormatServiceServer::publish(const pbio::Format& format) {
  Buffer bundle = pbio::serialize_format_bundle(format);
  pbio::deserialize_format_bundle(registry_, bundle.span());
}

void FormatServiceServer::serve() {
  while (running_.load()) {
    TcpConnection conn;
    try {
      conn = listener_.accept(Deadline::after(std::chrono::milliseconds(50)));
    } catch (const TimeoutError&) {
      continue;  // periodic running_ re-check; stop() relies on this
    } catch (const TransportError&) {
      break;
    }
    if (!conn.valid()) break;
    try {
      handle(std::move(conn));
    } catch (const Error& e) {
      OMF_LOG_WARN("format-service", "request failed: ", e.what());
    }
  }
}

void FormatServiceServer::handle(TcpConnection conn) {
  // One request per connection keeps the protocol stateless and trivially
  // robust; discovery traffic is rare by design.
  std::chrono::milliseconds t(request_timeout_.load());
  conn.set_timeouts({.connect = {}, .send = t, .recv = t});
  std::optional<Buffer> request = conn.receive();
  if (!request) return;
  BufferReader in(*request);
  std::uint8_t op = in.read_int<std::uint8_t>(ByteOrder::kLittle);
  const FormatServiceMetrics& metrics = FormatServiceMetrics::get();
  metrics.requests.add();

  Buffer response;
  if (op == 'G') {
    auto id = in.read_int<std::uint64_t>(ByteOrder::kLittle);
    pbio::FormatHandle format = registry_.by_id(id);
    if (format) {
      Buffer bundle = pbio::serialize_format_bundle(*format);
      response.append_int<std::uint32_t>(
          static_cast<std::uint32_t>(bundle.size()), ByteOrder::kLittle);
      response.append(bundle.span());
    } else {
      metrics.unknown_ids.add();
      response.append_int<std::uint32_t>(0, ByteOrder::kLittle);
    }
  } else if (op == 'P') {
    auto len = in.read_int<std::uint32_t>(ByteOrder::kLittle);
    const std::uint8_t* bundle = in.read_bytes(len);
    pbio::deserialize_format_bundle(registry_, {bundle, len});
    response.append_int<std::uint8_t>(1, ByteOrder::kLittle);
  } else {
    throw TransportError("unknown format-service opcode");
  }
  conn.send(response);
}

/// One request/response exchange on a fresh connection, bounded by a single
/// deadline spanning connect + send + receive, retried per the policy.
Buffer FormatServiceClient::roundtrip(const Buffer& request) {
  int attempt = 0;
  return retry_call(options_.retry, [&] {
    if (attempt++ > 0) {
      ++retries_;
      FormatServiceMetrics::get().retries.add();
    }
    Deadline deadline = Deadline::from_timeout(options_.rpc_timeout);
    TcpConnection conn = tcp_connect(port_, deadline);
    conn.send(request, deadline);
    std::optional<Buffer> response = conn.receive(deadline);
    if (!response) throw TransportError("format service closed connection");
    return std::move(*response);
  });
}

pbio::FormatHandle FormatServiceClient::fetch(pbio::FormatRegistry& registry,
                                              pbio::FormatId id) {
  FormatServiceMetrics::get().fetches.add();
  Buffer request;
  request.append_int<std::uint8_t>('G', ByteOrder::kLittle);
  request.append_int<std::uint64_t>(id, ByteOrder::kLittle);
  Buffer response = roundtrip(request);
  BufferReader in(response);
  auto len = in.read_int<std::uint32_t>(ByteOrder::kLittle);
  if (len == 0) return nullptr;
  const std::uint8_t* bundle = in.read_bytes(len);
  return pbio::deserialize_format_bundle(registry, {bundle, len});
}

void FormatServiceClient::push(const pbio::Format& format) {
  FormatServiceMetrics::get().pushes.add();
  Buffer bundle = pbio::serialize_format_bundle(format);
  Buffer request;
  request.append_int<std::uint8_t>('P', ByteOrder::kLittle);
  request.append_int<std::uint32_t>(static_cast<std::uint32_t>(bundle.size()),
                                    ByteOrder::kLittle);
  request.append(bundle.span());
  Buffer response = roundtrip(request);
  BufferReader in(response);
  if (in.read_int<std::uint8_t>(ByteOrder::kLittle) != 1) {
    throw TransportError("format service rejected push");
  }
}

}  // namespace omf::transport
