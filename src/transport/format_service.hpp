// Format service: PBIO's format server.
//
// Wire messages carry only a 64-bit format id. When a receiver sees an id
// it does not know, it asks the format service for the serialized metadata
// bundle, registers it locally, and can then compile a conversion plan.
// Senders push their formats to the service at registration time.
//
// Protocol (all integers little-endian):
//   request:  1-byte opcode ('G' get | 'P' put | 'C' conditional get) ...
//     G: 8-byte format id
//     P: 4-byte bundle length + bundle bytes
//     C: 8-byte format id + 8-byte known content hash (fnv1a of the bundle
//        bytes the client already holds — the TCP analogue of HTTP's
//        If-None-Match)
//   response (to G): 4-byte length + bundle bytes, length 0 = unknown id
//   response (to P): 1-byte status (1 = ok; 0 = rejected, followed by a
//                    lint-style "[OMFnnn] detail" string for new clients —
//                    old clients just see status != 1 and throw)
//   response (to C): 1-byte tag: 0 = unknown id, 1 = not modified (the
//                    client's hash matches; no body follows — the 304),
//                    2 = modified, followed by 4-byte length + bundle bytes
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "overload/admission.hpp"
#include "overload/journal.hpp"
#include "pbio/format.hpp"
#include "pbio/metaserde.hpp"
#include "transport/tcp.hpp"
#include "util/retry.hpp"

namespace omf::transport {

/// In-process format server: owns its own registry of published formats and
/// serves them over a loopback TCP port on a background thread.
///
/// With Options::journal_dir set, every accepted registration is appended to
/// a crash-recoverable journal (overload::Journal) before the push is
/// acknowledged, and a restart pointing at the same directory replays
/// snapshot + journal back into the registry — the paper's "publicly known
/// server" survives being killed. Per-peer rate quotas gate requests, and
/// during memory-budget brownout the service rejects new publishes
/// ([OMF500]) while continuing to serve possibly-stale fetches.
class FormatServiceServer {
public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral (see port())
    /// Directory for journal.log/snapshot.bin; empty = volatile registry.
    std::string journal_dir;
    overload::Journal::Options journal{};
    /// Per-peer msgs/bytes-per-second quotas (connections are one-shot
    /// here, so only the rate fields apply).
    overload::AdmissionLimits admission{};
    /// Reject 'P' requests while the memory budget is in brownout; 'G'
    /// keeps serving (stale metadata beats no metadata).
    bool reject_publishes_when_degraded = true;
  };

  /// Starts listening on `port` (0 = ephemeral; see port()).
  explicit FormatServiceServer(std::uint16_t port = 0);
  explicit FormatServiceServer(Options options);
  ~FormatServiceServer();
  FormatServiceServer(const FormatServiceServer&) = delete;
  FormatServiceServer& operator=(const FormatServiceServer&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Publishes a format directly (server-side registration, no socket).
  void publish(const pbio::Format& format);

  /// Number of formats currently published.
  std::size_t published() const { return registry_.size(); }

  /// Every format currently in the registry (diagnostics / recovery diff).
  std::vector<pbio::FormatHandle> formats() const { return registry_.all(); }

  /// What construction-time journal recovery replayed (all zeros when no
  /// journal_dir was configured).
  const overload::Journal::RecoverStats& recovered() const noexcept {
    return recovered_;
  }

  /// Per-request I/O bound: a client that connects and stalls is dropped
  /// after this long instead of wedging the (single) service thread.
  void set_request_timeout(std::chrono::milliseconds t) noexcept {
    request_timeout_.store(t.count());
  }

  /// Stops accepting and flushes the journal (graceful shutdown).
  void stop();

private:
  void serve();
  void handle(TcpConnection conn);
  pbio::FormatHandle ingest(std::span<const std::uint8_t> bundle);

  Options options_;
  pbio::FormatRegistry registry_;
  std::unique_ptr<overload::Journal> journal_;
  overload::Journal::RecoverStats recovered_{};
  overload::AdmissionController admission_;
  std::mutex persist_mutex_;
  TcpListener listener_;
  std::atomic<bool> running_{true};
  std::atomic<std::int64_t> request_timeout_{30000};  // ms
  std::thread thread_;
};

/// Client side: fetch/push format bundles from/to a server.
///
/// Each RPC dials a fresh connection; transient failures (connect refused,
/// reset, deadline expiry) are retried per `Options::retry` with exponential
/// backoff, each attempt bounded by `Options::rpc_timeout`. Defaults keep
/// the historical behaviour: one attempt, no timeout.
class FormatServiceClient {
public:
  struct Options {
    RetryPolicy retry{.max_attempts = 1};
    std::chrono::milliseconds rpc_timeout{0};  ///< whole-RPC; 0 = none
  };

  explicit FormatServiceClient(std::uint16_t port)
      : FormatServiceClient(port, Options{}) {}
  FormatServiceClient(std::uint16_t port, Options options)
      : port_(port), options_(options) {}

  /// Fetches the bundle for `id` and registers it into `registry`.
  /// Returns the fetched format, or nullptr if the server does not know it.
  pbio::FormatHandle fetch(pbio::FormatRegistry& registry, pbio::FormatId id);

  /// Outcome of a conditional fetch ('C').
  struct ConditionalFetch {
    enum class Status {
      kUnknown,      ///< server does not know the id
      kNotModified,  ///< `known_hash` matches; the cached copy is current
      kFetched,      ///< bundle holds the new bytes
    };
    Status status = Status::kUnknown;
    Buffer bundle;  ///< meaningful only for kFetched
  };

  /// Conditional fetch: sends the fnv1a hash of the bundle bytes the caller
  /// already holds; the server answers "not modified" instead of re-sending
  /// an unchanged bundle (the TCP analogue of If-None-Match / 304).
  ConditionalFetch conditional_fetch(pbio::FormatId id,
                                     std::uint64_t known_hash);

  /// Pushes a format's bundle to the server.
  void push(const pbio::Format& format);

  /// RPC attempts that failed and were retried (diagnostics).
  std::size_t retries() const noexcept { return retries_; }

private:
  Buffer roundtrip(const Buffer& request);

  std::uint16_t port_;
  Options options_;
  std::size_t retries_ = 0;
};

}  // namespace omf::transport
