// Format service: PBIO's format server.
//
// Wire messages carry only a 64-bit format id. When a receiver sees an id
// it does not know, it asks the format service for the serialized metadata
// bundle, registers it locally, and can then compile a conversion plan.
// Senders push their formats to the service at registration time.
//
// Protocol (all integers little-endian):
//   request:  1-byte opcode ('G' get | 'P' put) ...
//     G: 8-byte format id
//     P: 4-byte bundle length + bundle bytes
//   response (to G): 4-byte length + bundle bytes, length 0 = unknown id
//   response (to P): 1-byte status (1 = ok)
#pragma once

#include <atomic>
#include <thread>

#include "pbio/format.hpp"
#include "pbio/metaserde.hpp"
#include "transport/tcp.hpp"

namespace omf::transport {

/// In-process format server: owns its own registry of published formats and
/// serves them over a loopback TCP port on a background thread.
class FormatServiceServer {
public:
  /// Starts listening on `port` (0 = ephemeral; see port()).
  explicit FormatServiceServer(std::uint16_t port = 0);
  ~FormatServiceServer();
  FormatServiceServer(const FormatServiceServer&) = delete;
  FormatServiceServer& operator=(const FormatServiceServer&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Publishes a format directly (server-side registration, no socket).
  void publish(const pbio::Format& format);

  /// Number of formats currently published.
  std::size_t published() const { return registry_.size(); }

  void stop();

private:
  void serve();
  void handle(TcpConnection conn);

  pbio::FormatRegistry registry_;
  TcpListener listener_;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

/// Client side: fetch/push format bundles from/to a server.
class FormatServiceClient {
public:
  explicit FormatServiceClient(std::uint16_t port) : port_(port) {}

  /// Fetches the bundle for `id` and registers it into `registry`.
  /// Returns the fetched format, or nullptr if the server does not know it.
  pbio::FormatHandle fetch(pbio::FormatRegistry& registry, pbio::FormatId id);

  /// Pushes a format's bundle to the server.
  void push(const pbio::Format& format);

private:
  std::uint16_t port_;
};

}  // namespace omf::transport
