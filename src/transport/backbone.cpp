#include "transport/backbone.hpp"

#include <algorithm>

namespace omf::transport {

void EventBackbone::Subscription::unsubscribe() {
  if (backbone_ != nullptr && queue_ != nullptr) {
    queue_->close();
    backbone_->remove(channel_, queue_.get());
  }
  backbone_ = nullptr;
  queue_.reset();
}

EventBackbone::Subscription EventBackbone::subscribe(
    const std::string& channel) {
  auto queue = std::make_shared<MessageQueue>();
  {
    std::lock_guard lock(mutex_);
    if (closed_) {
      queue->close();
    } else {
      subscribers_[channel].push_back(queue);
    }
  }
  return Subscription(this, channel, std::move(queue));
}

std::size_t EventBackbone::publish(const std::string& channel,
                                   const Buffer& message) {
  std::vector<std::shared_ptr<MessageQueue>> targets;
  {
    std::lock_guard lock(mutex_);
    auto it = subscribers_.find(channel);
    if (it == subscribers_.end()) return 0;
    targets = it->second;  // copy so delivery happens outside the lock
  }
  std::size_t delivered = 0;
  for (const auto& q : targets) {
    Buffer copy;
    copy.append(message.span());
    if (q->push(std::move(copy))) ++delivered;
  }
  return delivered;
}

void EventBackbone::announce(const std::string& channel,
                             std::string metadata_locator) {
  std::lock_guard lock(mutex_);
  locators_[channel] = std::move(metadata_locator);
}

std::optional<std::string> EventBackbone::metadata_locator(
    const std::string& channel) const {
  std::lock_guard lock(mutex_);
  auto it = locators_.find(channel);
  if (it == locators_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> EventBackbone::channels() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, queues] : subscribers_) {
    if (!queues.empty()) out.push_back(name);
  }
  for (const auto& [name, locator] : locators_) {
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t EventBackbone::subscriber_count(const std::string& channel) const {
  std::lock_guard lock(mutex_);
  auto it = subscribers_.find(channel);
  return it == subscribers_.end() ? 0 : it->second.size();
}

void EventBackbone::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
  for (auto& [name, queues] : subscribers_) {
    for (auto& q : queues) q->close();
    queues.clear();
  }
}

void EventBackbone::remove(const std::string& channel,
                           const MessageQueue* queue) {
  std::lock_guard lock(mutex_);
  auto it = subscribers_.find(channel);
  if (it == subscribers_.end()) return;
  auto& queues = it->second;
  queues.erase(std::remove_if(queues.begin(), queues.end(),
                              [queue](const std::shared_ptr<MessageQueue>& q) {
                                return q.get() == queue;
                              }),
               queues.end());
}

}  // namespace omf::transport
