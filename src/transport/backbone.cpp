#include "transport/backbone.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace omf::transport {

namespace {
struct BackboneMetrics {
  obs::Counter& published;
  obs::Counter& delivered;
  obs::Counter& shed;
  obs::Counter& overflow_disconnects;
  obs::Gauge& queue_depth;
  static const BackboneMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static BackboneMetrics m{
        reg.counter("transport.backbone.published"),
        reg.counter("transport.backbone.delivered"),
        reg.counter("transport.backbone.shed"),
        reg.counter("transport.backbone.overflow_disconnects"),
        reg.gauge("transport.backbone.queue_depth")};
    return m;
  }
};
}  // namespace

void EventBackbone::Subscription::unsubscribe() {
  if (backbone_ != nullptr && queue_ != nullptr) {
    queue_->close();
    backbone_->remove(channel_, queue_.get());
  }
  backbone_ = nullptr;
  queue_.reset();
}

EventBackbone::Subscription EventBackbone::subscribe(
    const std::string& channel) {
  std::unique_lock lock(mutex_);
  QueueOptions options = default_queue_options_;
  lock.unlock();
  return subscribe(channel, options);
}

EventBackbone::Subscription EventBackbone::subscribe(
    const std::string& channel, const QueueOptions& options) {
  auto queue = std::make_shared<MessageQueue>(options);
  {
    std::lock_guard lock(mutex_);
    if (closed_) {
      queue->close();
    } else {
      subscribers_[channel].push_back(queue);
    }
  }
  return Subscription(this, channel, std::move(queue));
}

void EventBackbone::set_queue_options(const QueueOptions& options) {
  std::lock_guard lock(mutex_);
  default_queue_options_ = options;
}

QueueOptions EventBackbone::queue_options() const {
  std::lock_guard lock(mutex_);
  return default_queue_options_;
}

std::size_t EventBackbone::publish(const std::string& channel,
                                   const Buffer& message) {
  // Snapshot the queue shared_ptrs under the lock; every push happens
  // outside it. One subscriber queue blocking (kBlock at capacity) or
  // contending therefore cannot serialize the rest of the fan-out, and a
  // concurrent unsubscribe stays safe (shared_ptr keeps the queue alive
  // until this publish is done with it).
  std::vector<std::shared_ptr<MessageQueue>> targets;
  {
    std::lock_guard lock(mutex_);
    auto it = subscribers_.find(channel);
    if (it == subscribers_.end()) return 0;
    targets = it->second;
  }
  const BackboneMetrics& metrics = BackboneMetrics::get();
  metrics.published.add();
  std::size_t delivered = 0;
  std::size_t deepest = 0;
  for (const auto& q : targets) {
    Buffer copy;
    copy.append(message.span());
    switch (q->offer(std::move(copy))) {
      case PushOutcome::kOk:
        ++delivered;
        break;
      case PushOutcome::kShed:
        ++delivered;
        metrics.shed.add();
        break;
      case PushOutcome::kDisconnected:
        metrics.overflow_disconnects.add();
        break;
      case PushOutcome::kClosed:
        break;  // subscriber already gone
    }
    deepest = std::max(deepest, q->size());
  }
  metrics.delivered.add(delivered);
  metrics.queue_depth.set(static_cast<std::int64_t>(deepest));
  return delivered;
}

void EventBackbone::announce(const std::string& channel,
                             std::string metadata_locator) {
  std::lock_guard lock(mutex_);
  locators_[channel] = std::move(metadata_locator);
}

std::optional<std::string> EventBackbone::metadata_locator(
    const std::string& channel) const {
  std::lock_guard lock(mutex_);
  auto it = locators_.find(channel);
  if (it == locators_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> EventBackbone::channels() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, queues] : subscribers_) {
    if (!queues.empty()) out.push_back(name);
  }
  for (const auto& [name, locator] : locators_) {
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t EventBackbone::subscriber_count(const std::string& channel) const {
  std::lock_guard lock(mutex_);
  auto it = subscribers_.find(channel);
  return it == subscribers_.end() ? 0 : it->second.size();
}

void EventBackbone::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
  for (auto& [name, queues] : subscribers_) {
    for (auto& q : queues) q->close();
    queues.clear();
  }
}

void EventBackbone::remove(const std::string& channel,
                           const MessageQueue* queue) {
  std::lock_guard lock(mutex_);
  auto it = subscribers_.find(channel);
  if (it == subscribers_.end()) return;
  auto& queues = it->second;
  queues.erase(std::remove_if(queues.begin(), queues.end(),
                              [queue](const std::shared_ptr<MessageQueue>& q) {
                                return q.get() == queue;
                              }),
               queues.end());
}

}  // namespace omf::transport
