// Networked event backbone: remote subscribers and publishers over TCP.
//
// Figure 1's "future data access points ... handheld devices which join the
// network when activated by their owners and leave the network when their
// work is done": processes on other machines attach to a backbone hosted
// elsewhere, subscribe to channels, and publish into them, all with the
// same Buffer-of-NDR-bytes currency as the in-process API.
//
// Protocol (on TcpConnection framing):
//   client first frame:   'S' + channel-name        subscribe; server then
//                                                   streams message frames
//                         'P'                       publisher session; the
//                                                   client then sends
//                                                   publish frames:
//                                                   u16 name-len + name +
//                                                   message bytes
//   server->subscriber:   raw message bytes, one frame per message
//
// Channel metadata announcements remain on the hosting process's backbone
// object; remote parties learn locators out of band (e.g. a known HTTP
// metadata server), exactly like the paper's deployment story.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "transport/backbone.hpp"
#include "transport/tcp.hpp"

namespace omf::transport {

/// Exposes an EventBackbone on a TCP port.
class RemoteBackboneServer {
public:
  /// `backbone` must outlive the server. Port 0 = ephemeral (see port()).
  explicit RemoteBackboneServer(EventBackbone& backbone,
                                std::uint16_t port = 0);
  ~RemoteBackboneServer();
  RemoteBackboneServer(const RemoteBackboneServer&) = delete;
  RemoteBackboneServer& operator=(const RemoteBackboneServer&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }

  void stop();

private:
  void accept_loop();
  void serve_subscriber(TcpConnection conn, const std::string& channel);
  void serve_publisher(TcpConnection conn);

  EventBackbone* backbone_;
  TcpListener listener_;
  std::atomic<bool> running_{true};
  std::thread acceptor_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

/// A remote subscription: blocking receive of messages from a channel on a
/// backbone hosted elsewhere.
class RemoteSubscription {
public:
  RemoteSubscription(std::uint16_t port, const std::string& channel);

  /// Blocks for the next message; nullopt when the server shuts down.
  std::optional<Buffer> receive() { return connection_.receive(); }

  void close() { connection_.close(); }

private:
  TcpConnection connection_;
};

/// A remote publisher session.
class RemotePublisher {
public:
  explicit RemotePublisher(std::uint16_t port);

  /// Publishes one message to a channel on the remote backbone.
  void publish(const std::string& channel, const Buffer& message);

  void close() { connection_.close(); }

private:
  TcpConnection connection_;
};

}  // namespace omf::transport
