// Networked event backbone: remote subscribers and publishers over TCP.
//
// Figure 1's "future data access points ... handheld devices which join the
// network when activated by their owners and leave the network when their
// work is done": processes on other machines attach to a backbone hosted
// elsewhere, subscribe to channels, and publish into them, all with the
// same Buffer-of-NDR-bytes currency as the in-process API.
//
// Protocol (on TcpConnection framing):
//   client first frame:   'S' + channel-name        subscribe; server then
//                                                   streams message frames
//                         'P'                       publisher session; the
//                                                   client then sends
//                                                   publish frames:
//                                                   u16 name-len + name +
//                                                   message bytes
//   server->subscriber:   raw message bytes, one frame per message
//
// Channel metadata announcements remain on the hosting process's backbone
// object; remote parties learn locators out of band (e.g. a known HTTP
// metadata server), exactly like the paper's deployment story.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "overload/admission.hpp"
#include "transport/backbone.hpp"
#include "transport/tcp.hpp"
#include "util/retry.hpp"

namespace omf::transport {

/// Exposes an EventBackbone on a TCP port.
///
/// Overload protection (all opt-in through Options, unlimited by default):
/// per-subscriber queues are bounded with an overflow policy so a stalled
/// consumer is shed rather than accumulated; per-peer admission quotas gate
/// new connections and publish frames; and when the process memory budget
/// is in brownout, new connections are shed outright. Subscriber drops
/// surface on /metrics as the aggregate
/// "transport.backbone.subscriber_dropped" counter plus a per-peer
/// breakdown in the attribution family (omf_attr_drops_total{peer=...}).
class RemoteBackboneServer {
public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral (see port())
    /// Queue bound/policy for each remote subscriber's fan-out queue.
    QueueOptions queue{};
    /// Per-peer connection caps and msgs/bytes-per-second quotas.
    overload::AdmissionLimits admission{};
    /// A subscriber socket that accepts no bytes for this long is dropped.
    std::chrono::milliseconds subscriber_send_timeout{10000};
    /// Shed brand-new connections while the memory budget is in brownout.
    bool shed_connections_when_degraded = true;
  };

  /// `backbone` must outlive the server. Port 0 = ephemeral (see port()).
  explicit RemoteBackboneServer(EventBackbone& backbone,
                                std::uint16_t port = 0);
  RemoteBackboneServer(EventBackbone& backbone, Options options);
  ~RemoteBackboneServer();
  RemoteBackboneServer(const RemoteBackboneServer&) = delete;
  RemoteBackboneServer& operator=(const RemoteBackboneServer&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Graceful shutdown: stops accepting, stops consuming publisher frames,
  /// and lets subscriber workers flush their queues until `deadline` has
  /// elapsed (whichever comes first), then tears everything down. stop()
  /// afterwards is a no-op; destruction calls stop().
  void drain(std::chrono::milliseconds deadline);

  void stop();

private:
  void accept_loop();
  void serve_subscriber(TcpConnection conn, const std::string& channel,
                        const std::string& peer);
  void serve_publisher(TcpConnection conn, const std::string& peer);
  void join_workers();

  EventBackbone* backbone_;
  Options options_;
  overload::AdmissionController admission_;
  TcpListener listener_;
  std::atomic<bool> running_{true};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> drain_deadline_ns_{0};
  std::atomic<std::size_t> subscriber_seq_{0};
  std::thread acceptor_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

/// A remote subscription: blocking receive of messages from a channel on a
/// backbone hosted elsewhere.
///
/// With ReconnectOptions.enabled, a dropped connection (reset, mid-frame
/// truncation, even an orderly close) triggers transparent
/// reconnect-and-resubscribe per the retry policy: the subscription
/// re-dials, resends its hello, and resumes receiving. Messages published
/// while disconnected are lost — the backbone is at-most-once by design —
/// but the subscription object survives the fault. receive() returns
/// nullopt only when reconnection attempts are exhausted against a server
/// that has gone away for good.
class RemoteSubscription {
public:
  struct ReconnectOptions {
    bool enabled = false;
    RetryPolicy retry;                        ///< attempts + backoff
    std::chrono::milliseconds recv_timeout{0};  ///< per-receive; 0 = none
  };

  RemoteSubscription(std::uint16_t port, const std::string& channel)
      : RemoteSubscription(port, channel, ReconnectOptions{}) {}
  RemoteSubscription(std::uint16_t port, const std::string& channel,
                     ReconnectOptions options);

  /// Blocks for the next message; nullopt when the server shuts down (and,
  /// if reconnect is enabled, could not be reached again).
  std::optional<Buffer> receive();

  /// Times the subscription successfully reconnected and resubscribed.
  std::size_t reconnects() const noexcept { return reconnects_; }

  void close() { connection_.close(); }

private:
  void dial();

  std::uint16_t port_;
  std::string channel_;
  ReconnectOptions options_;
  std::size_t reconnects_ = 0;
  TcpConnection connection_;
};

/// A remote publisher session.
class RemotePublisher {
public:
  explicit RemotePublisher(std::uint16_t port);

  /// Publishes one message to a channel on the remote backbone.
  void publish(const std::string& channel, const Buffer& message);

  void close() { connection_.close(); }

private:
  TcpConnection connection_;
};

}  // namespace omf::transport
