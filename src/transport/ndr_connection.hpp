// NDR message connection with in-band format negotiation.
//
// This is how PBIO connections actually behaved: the first time a sender
// uses a format on a connection, it transmits the format's metadata bundle
// in-band, immediately before the message; the receiver registers it and
// can decode everything that follows — no side-channel, no pre-agreement,
// no recompilation. Combined with NDR this makes a connection fully
// self-describing: any two endpoints sharing only this protocol can
// exchange arbitrary registered structures.
//
// Frame layout on top of TcpConnection's length framing:
//   1-byte tag: 'F' (format bundle) | 'M' (NDR message)
//             | 'T' (traced NDR message: 8-byte LE trace id, 8-byte LE
//                    parent span id, then message)
//   payload
//
// 'T' frames carry the sender's active trace context (obs/trace.hpp): the
// trace id plus the span id of the sender's transport span, so a
// discover→bind→marshal→unmarshal pipeline is correlated across processes
// *with causality* — the receiver's unmarshal span becomes a child of the
// sender's send span in the exported trace tree, not merely a sibling
// under the same id. Receivers adopt the pair as their thread's current
// trace context before returning the message. Senders emit 'T' only when
// a trace is active, so untraced traffic stays byte-compatible with peers
// that predate tracing.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pbio/format.hpp"
#include "transport/tcp.hpp"

namespace omf::transport {

/// One parsed connection frame. `payload` aliases the input bytes: the
/// format-bundle body for 'F', the NDR message for 'M'/'T'.
struct NdrFrame {
  char tag = 0;                 ///< 'F', 'M', or 'T'
  std::uint64_t trace_id = 0;   ///< sender's trace id ('T' frames only)
  std::uint64_t parent_span_id = 0;  ///< sender's span id ('T' frames only)
  std::span<const std::uint8_t> payload;
};

/// Splits a raw length-delimited frame into tag / trace id / payload.
/// Pure — no registry, socket, or thread-local trace state is touched, so
/// hostile frames can be parsed (and fuzzed) in isolation. Throws
/// TransportError on empty frames, unknown tags, and truncated 'T' frames.
NdrFrame parse_ndr_frame(std::span<const std::uint8_t> frame);

class NdrConnection {
public:
  /// Wraps a connected socket. Received format bundles register into
  /// `registry` (must outlive the connection).
  NdrConnection(TcpConnection connection, pbio::FormatRegistry& registry)
      : connection_(std::move(connection)), registry_(&registry) {}

  NdrConnection(NdrConnection&&) noexcept = default;
  NdrConnection& operator=(NdrConnection&&) noexcept = default;

  /// Sends an already-encoded wire message, preceding it with the format's
  /// metadata bundle the first time this connection sees the format id.
  void send(const pbio::Format& format, const Buffer& wire);

  /// Convenience: encode + send.
  void send_struct(const pbio::Format& format, const void* data);

  /// Next NDR message; format bundles are consumed (and registered)
  /// transparently. nullopt on orderly peer close. The deadline bounds the
  /// whole call, including any interleaved format-bundle frames.
  std::optional<Buffer> receive() {
    return receive(Deadline::from_timeout(connection_.timeouts().recv));
  }
  std::optional<Buffer> receive(const Deadline& deadline);

  /// Drains a burst: blocks for the first message exactly like receive(),
  /// then keeps appending messages to `out` as long as more frames are
  /// already waiting in the kernel buffer (TcpConnection::readable()) and
  /// fewer than `max_messages` have been taken — the receive loop never
  /// stalls waiting for a batch to fill. Format bundles are consumed and
  /// registered transparently, as in receive(). Returns the number of
  /// messages appended; 0 means orderly peer close. A burst of same-format
  /// messages gathered here is what Decoder::decode_batch /
  /// Gateway::convert_batch turn into one plan walk.
  std::size_t receive_batch(std::vector<Buffer>& out,
                            std::size_t max_messages) {
    return receive_batch(out, max_messages,
                         Deadline::from_timeout(connection_.timeouts().recv));
  }
  std::size_t receive_batch(std::vector<Buffer>& out, std::size_t max_messages,
                            const Deadline& deadline);

  /// Timeout / frame-size knobs, forwarded to the underlying connection.
  /// Format bundles and messages share the same bounds: a hostile bundle is
  /// rejected by header inspection exactly like a hostile message.
  void set_timeouts(const IoTimeouts& t) noexcept {
    connection_.set_timeouts(t);
  }
  void set_max_message_size(std::size_t bytes) noexcept {
    connection_.set_max_message_size(bytes);
  }

  /// Formats announced to the peer so far.
  std::size_t formats_sent() const noexcept { return announced_.size(); }

  /// Format bundles received (and registered) from the peer.
  std::size_t formats_received() const noexcept { return received_; }

  void close() { connection_.close(); }

private:
  TcpConnection connection_;
  pbio::FormatRegistry* registry_;
  std::set<pbio::FormatId> announced_;
  std::size_t received_ = 0;
  std::string peer_label_;  // lazily cached peer ip for attribution charges
};

}  // namespace omf::transport
