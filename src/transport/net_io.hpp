// Deadline-aware POSIX socket I/O primitives, shared by the TCP framing
// transport and the HTTP byte-stream code.
//
// All loops here are poll(2)-guarded over non-blocking descriptors: EINTR
// restarts the wait with the *same* absolute deadline, EAGAIN/EWOULDBLOCK
// re-polls, and sends use MSG_NOSIGNAL so a peer reset surfaces as an EPIPE
// TransportError instead of killing the process with SIGPIPE. A Deadline of
// Deadline::never() reproduces the historical fully-blocking behaviour.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/deadline.hpp"

namespace omf::transport::netio {

/// Sets or clears O_NONBLOCK. Throws TransportError on fcntl failure.
void set_nonblocking(int fd, bool on = true);

/// Waits until `fd` is ready for `events` (POLLIN / POLLOUT) or the deadline
/// expires. Throws TimeoutError on expiry, TransportError on poll failure.
/// `what` names the operation for error messages ("recv", "http read", ...).
void wait_ready(int fd, short events, const Deadline& deadline,
                const char* what);

/// Writes all `n` bytes (MSG_NOSIGNAL). Throws TimeoutError when the
/// deadline expires mid-write, TransportError on I/O failure.
void write_all(int fd, const void* data, std::size_t n,
               const Deadline& deadline, const char* what);

/// Reads up to `n` bytes once the descriptor is readable. Returns 0 on EOF.
/// Throws TimeoutError / TransportError.
std::size_t read_some(int fd, void* data, std::size_t n,
                      const Deadline& deadline, const char* what);

/// Reads exactly `n` bytes; returns false on clean EOF before the first
/// byte when `eof_ok` is set, throws TransportError on EOF mid-read.
bool read_exact(int fd, void* data, std::size_t n, bool eof_ok,
                const Deadline& deadline, const char* what);

/// Non-blocking connect to 127.0.0.1:port honoring the deadline. Returns a
/// connected non-blocking descriptor with TCP_NODELAY set. Throws
/// TimeoutError / TransportError.
int connect_loopback(std::uint16_t port, const Deadline& deadline);

/// Arms SO_LINGER with a zero timeout so close(fd) aborts the connection
/// with RST instead of an orderly FIN — fault injection's "connection
/// reset" and the fast-teardown path for poisoned connections.
void arm_reset_on_close(int fd);

}  // namespace omf::transport::netio
