#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "overload/budget.hpp"
#include "transport/net_io.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace omf::transport {

namespace {

constexpr std::uint32_t kMaxFrame = 1u << 30;  // 1 GiB hard sanity bound

struct TcpMetrics {
  obs::Counter& frames_tx;
  obs::Counter& frames_rx;
  obs::Counter& bytes_tx;
  obs::Counter& bytes_rx;
  obs::Counter& crc_rejects;
  obs::Counter& oversized_rejects;
  static const TcpMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static TcpMetrics m{reg.counter("transport.frames_tx"),
                        reg.counter("transport.frames_rx"),
                        reg.counter("transport.bytes_tx"),
                        reg.counter("transport.bytes_rx"),
                        reg.counter("transport.crc_rejects"),
                        reg.counter("transport.oversized_rejects")};
    return m;
  }
};

[[noreturn]] void fail_errno(const std::string& what) {
  // glibc strerror is thread-safe (per-thread buffer); strerror_r's two
  // incompatible signatures are not worth the portability thicket here.
  throw TransportError(what + ": " + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) {
  if (fd_ >= 0) netio::set_nonblocking(fd_);
}

TcpConnection::~TcpConnection() { close(); }

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    timeouts_ = other.timeouts_;
    max_message_size_ = other.max_message_size_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpConnection::readable() const noexcept {
  if (fd_ < 0) return false;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  // Zero timeout: a pure readiness probe. HUP/ERR also count as readable so
  // a closed peer is noticed by the next receive() instead of ending a
  // batch silently.
  return ::poll(&pfd, 1, 0) == 1 &&
         (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

void TcpConnection::send(const Buffer& message, const Deadline& deadline) {
  if (fd_ < 0) throw TransportError("send on closed connection");
  if (message.size() > max_message_size_ || message.size() > kMaxFrame) {
    throw TransportError("frame too large: " + std::to_string(message.size()) +
                         " bytes (limit " +
                         std::to_string(max_message_size_) + ")");
  }
  std::uint8_t header[4];
  store_le<std::uint32_t>(header, static_cast<std::uint32_t>(message.size()));
  std::uint8_t trailer[4];
  store_le<std::uint32_t>(trailer, crc32(message.data(), message.size()));
  netio::write_all(fd_, header, 4, deadline, "send");
  netio::write_all(fd_, message.data(), message.size(), deadline, "send");
  netio::write_all(fd_, trailer, 4, deadline, "send");
  const TcpMetrics& metrics = TcpMetrics::get();
  metrics.frames_tx.add();
  metrics.bytes_tx.add(message.size() + 8);  // payload + length + CRC framing
}

std::optional<Buffer> TcpConnection::receive(const Deadline& deadline) {
  if (fd_ < 0) throw TransportError("receive on closed connection");
  std::uint8_t header[4];
  if (!netio::read_exact(fd_, header, 4, /*eof_ok=*/true, deadline, "recv")) {
    return std::nullopt;
  }
  std::uint32_t len = load_le<std::uint32_t>(header);
  const TcpMetrics& metrics = TcpMetrics::get();
  if (len > max_message_size_ || len > kMaxFrame) {
    // Reject by header inspection — nothing has been allocated yet, so a
    // forged length cannot cost more than these 4 bytes.
    metrics.oversized_rejects.add();
    throw TransportError("oversized frame: header claims " +
                         std::to_string(len) + " bytes (limit " +
                         std::to_string(max_message_size_) + ")");
  }
  // The frame is well-formed and within the per-frame bound; the staging
  // buffer still has to fit the *process* memory budget. The charge is
  // transient (released once the frame is handed to the caller) but keeps
  // many concurrent preallocations from quietly blowing past the budget.
  overload::ScopedCharge charge(len);
  if (!charge.ok()) {
    static obs::Counter& budget_rejects =
        obs::MetricsRegistry::instance().counter("omf.budget.frame_rejects");
    budget_rejects.add();
    throw TransportError("frame preallocation of " + std::to_string(len) +
                         " bytes exceeds the process memory budget");
  }
  std::vector<std::uint8_t> payload(len);
  netio::read_exact(fd_, payload.data(), len, /*eof_ok=*/false, deadline,
                    "recv");
  std::uint8_t trailer[4];
  netio::read_exact(fd_, trailer, 4, /*eof_ok=*/false, deadline, "recv");
  std::uint32_t want = load_le<std::uint32_t>(trailer);
  std::uint32_t got = crc32(payload.data(), payload.size());
  if (want != got) {
    metrics.crc_rejects.add();
    throw TransportError("frame checksum mismatch (corrupted in transit)");
  }
  metrics.frames_rx.add();
  metrics.bytes_rx.add(static_cast<std::uint64_t>(len) + 8);
  return Buffer(std::move(payload));
}

std::string TcpConnection::peer_ip() const {
  if (fd_ < 0) return {};
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return {};
  }
  char buf[INET_ADDRSTRLEN];
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) {
    return {};
  }
  return buf;
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail_errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_errno("bind");
  }
  if (::listen(fd_, 64) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_errno("listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConnection TcpListener::accept(const Deadline& deadline) {
  if (fd_ < 0) return TcpConnection();
  if (!deadline.is_never()) {
    try {
      netio::wait_ready(fd_, POLLIN, deadline, "accept");
    } catch (const TimeoutError&) {
      throw;
    } catch (const TransportError&) {
      return TcpConnection();  // listener closed under us
    }
  }
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    // Closed listener (EBADF/EINVAL) is a normal shutdown signal.
    return TcpConnection();
  }
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(client);
}

TcpConnection tcp_connect(std::uint16_t port, const Deadline& deadline) {
  return TcpConnection(netio::connect_loopback(port, deadline));
}

}  // namespace omf::transport
