#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace omf::transport {

namespace {

constexpr std::uint32_t kMaxFrame = 1u << 30;  // 1 GiB sanity bound

[[noreturn]] void fail_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail_errno("write");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes; returns false on clean EOF at a frame boundary
/// (start == true) and throws on mid-frame EOF or errors.
bool read_all(int fd, void* data, std::size_t n, bool at_frame_start) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      fail_errno("read");
    }
    if (r == 0) {
      if (got == 0 && at_frame_start) return false;
      throw TransportError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

TcpConnection::~TcpConnection() { close(); }

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpConnection::send(const Buffer& message) {
  if (fd_ < 0) throw TransportError("send on closed connection");
  if (message.size() > kMaxFrame) throw TransportError("frame too large");
  std::uint8_t header[4];
  store_le<std::uint32_t>(header, static_cast<std::uint32_t>(message.size()));
  write_all(fd_, header, 4);
  write_all(fd_, message.data(), message.size());
}

std::optional<Buffer> TcpConnection::receive() {
  if (fd_ < 0) throw TransportError("receive on closed connection");
  std::uint8_t header[4];
  if (!read_all(fd_, header, 4, /*at_frame_start=*/true)) {
    return std::nullopt;
  }
  std::uint32_t len = load_le<std::uint32_t>(header);
  if (len > kMaxFrame) throw TransportError("oversized frame");
  std::vector<std::uint8_t> payload(len);
  read_all(fd_, payload.data(), len, /*at_frame_start=*/false);
  return Buffer(std::move(payload));
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail_errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_errno("bind");
  }
  if (::listen(fd_, 64) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_errno("listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConnection TcpListener::accept() {
  if (fd_ < 0) return TcpConnection();
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    // Closed listener (EBADF/EINVAL) is a normal shutdown signal.
    return TcpConnection();
  }
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(client);
}

TcpConnection tcp_connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("connect");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

}  // namespace omf::transport
