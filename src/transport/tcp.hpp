// Minimal TCP framing transport over POSIX sockets.
//
// Frames are a 4-byte little-endian payload length, the payload, and a
// 4-byte little-endian CRC-32 of the payload. NDR messages already carry
// their own self-describing header; the frame length exists only so stream
// boundaries survive TCP's byte-stream semantics, and the CRC exists so a
// corrupted frame is rejected at the framing layer instead of reaching a
// decoder (TCP's own checksum is too weak to rely on against the faults the
// chaos suite injects). Loopback-only by intent: this reproduction's
// "network" is one machine.
//
// Fault tolerance: every blocking call takes an optional Deadline (or uses
// the connection's configured IoTimeouts); expiry throws TimeoutError.
// Sockets are non-blocking with poll(2)-guarded loops, sends use
// MSG_NOSIGNAL (a peer reset is a clean TransportError, not SIGPIPE), and
// frames larger than max_message_size are rejected *before* any allocation
// so a hostile peer cannot force a multi-GB buffer with a forged header.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "util/buffer.hpp"
#include "util/deadline.hpp"

namespace omf::transport {

/// Per-operation timeout knobs; zero means "no timeout" (block forever).
struct IoTimeouts {
  std::chrono::milliseconds connect{0};
  std::chrono::milliseconds send{0};
  std::chrono::milliseconds recv{0};
};

/// Default per-connection frame-size bound (64 MiB). Far above any metadata
/// bundle or event this system exchanges, far below an allocation that
/// could hurt the process.
inline constexpr std::size_t kDefaultMaxMessageSize = 64u << 20;

/// A connected, message-framed TCP endpoint. Move-only RAII over the fd.
class TcpConnection {
public:
  TcpConnection() = default;
  /// Takes ownership of a connected stream socket (made non-blocking).
  explicit TcpConnection(int fd);
  ~TcpConnection();
  TcpConnection(TcpConnection&& other) noexcept
      : fd_(other.fd_),
        timeouts_(other.timeouts_),
        max_message_size_(other.max_message_size_) {
    other.fd_ = -1;
  }
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }

  /// Configured timeouts applied when the explicit-deadline overloads are
  /// not used. Zero fields block forever (the default).
  void set_timeouts(const IoTimeouts& t) noexcept { timeouts_ = t; }
  const IoTimeouts& timeouts() const noexcept { return timeouts_; }

  /// Largest acceptable frame payload, enforced on both send and receive
  /// (receive rejects by header inspection, before allocating).
  void set_max_message_size(std::size_t bytes) noexcept {
    max_message_size_ = bytes;
  }
  std::size_t max_message_size() const noexcept { return max_message_size_; }

  /// Sends one framed message. Throws TransportError on I/O failure,
  /// TimeoutError past the deadline.
  void send(const Buffer& message) {
    send(message, Deadline::from_timeout(timeouts_.send));
  }
  void send(const Buffer& message, const Deadline& deadline);

  /// Receives one framed message; nullopt on orderly peer close. Throws
  /// TransportError on I/O failure, corrupt or oversized frames;
  /// TimeoutError past the deadline.
  std::optional<Buffer> receive() {
    return receive(Deadline::from_timeout(timeouts_.recv));
  }
  std::optional<Buffer> receive(const Deadline& deadline);

  /// True when bytes are already waiting in the kernel receive buffer, i.e.
  /// a receive() can start without blocking (poll with zero timeout; a
  /// partially arrived frame may still wait briefly for its tail, bounded
  /// by the deadline as usual). False on a closed connection. Lets receive
  /// loops drain a burst into one batch without ever stalling for more.
  bool readable() const noexcept;

  void close();

  /// Underlying descriptor, still owned by the connection (-1 when closed).
  /// For diagnostics and the fault-injection harness only.
  int native_handle() const noexcept { return fd_; }

  /// Remote peer's IPv4 address ("127.0.0.1" in this loopback-only
  /// reproduction); empty on a closed connection. The admission layer keys
  /// per-peer quotas on this.
  std::string peer_ip() const;

  /// Relinquishes ownership of the descriptor to the caller (for byte-
  /// stream protocols like HTTP that cannot use message framing). The fd
  /// is non-blocking. Returns -1 if the connection is not open.
  int release_fd() noexcept {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

private:
  int fd_ = -1;
  IoTimeouts timeouts_{};
  std::size_t max_message_size_ = kDefaultMaxMessageSize;
};

/// Listening socket bound to 127.0.0.1. Move-only RAII.
class TcpListener {
public:
  /// Binds and listens; port 0 picks an ephemeral port (see port()).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&&) = delete;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Blocks for the next inbound connection. Returns an invalid connection
  /// if the listener has been closed from another thread. The deadline
  /// overload throws TimeoutError when nothing arrives in time.
  TcpConnection accept() { return accept(Deadline::never()); }
  TcpConnection accept(const Deadline& deadline);

  void close();

private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port. Throws TransportError on failure,
/// TimeoutError when the connect does not complete by the deadline.
TcpConnection tcp_connect(std::uint16_t port,
                          const Deadline& deadline = Deadline::never());

}  // namespace omf::transport
