// Minimal TCP framing transport over POSIX sockets.
//
// Frames are a 4-byte little-endian length followed by the payload. NDR
// messages already carry their own self-describing header; the frame length
// exists only so stream boundaries survive TCP's byte-stream semantics.
// Loopback-only by intent: this reproduction's "network" is one machine.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/buffer.hpp"

namespace omf::transport {

/// A connected, message-framed TCP endpoint. Move-only RAII over the fd.
class TcpConnection {
public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();
  TcpConnection(TcpConnection&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }

  /// Sends one framed message. Throws TransportError on I/O failure.
  void send(const Buffer& message);

  /// Receives one framed message; nullopt on orderly peer close.
  /// Throws TransportError on I/O failure or oversized frames.
  std::optional<Buffer> receive();

  void close();

  /// Relinquishes ownership of the descriptor to the caller (for byte-
  /// stream protocols like HTTP that cannot use message framing). Returns
  /// -1 if the connection is not open.
  int release_fd() noexcept {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Move-only RAII.
class TcpListener {
public:
  /// Binds and listens; port 0 picks an ephemeral port (see port()).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&&) = delete;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Blocks for the next inbound connection. Returns an invalid connection
  /// if the listener has been closed from another thread.
  TcpConnection accept();

  void close();

private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port. Throws TransportError on failure.
TcpConnection tcp_connect(std::uint16_t port);

}  // namespace omf::transport
