#include "transport/ndr_connection.hpp"

#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/metaserde.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace omf::transport {

namespace {

Buffer tagged(char tag, std::span<const std::uint8_t> payload) {
  Buffer frame(payload.size() + 1);
  frame.append(&tag, 1);
  frame.append(payload);
  return frame;
}

/// 'T' frame: tag + 8-byte LE trace id + 8-byte LE parent span id + NDR
/// message. The trace context travels at the framing layer, not inside
/// WireHeader, so the 16-byte wire header (and every golden vector that
/// pins it) is untouched.
Buffer traced(std::uint64_t trace_id, std::uint64_t parent_span_id,
              std::span<const std::uint8_t> payload) {
  Buffer frame(payload.size() + 17);
  char tag = 'T';
  frame.append(&tag, 1);
  std::uint8_t id[8];
  store_le<std::uint64_t>(id, trace_id);
  frame.append(id, 8);
  store_le<std::uint64_t>(id, parent_span_id);
  frame.append(id, 8);
  frame.append(payload);
  return frame;
}

struct NdrMetrics {
  obs::Counter& messages_tx;
  obs::Counter& messages_rx;
  obs::Counter& formats_tx;
  obs::Counter& formats_rx;
  obs::Counter& traced_frames;
  static const NdrMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static NdrMetrics m{reg.counter("transport.ndr.messages_tx"),
                        reg.counter("transport.ndr.messages_rx"),
                        reg.counter("transport.ndr.formats_tx"),
                        reg.counter("transport.ndr.formats_rx"),
                        reg.counter("transport.ndr.traced_frames")};
    return m;
  }
};

}  // namespace

NdrFrame parse_ndr_frame(std::span<const std::uint8_t> frame) {
  if (frame.empty()) {
    throw TransportError("empty NDR connection frame");
  }
  NdrFrame out;
  out.tag = static_cast<char>(frame[0]);
  out.payload = frame.subspan(1);
  if (out.tag == 'T') {
    if (out.payload.size() < 16) {
      throw TransportError("truncated traced NDR frame");
    }
    out.trace_id = load_le<std::uint64_t>(out.payload.data());
    out.parent_span_id = load_le<std::uint64_t>(out.payload.data() + 8);
    out.payload = out.payload.subspan(16);
  } else if (out.tag != 'F' && out.tag != 'M') {
    throw TransportError("unknown NDR connection frame tag");
  }
  return out;
}

void NdrConnection::send(const pbio::Format& format, const Buffer& wire) {
  const NdrMetrics& metrics = NdrMetrics::get();
  if (announced_.insert(format.id()).second) {
    Buffer bundle = pbio::serialize_format_bundle(format);
    connection_.send(tagged('F', bundle.span()));
    metrics.formats_tx.add();
  }
  std::uint64_t trace = obs::current_trace_id();
  if (trace != 0) {
    // The send gets its own transport span, and the frame carries that
    // span's id — the receiver's first span parents under the send, so the
    // exported tree reads sender.marshal -> sender.send -> receiver.
    obs::ScopedSpan send_span(obs::Phase::kTransport, "ndr.send");
    std::uint64_t parent =
        send_span.active() ? send_span.span_id() : obs::current_span_id();
    connection_.send(traced(trace, parent, wire.span()));
    metrics.traced_frames.add();
  } else {
    connection_.send(tagged('M', wire.span()));
  }
  metrics.messages_tx.add();
}

void NdrConnection::send_struct(const pbio::Format& format, const void* data) {
  send(format, pbio::encode(format, data));
}

std::optional<Buffer> NdrConnection::receive(const Deadline& deadline) {
  const NdrMetrics& metrics = NdrMetrics::get();
  for (;;) {
    std::optional<Buffer> frame = connection_.receive(deadline);
    if (!frame) return std::nullopt;
    NdrFrame parsed = parse_ndr_frame(frame->span());
    if (parsed.tag == 'F') {
      pbio::deserialize_format_bundle(*registry_, parsed.payload);
      ++received_;
      metrics.formats_rx.add();
      continue;
    }
    if (parsed.tag == 'T') {
      // Traced message: adopt the sender's (trace id, span id) so spans
      // recorded while processing this message become children of the
      // sender's send span in the trace tree.
      obs::set_current_trace(parsed.trace_id, parsed.parent_span_id);
      metrics.traced_frames.add();
    }
    Buffer message(parsed.payload.size());
    message.append(parsed.payload);
    metrics.messages_rx.add();
#ifndef OMF_NO_METRICS
    // Attribute inbound traffic to {format, peer}. The wire header is
    // peekable without decoding; the peer label is cached once per
    // connection.
    if (message.size() >= 16) {
      if (peer_label_.empty()) peer_label_ = connection_.peer_ip();
      obs::Attribution::instance().charge(
          pbio::Decoder::peek_format_id(message.span()), peer_label_,
          obs::AttrDelta{.messages = 1, .bytes = message.size()});
    }
#endif
    return message;
  }
}

std::size_t NdrConnection::receive_batch(std::vector<Buffer>& out,
                                         std::size_t max_messages,
                                         const Deadline& deadline) {
  if (max_messages == 0) return 0;
  std::optional<Buffer> first = receive(deadline);
  if (!first) return 0;
  out.push_back(std::move(*first));
  std::size_t n = 1;
  while (n < max_messages && connection_.readable()) {
    std::optional<Buffer> next = receive(deadline);
    if (!next) break;  // peer closed mid-burst; deliver what arrived
    out.push_back(std::move(*next));
    ++n;
  }
  return n;
}

}  // namespace omf::transport
