#include "transport/ndr_connection.hpp"

#include "pbio/encode.hpp"
#include "pbio/metaserde.hpp"
#include "util/error.hpp"

namespace omf::transport {

namespace {

Buffer tagged(char tag, std::span<const std::uint8_t> payload) {
  Buffer frame(payload.size() + 1);
  frame.append(&tag, 1);
  frame.append(payload);
  return frame;
}

}  // namespace

void NdrConnection::send(const pbio::Format& format, const Buffer& wire) {
  if (announced_.insert(format.id()).second) {
    Buffer bundle = pbio::serialize_format_bundle(format);
    connection_.send(tagged('F', bundle.span()));
  }
  connection_.send(tagged('M', wire.span()));
}

void NdrConnection::send_struct(const pbio::Format& format, const void* data) {
  send(format, pbio::encode(format, data));
}

std::optional<Buffer> NdrConnection::receive(const Deadline& deadline) {
  for (;;) {
    std::optional<Buffer> frame = connection_.receive(deadline);
    if (!frame) return std::nullopt;
    if (frame->empty()) {
      throw TransportError("empty NDR connection frame");
    }
    char tag = static_cast<char>(*frame->data());
    std::span<const std::uint8_t> payload = frame->span().subspan(1);
    if (tag == 'F') {
      pbio::deserialize_format_bundle(*registry_, payload);
      ++received_;
      continue;
    }
    if (tag != 'M') {
      throw TransportError("unknown NDR connection frame tag");
    }
    Buffer message(payload.size());
    message.append(payload);
    return message;
  }
}

}  // namespace omf::transport
