#include "http/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overload/health.hpp"
#include "transport/net_io.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace omf::http {

namespace {

// The framing TcpConnection is message-oriented; HTTP is a byte stream, so
// the client/server here use raw fds via the shared deadline-aware netio
// helpers (poll-guarded non-blocking I/O, EINTR/EAGAIN handling,
// MSG_NOSIGNAL).

namespace netio = transport::netio;

void write_all(int fd, std::string_view data, const Deadline& deadline) {
  netio::write_all(fd, data.data(), data.size(), deadline, "http write");
}

/// Reads until EOF (HTTP/1.0 close-delimited bodies) with a size cap.
std::string read_to_eof(int fd, const Deadline& deadline,
                        std::size_t cap = 64u << 20) {
  std::string out;
  char buf[8192];
  for (;;) {
    std::size_t r = netio::read_some(fd, buf, sizeof(buf), deadline,
                                     "http read");
    if (r == 0) break;
    out.append(buf, r);
    if (out.size() > cap) throw TransportError("http response too large");
  }
  return out;
}

/// Reads from fd until the header terminator, returning everything read so
/// far (possibly including the start of the body).
std::string read_until_headers_end(int fd, const Deadline& deadline,
                                   std::size_t cap = 1u << 20) {
  std::string out;
  char buf[4096];
  while (out.find("\r\n\r\n") == std::string::npos) {
    std::size_t r = netio::read_some(fd, buf, sizeof(buf), deadline,
                                     "http read");
    if (r == 0) break;
    out.append(buf, r);
    if (out.size() > cap) throw TransportError("http headers too large");
  }
  return out;
}

/// "<16-hex trace>-<16-hex span>", the X-Omf-Trace wire form.
std::string trace_header_value(std::uint64_t trace_id, std::uint64_t span_id) {
  char buf[34];
  std::snprintf(buf, sizeof(buf), "%016llx-%016llx",
                static_cast<unsigned long long>(trace_id),
                static_cast<unsigned long long>(span_id));
  return buf;
}

/// Parses the X-Omf-Trace wire form; false on anything malformed.
bool parse_trace_header(std::string_view value, std::uint64_t& trace_id,
                        std::uint64_t& span_id) {
  if (value.size() != 33 || value[16] != '-') return false;
  auto hex16 = [](std::string_view s, std::uint64_t& out) {
    out = 0;
    for (char c : s) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else return false;
      out = (out << 4) | static_cast<std::uint64_t>(digit);
    }
    return true;
  };
  return hex16(value.substr(0, 16), trace_id) &&
         hex16(value.substr(17), span_id);
}

}  // namespace

std::string Response::etag() const {
  auto it = headers.find("etag");
  return it == headers.end() ? std::string() : it->second;
}

std::optional<std::chrono::seconds> Response::retry_after() const {
  auto it = headers.find("retry-after");
  if (it == headers.end()) return std::nullopt;
  auto secs = parse_uint(trim(it->second));
  if (!secs) return std::nullopt;  // HTTP-date form: not supported
  return std::chrono::seconds(*secs);
}

Response::CacheControl Response::cache_control() const {
  CacheControl out;
  auto it = headers.find("cache-control");
  if (it == headers.end()) return out;
  for (std::string_view directive : split(it->second, ',')) {
    directive = trim(directive);
    std::size_t eq = directive.find('=');
    std::string_view name =
        eq == std::string_view::npos ? directive : directive.substr(0, eq);
    std::optional<std::uint64_t> value;
    if (eq != std::string_view::npos) {
      value = parse_uint(trim(directive.substr(eq + 1)));
    }
    if (name == "max-age" && value) {
      out.present = true;
      out.max_age = std::chrono::seconds(*value);
    } else if (name == "stale-while-revalidate" && value) {
      out.stale_while_revalidate = std::chrono::seconds(*value);
    }
  }
  return out;
}

std::string strong_etag(std::string_view body) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::uint64_t hash = fnv1a(body);
  std::string out(18, '"');
  for (int i = 16; i >= 1; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

Url Url::parse(const std::string& url) {
  Url out;
  std::string_view rest = url;
  if (!starts_with(rest, "http://")) {
    throw Error("unsupported URL scheme in '" + url + "'");
  }
  rest.remove_prefix(7);
  std::size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  out.path = slash == std::string_view::npos ? "/"
                                             : std::string(rest.substr(slash));
  std::size_t colon = authority.find(':');
  if (colon == std::string_view::npos) {
    out.host = std::string(authority);
    out.port = 80;
  } else {
    out.host = std::string(authority.substr(0, colon));
    auto port = parse_uint(authority.substr(colon + 1));
    if (!port || *port == 0 || *port > 65535) {
      throw Error("bad port in URL '" + url + "'");
    }
    out.port = static_cast<std::uint16_t>(*port);
  }
  if (out.host.empty()) throw Error("empty host in URL '" + url + "'");
  return out;
}

Response get(const Url& url, const Deadline& deadline) {
  return get(url, HeaderList{}, deadline);
}

Response get(const Url& url, const HeaderList& headers,
             const Deadline& deadline) {
  int fd = netio::connect_loopback(url.port, deadline);
  Response out;
  try {
    std::ostringstream req;
    req << "GET " << url.path << " HTTP/1.0\r\n"
        << "Host: " << url.host << "\r\n"
        << "User-Agent: omf-xml2wire/1.0\r\n";
    if (std::uint64_t trace = obs::current_trace_id(); trace != 0) {
      // Propagate the caller's trace context so the origin's serve span
      // joins this trace tree (obs/trace.hpp).
      req << "X-Omf-Trace: "
          << trace_header_value(trace, obs::current_span_id()) << "\r\n";
    }
    for (const auto& [name, value] : headers) {
      req << name << ": " << value << "\r\n";
    }
    req << "Connection: close\r\n\r\n";
    write_all(fd, req.str(), deadline);
    ::shutdown(fd, SHUT_WR);
    std::string raw = read_to_eof(fd, deadline);
    ::close(fd);
    fd = -1;
    out.wire_bytes = raw.size();

    std::size_t headers_end = raw.find("\r\n\r\n");
    if (headers_end == std::string::npos) {
      throw TransportError("malformed HTTP response (no header terminator)");
    }
    std::string_view head(raw.data(), headers_end);
    out.body = raw.substr(headers_end + 4);

    auto lines = split(head, '\n');
    if (lines.empty()) throw TransportError("empty HTTP response");
    // Status line: HTTP/1.x NNN reason
    std::string_view status_line = trim(lines[0]);
    auto parts = split(status_line, ' ');
    if (parts.size() < 2 || !starts_with(parts[0], "HTTP/")) {
      throw TransportError("malformed HTTP status line");
    }
    auto code = parse_uint(parts[1]);
    if (!code) throw TransportError("malformed HTTP status code");
    out.status = static_cast<int>(*code);
    for (std::size_t i = 2; i < parts.size(); ++i) {
      if (!out.reason.empty()) out.reason += ' ';
      out.reason += std::string(parts[i]);
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
      std::string_view line = trim(lines[i]);
      std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) continue;
      out.headers[to_lower(trim(line.substr(0, colon)))] =
          std::string(trim(line.substr(colon + 1)));
    }
  } catch (...) {
    if (fd >= 0) ::close(fd);
    throw;
  }
  return out;
}

Response get(const std::string& url, const Deadline& deadline) {
  return get(Url::parse(url), deadline);
}

Response get_with_retry(const Url& url, const HeaderList& headers,
                        const RetryPolicy& policy, const Deadline& deadline,
                        const RetrySleeper& sleeper) {
  int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    Response resp;
    try {
      resp = get(url, headers, deadline);
    } catch (const TransportError&) {
      if (attempt >= attempts || deadline.expired()) throw;
      obs::MetricsRegistry::instance().counter("fault.retry.retries").add();
      sleeper(std::min(policy.backoff(attempt),
                       std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline.remaining())));
      continue;
    }
    if ((resp.status == 429 || resp.status == 503) && attempt < attempts) {
      // The server told us when to come back; believe it over the backoff
      // schedule, but never wait out a Retry-After the deadline cannot
      // absorb — the throttled response goes back to the caller instead.
      std::chrono::milliseconds wait = policy.backoff(attempt);
      if (auto ra = resp.retry_after()) {
        wait = std::chrono::duration_cast<std::chrono::milliseconds>(*ra);
        obs::MetricsRegistry::instance()
            .counter("http.client.retry_after_waits")
            .add();
      }
      if (!deadline.is_never() && wait >= deadline.remaining()) return resp;
      sleeper(wait);
      continue;
    }
    return resp;
  }
}

Server::Server(std::uint16_t port)
    : listener_(port), thread_([this] { serve(); }) {
  // Honor OMF_FLIGHT_RECORDER for serving processes too: the black box
  // should be rolling before the first request, not after the first
  // anomaly.
  obs::FlightRecorder::installed();
}

Server::~Server() { stop(); }

void Server::stop() {
  // serve() polls accept with a short deadline and re-checks running_, so
  // it exits on its own; closing the listener only after the join keeps
  // all fd accesses on one thread.
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void Server::put_document(const std::string& path, std::string body,
                          std::string content_type) {
  std::lock_guard lock(mutex_);
  documents_[path] = {std::move(body), std::move(content_type)};
}

void Server::remove_document(const std::string& path) {
  std::lock_guard lock(mutex_);
  documents_.erase(path);
}

void Server::set_handler(Handler handler) {
  std::lock_guard lock(mutex_);
  handler_ = std::move(handler);
}

void Server::set_responder(Responder responder) {
  std::lock_guard lock(mutex_);
  responder_ = std::move(responder);
}

void Server::set_cache_policy(const CachePolicy& policy) {
  std::lock_guard lock(mutex_);
  cache_policy_ = policy;
}

std::string Server::url_for(const std::string& path) const {
  return "http://127.0.0.1:" + std::to_string(port()) + path;
}

void Server::serve() {
  while (running_.load()) {
    transport::TcpConnection conn;
    try {
      conn = listener_.accept(Deadline::after(std::chrono::milliseconds(50)));
    } catch (const TimeoutError&) {
      continue;  // periodic running_ re-check; stop() relies on this
    } catch (const TransportError&) {
      break;
    }
    if (!conn.valid()) break;
    try {
      handle(std::move(conn));
    } catch (const Error& e) {
      OMF_LOG_WARN("http", "request failed: ", e.what());
    }
    // A traced request adopts the caller's context for its serve spans;
    // drop it so the next request on this thread starts clean.
    obs::set_current_trace_id(0);
  }
}

// TcpConnection does not expose its fd; the server reads via a tiny
// adapter: we re-implement the request read on the raw connection by
// "stealing" it through send/receive would not work for byte streams, so
// Server::handle uses the connection's underlying descriptor.
// TcpConnection intentionally stays message-framed; here we only need the
// request line + headers, which fit in one read in practice, but we loop
// to be correct.
void Server::handle(transport::TcpConnection conn) {
  // We need raw byte-stream I/O; TcpConnection frames messages. Extract the
  // descriptor by releasing it from the connection (peer identity first —
  // the admission layer keys quotas on it).
  const std::string peer = conn.peer_ip();
  int fd = conn.release_fd();
  if (fd < 0) return;
  requests_.fetch_add(1);
  static obs::Counter& request_metric =
      obs::MetricsRegistry::instance().counter("http.server.requests");
  request_metric.add();
  Deadline deadline = Deadline::from_timeout(
      std::chrono::milliseconds(request_timeout_ms_.load()));
  try {
    std::string raw = read_until_headers_end(fd, deadline);
    // Adopt any X-Omf-Trace context before doing work on the request's
    // behalf, so spans recorded while serving parent under the caller's
    // request span. serve() clears the thread's context after handle.
    if (std::size_t pos = to_lower(raw).find("x-omf-trace:");
        pos != std::string::npos) {
      std::size_t value_start = pos + 12;
      std::size_t line_end = raw.find("\r\n", value_start);
      std::uint64_t trace_id = 0, span_id = 0;
      if (line_end != std::string::npos &&
          parse_trace_header(
              trim(std::string_view(raw).substr(value_start,
                                                line_end - value_start)),
              trace_id, span_id)) {
        obs::set_current_trace(trace_id, span_id);
        static obs::Counter& traced = obs::MetricsRegistry::instance().counter(
            "http.server.traced_requests");
        traced.add();
      }
    }
    std::size_t line_end = raw.find("\r\n");
    std::string_view request_line =
        line_end == std::string::npos
            ? std::string_view(raw)
            : std::string_view(raw.data(), line_end);
    auto parts = split(trim(request_line), ' ');

    Request request;
    if (parts.size() >= 2) request.path = std::string(parts[1]);
    if (line_end != std::string::npos) {
      std::size_t head_end = raw.find("\r\n\r\n");
      std::string_view head(raw.data() + line_end,
                            (head_end == std::string::npos ? raw.size()
                                                           : head_end) -
                                line_end);
      for (std::string_view line : split(head, '\n')) {
        line = trim(line);
        std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) continue;
        request.headers[to_lower(trim(line.substr(0, colon)))] =
            std::string(trim(line.substr(colon + 1)));
      }
    }

    std::string status = "400 Bad Request";
    std::string body = "bad request";
    std::string content_type = "text/plain";
    std::map<std::string, std::string> extra_headers;
    bool suppress_body = false;  // 304: headers only, never a body

    CachePolicy cache_policy;
    Responder responder;
    {
      std::lock_guard lock(mutex_);
      cache_policy = cache_policy_;
      responder = responder_;
    }

    std::optional<Response> canned;
    overload::Admission adm = admission_.admit_message(peer, raw.size());
    if (!adm) {
      static obs::Counter& throttled =
          obs::MetricsRegistry::instance().counter("http.server.throttled");
      throttled.add();
      status = "429 Too Many Requests";
      body = std::string("[") + adm.code + "] " + adm.detail + "\n";
      // Quota windows refill every second; tell well-behaved clients when
      // to come back instead of letting them guess a backoff.
      extra_headers["Retry-After"] = "1";
    } else if (parts.size() >= 2 && parts[0] == "GET" && responder &&
               (canned = responder(request))) {
      status = std::to_string(canned->status) + " " +
               (canned->reason.empty() ? "Canned" : canned->reason);
      body = std::move(canned->body);
      for (const auto& [name, value] : canned->headers) {
        if (to_lower(name) == "content-type") {
          content_type = value;
        } else {
          extra_headers[name] = value;
        }
      }
    } else if (parts.size() >= 2 && parts[0] == "GET") {
      std::string path(parts[1]);
      std::string bare = path.substr(0, path.find('?'));
      std::optional<std::string> doc;
      std::string doc_type;
      {
        std::lock_guard lock(mutex_);
        if (handler_) {
          doc = handler_(path);
          doc_type = "text/xml";
        }
        if (!doc) {
          // Strip any query string for the static map.
          auto it = documents_.find(bare);
          if (it != documents_.end()) {
            doc = it->second.first;
            doc_type = it->second.second;
          }
        }
      }
      if (!doc && metrics_endpoint_.load() && bare == "/metrics") {
        doc = obs::render_prometheus();
        doc_type = "text/plain; version=0.0.4";
      }
      if (!doc && traces_endpoint_.load() && bare == "/debug/traces") {
        // Retained trace trees, one JSON object per line (tail-sampled:
        // slow/errored/marked traces survive ring eviction).
        std::ostringstream trees;
        obs::Tracer::instance().export_trace_trees(trees);
        doc = trees.str();
        doc_type = "application/x-ndjson";
      }
      if (!doc && health_endpoint_.load() && bare == "/healthz") {
        // Readiness probe: anything other than "ok" answers 503 so load
        // balancers stop routing here, while the body names the state.
        overload::Health h = overload::HealthMonitor::instance().state();
        status = h == overload::Health::kOk ? "200 OK"
                                            : "503 Service Unavailable";
        body = std::string(overload::health_name(h)) + "\n";
      } else if (doc) {
        // Strong validator: the content hash of the exact bytes served.
        // A matching If-None-Match skips the body (304); everything else
        // gets the document plus the validator for next time.
        std::string etag = strong_etag(*doc);
        extra_headers["ETag"] = etag;
        if (cache_policy.enabled) {
          extra_headers["Cache-Control"] =
              "max-age=" + std::to_string(cache_policy.max_age.count()) +
              ", stale-while-revalidate=" +
              std::to_string(cache_policy.stale_while_revalidate.count());
        }
        auto inm = request.headers.find("if-none-match");
        bool matched = false;
        if (inm != request.headers.end()) {
          for (std::string_view candidate : split(inm->second, ',')) {
            candidate = trim(candidate);
            if (candidate == etag || candidate == "*") {
              matched = true;
              break;
            }
          }
        }
        if (matched) {
          static obs::Counter& revalidations =
              obs::MetricsRegistry::instance().counter(
                  "http.server.revalidations");
          revalidations.add();
          status = "304 Not Modified";
          body.clear();
          suppress_body = true;
        } else {
          status = "200 OK";
          body = std::move(*doc);
          content_type = doc_type;
        }
      } else {
        status = "404 Not Found";
        body = "document not found: " + path;
      }
    } else if (!parts.empty() && parts[0] != "GET") {
      status = "405 Method Not Allowed";
      body = "only GET is supported";
    }

    std::ostringstream resp;
    resp << "HTTP/1.0 " << status << "\r\n";
    if (!suppress_body) {
      resp << "Content-Type: " << content_type << "\r\n";
    }
    resp << "Content-Length: " << body.size() << "\r\n";
    for (const auto& [name, value] : extra_headers) {
      resp << name << ": " << value << "\r\n";
    }
    resp << "Connection: close\r\n\r\n" << body;
    write_all(fd, resp.str(), deadline);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

}  // namespace omf::http
