// Minimal HTTP/1.0 server and client, sufficient for the paper's remote
// metadata discovery: GET a small XML document from an intranet server.
//
// The server serves documents from an in-memory path map (optionally backed
// by a directory) on a background thread; the client issues one GET per
// call. Loopback only. This is deliberately not a general web server — it
// is the metadata repository of Figure 3.
//
// Cache semantics: every 200 for a served document carries a strong ETag
// (content hash of the body) and, when a cache policy is set, a
// Cache-Control header with max-age + stale-while-revalidate. A GET whose
// If-None-Match matches the current ETag is answered 304 Not Modified with
// no body — the revalidation handshake the client-side metadata cache
// (src/metacache) is built on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "overload/admission.hpp"
#include "transport/tcp.hpp"
#include "util/deadline.hpp"
#include "util/retry.hpp"

namespace omf::http {

struct Response {
  int status = 0;
  std::string reason;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
  /// Raw bytes this response occupied on the wire (status line + headers +
  /// body), so tests can prove a 304 really skipped the body transfer.
  std::size_t wire_bytes = 0;

  /// The ETag header verbatim (including quotes), or "" when absent.
  std::string etag() const;

  /// Retry-After as delta-seconds (429/503 throttling); nullopt when the
  /// header is absent or uses the HTTP-date form.
  std::optional<std::chrono::seconds> retry_after() const;

  /// Parsed Cache-Control freshness lifetimes; `present` is false when the
  /// header (or the max-age directive) is missing.
  struct CacheControl {
    bool present = false;
    std::chrono::seconds max_age{0};
    std::chrono::seconds stale_while_revalidate{0};
  };
  CacheControl cache_control() const;
};

/// Extra request headers for conditional GETs ("If-None-Match": etag).
using HeaderList = std::vector<std::pair<std::string, std::string>>;

/// Parses "http://host:port/path" (host must be a loopback name/address in
/// this reproduction). Throws omf::Error on malformed URLs.
struct Url {
  std::string host;
  std::uint16_t port = 80;
  std::string path;  // always begins with '/'

  static Url parse(const std::string& url);
};

/// Issues a blocking GET. Throws TransportError on network failure; HTTP
/// errors come back as the response's status. The deadline bounds the whole
/// request — connect, send, and read — and expiry throws TimeoutError;
/// without one the call may block indefinitely (historical behaviour).
Response get(const Url& url, const Deadline& deadline = Deadline::never());
Response get(const std::string& url,
             const Deadline& deadline = Deadline::never());
Response get(const Url& url, const HeaderList& headers,
             const Deadline& deadline = Deadline::never());

/// GET with retry. Transport failures are retried on the policy's backoff
/// schedule; a 429/503 response that names a Retry-After is retried after
/// *that* long instead (the server knows its own recovery horizon better
/// than our exponential guess), always capped by the caller's deadline — a
/// Retry-After the deadline cannot absorb returns the throttled response
/// immediately rather than blocking past it. Any other status (including
/// 404) is returned as-is on the first attempt.
Response get_with_retry(const Url& url, const HeaderList& headers,
                        const RetryPolicy& policy,
                        const Deadline& deadline = Deadline::never(),
                        const RetrySleeper& sleeper = default_retry_sleeper);

/// Tiny document server.
class Server {
public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and serves on a background
  /// thread until stop()/destruction.
  explicit Server(std::uint16_t port = 0);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Registers a document at `path` (must start with '/').
  void put_document(const std::string& path, std::string body,
                    std::string content_type = "text/xml");

  /// Removes a document (subsequent GETs return 404).
  void remove_document(const std::string& path);

  /// Registers a dynamic handler: called with the request path *including*
  /// any query string; returning nullopt yields a 404. Handlers take
  /// precedence over static documents (this is how the paper's
  /// "dynamically generated metadata" / format-scoping server works).
  using Handler = std::function<std::optional<std::string>(const std::string&)>;
  void set_handler(Handler handler);

  /// A parsed request, for responders that need more than the path.
  struct Request {
    std::string path;  ///< includes any query string
    std::map<std::string, std::string> headers;  ///< lower-cased names
  };

  /// Full-control hook: sees the whole request and dictates status, headers,
  /// and body verbatim (Content-Length is filled in). Takes precedence over
  /// handlers, documents, and the built-in ETag/304 machinery; returning
  /// nullopt falls through to them. This is how tests can can 429/503 +
  /// Retry-After sequences and how nonstandard origins are simulated.
  using Responder = std::function<std::optional<Response>(const Request&)>;
  void set_responder(Responder responder);

  /// Freshness lifetimes advertised on document responses. While enabled,
  /// every document 200/304 carries "Cache-Control: max-age=N,
  /// stale-while-revalidate=M"; clients may serve a cached copy N seconds
  /// without revalidating and keep serving it for M more while they
  /// revalidate (or while every replica is down). ETag/If-None-Match
  /// revalidation is always on — it needs no policy.
  struct CachePolicy {
    bool enabled = true;
    std::chrono::seconds max_age{60};
    std::chrono::seconds stale_while_revalidate{3600};
  };
  void set_cache_policy(const CachePolicy& policy);

  /// URL for a path on this server.
  std::string url_for(const std::string& path) const;

  /// Total requests served. Deprecated shim: per-instance count kept for
  /// tests; the process-wide aggregate is the registry counter
  /// "http.server.requests".
  std::size_t request_count() const noexcept { return requests_.load(); }

  /// Every Server exposes GET /metrics — the process-wide metrics snapshot
  /// rendered as Prometheus text (obs::render_prometheus). A user handler
  /// or document registered at "/metrics" takes precedence; call
  /// set_metrics_endpoint(false) to disable the built-in entirely.
  void set_metrics_endpoint(bool enabled) noexcept {
    metrics_endpoint_.store(enabled);
  }

  /// Every Server also exposes GET /healthz — the process overload state as
  /// a readiness probe: 200 "ok" normally, 503 "degraded" past the memory
  /// high-watermark, 503 "draining" during graceful shutdown. Same
  /// precedence and opt-out shape as /metrics.
  void set_health_endpoint(bool enabled) noexcept {
    health_endpoint_.store(enabled);
  }

  /// Every Server also exposes GET /debug/traces — the tracer's retained
  /// trace trees as JSONL (obs::Tracer::export_trace_trees). Same
  /// precedence and opt-out shape as /metrics.
  void set_traces_endpoint(bool enabled) noexcept {
    traces_endpoint_.store(enabled);
  }

  /// Per-peer request quotas (msgs/s counts requests, bytes/s counts
  /// request-header bytes). Over-quota requests get a 429 with a
  /// lint-style "[OMFnnn] detail" body. Unlimited by default.
  void set_admission(const overload::AdmissionLimits& limits) {
    admission_.set_limits(limits);
  }

  /// Per-request I/O bound. The server handles requests sequentially on one
  /// thread, so a client that connects and stalls (slowloris) would
  /// otherwise wedge every later request. Default 30 s.
  void set_request_timeout(std::chrono::milliseconds t) noexcept {
    request_timeout_ms_.store(t.count());
  }

  void stop();

private:
  void serve();
  void handle(transport::TcpConnection conn);

  transport::TcpListener listener_;
  std::atomic<bool> running_{true};
  std::atomic<bool> metrics_endpoint_{true};
  std::atomic<bool> health_endpoint_{true};
  std::atomic<bool> traces_endpoint_{true};
  overload::AdmissionController admission_;
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::int64_t> request_timeout_ms_{30000};
  mutable std::mutex mutex_;
  std::map<std::string, std::pair<std::string, std::string>> documents_;
  Handler handler_;
  Responder responder_;
  CachePolicy cache_policy_;
  std::thread thread_;
};

/// The strong ETag the server would serve for `body` (quoted 16-hex content
/// hash). Exposed so clients can revalidate bundles they obtained out of
/// band (e.g. over the TCP format service, whose validator is the same
/// content hash without quotes).
std::string strong_etag(std::string_view body);

}  // namespace omf::http
