// Minimal HTTP/1.0 server and client, sufficient for the paper's remote
// metadata discovery: GET a small XML document from an intranet server.
//
// The server serves documents from an in-memory path map (optionally backed
// by a directory) on a background thread; the client issues one GET per
// call. Loopback only. This is deliberately not a general web server — it
// is the metadata repository of Figure 3.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "overload/admission.hpp"
#include "transport/tcp.hpp"
#include "util/deadline.hpp"

namespace omf::http {

struct Response {
  int status = 0;
  std::string reason;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

/// Parses "http://host:port/path" (host must be a loopback name/address in
/// this reproduction). Throws omf::Error on malformed URLs.
struct Url {
  std::string host;
  std::uint16_t port = 80;
  std::string path;  // always begins with '/'

  static Url parse(const std::string& url);
};

/// Issues a blocking GET. Throws TransportError on network failure; HTTP
/// errors come back as the response's status. The deadline bounds the whole
/// request — connect, send, and read — and expiry throws TimeoutError;
/// without one the call may block indefinitely (historical behaviour).
Response get(const Url& url, const Deadline& deadline = Deadline::never());
Response get(const std::string& url,
             const Deadline& deadline = Deadline::never());

/// Tiny document server.
class Server {
public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and serves on a background
  /// thread until stop()/destruction.
  explicit Server(std::uint16_t port = 0);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Registers a document at `path` (must start with '/').
  void put_document(const std::string& path, std::string body,
                    std::string content_type = "text/xml");

  /// Removes a document (subsequent GETs return 404).
  void remove_document(const std::string& path);

  /// Registers a dynamic handler: called with the request path *including*
  /// any query string; returning nullopt yields a 404. Handlers take
  /// precedence over static documents (this is how the paper's
  /// "dynamically generated metadata" / format-scoping server works).
  using Handler = std::function<std::optional<std::string>(const std::string&)>;
  void set_handler(Handler handler);

  /// URL for a path on this server.
  std::string url_for(const std::string& path) const;

  /// Total requests served. Deprecated shim: per-instance count kept for
  /// tests; the process-wide aggregate is the registry counter
  /// "http.server.requests".
  std::size_t request_count() const noexcept { return requests_.load(); }

  /// Every Server exposes GET /metrics — the process-wide metrics snapshot
  /// rendered as Prometheus text (obs::render_prometheus). A user handler
  /// or document registered at "/metrics" takes precedence; call
  /// set_metrics_endpoint(false) to disable the built-in entirely.
  void set_metrics_endpoint(bool enabled) noexcept {
    metrics_endpoint_.store(enabled);
  }

  /// Every Server also exposes GET /healthz — the process overload state as
  /// a readiness probe: 200 "ok" normally, 503 "degraded" past the memory
  /// high-watermark, 503 "draining" during graceful shutdown. Same
  /// precedence and opt-out shape as /metrics.
  void set_health_endpoint(bool enabled) noexcept {
    health_endpoint_.store(enabled);
  }

  /// Per-peer request quotas (msgs/s counts requests, bytes/s counts
  /// request-header bytes). Over-quota requests get a 429 with a
  /// lint-style "[OMFnnn] detail" body. Unlimited by default.
  void set_admission(const overload::AdmissionLimits& limits) {
    admission_.set_limits(limits);
  }

  /// Per-request I/O bound. The server handles requests sequentially on one
  /// thread, so a client that connects and stalls (slowloris) would
  /// otherwise wedge every later request. Default 30 s.
  void set_request_timeout(std::chrono::milliseconds t) noexcept {
    request_timeout_ms_.store(t.count());
  }

  void stop();

private:
  void serve();
  void handle(transport::TcpConnection conn);

  transport::TcpListener listener_;
  std::atomic<bool> running_{true};
  std::atomic<bool> metrics_endpoint_{true};
  std::atomic<bool> health_endpoint_{true};
  overload::AdmissionController admission_;
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::int64_t> request_timeout_ms_{30000};
  mutable std::mutex mutex_;
  std::map<std::string, std::pair<std::string, std::string>> documents_;
  Handler handler_;
  std::thread thread_;
};

}  // namespace omf::http
