#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>

namespace omf {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

// Post-mortem capture: the last kCaptureMax warning/error lines, kept even
// when the threshold suppresses printing. Guarded by g_mutex.
constexpr std::size_t kCaptureMax = 64;
std::deque<std::string>& capture_ring() {
  static std::deque<std::string> ring;
  return ring;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace {
std::atomic<LogCaptureHook> g_capture_hook{nullptr};
}  // namespace

void set_log_capture_hook(LogCaptureHook hook) noexcept {
  g_capture_hook.store(hook, std::memory_order_release);
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  bool print = level >= log_level();
  bool capture = level >= LogLevel::kWarn && level < LogLevel::kOff;
  if (!print && !capture) return;
  std::string line;
  if (capture) {
    line.reserve(component.size() + message.size() + 16);
    line.append("[").append(level_name(level)).append("] ");
    line.append(component).append(": ").append(message);
  }
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (capture) {
      std::deque<std::string>& ring = capture_ring();
      if (ring.size() >= kCaptureMax) ring.pop_front();
      ring.push_back(line);
    }
    if (print) {
      std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
                   static_cast<int>(component.size()), component.data(),
                   static_cast<int>(message.size()), message.data());
    }
  }
  // Tap after the lock is released: the hook may take its own locks (the
  // flight recorder does) and must never nest inside the logger's.
  if (capture) {
    if (LogCaptureHook hook = g_capture_hook.load(std::memory_order_acquire)) {
      hook(line);
    }
  }
}

std::vector<std::string> recent_log_errors() {
  std::lock_guard<std::mutex> lock(g_mutex);
  const std::deque<std::string>& ring = capture_ring();
  return std::vector<std::string>(ring.begin(), ring.end());
}

void clear_recent_log_errors() {
  std::lock_guard<std::mutex> lock(g_mutex);
  capture_ring().clear();
}

}  // namespace omf
