// Retry with exponential backoff and deterministic jitter.
//
// RetryPolicy describes how many times to attempt an operation and how long
// to wait between attempts: delay(k) = min(cap, base * 2^k), spread by a
// jitter fraction drawn from the SplitMix64 RNG (util/rng.hpp) seeded from
// the policy — the same seed always yields the same delay sequence, so
// chaos tests and backoff-shape assertions are reproducible.
//
// retry_call() wraps a callable: transient failures (TransportError,
// including TimeoutError) are retried per the policy; anything else —
// DecodeError, FormatError, logic errors — propagates immediately, because
// retrying corrupt data cannot make it valid. The sleeper is injectable so
// tests can capture delays instead of actually sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace omf {

struct RetryPolicy {
  int max_attempts = 3;                    ///< total attempts (>= 1)
  std::chrono::milliseconds base{50};      ///< delay before attempt 2
  std::chrono::milliseconds cap{2000};     ///< backoff ceiling
  double jitter = 0.2;                     ///< +/- fraction of the delay
  std::uint64_t seed = 0x0FA117u;          ///< jitter stream seed

  /// Delay to wait after failed attempt `attempt` (1-based). Deterministic
  /// for a given (seed, attempt) pair.
  std::chrono::milliseconds backoff(int attempt) const {
    if (attempt < 1) attempt = 1;
    auto ms = static_cast<std::uint64_t>(base.count());
    // Saturating doubling: attempt 1 -> base, 2 -> 2*base, ...
    for (int i = 1; i < attempt && ms < static_cast<std::uint64_t>(cap.count());
         ++i) {
      ms *= 2;
    }
    if (ms > static_cast<std::uint64_t>(cap.count())) {
      ms = static_cast<std::uint64_t>(cap.count());
    }
    if (jitter > 0.0 && ms > 0) {
      Rng rng(seed ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(attempt)));
      double spread = (rng.uniform() * 2.0 - 1.0) * jitter;  // [-j, +j)
      double jittered = static_cast<double>(ms) * (1.0 + spread);
      ms = jittered < 0.0 ? 0 : static_cast<std::uint64_t>(jittered);
    }
    return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
  }
};

using RetrySleeper = std::function<void(std::chrono::milliseconds)>;

inline void default_retry_sleeper(std::chrono::milliseconds d) {
  if (d > std::chrono::milliseconds::zero()) std::this_thread::sleep_for(d);
}

/// Invokes `fn` up to policy.max_attempts times, backing off between
/// attempts. Retries only TransportError (and subclasses); the last error
/// is rethrown once attempts are exhausted.
template <typename F>
auto retry_call(const RetryPolicy& policy, F&& fn,
                const RetrySleeper& sleeper = default_retry_sleeper)
    -> decltype(fn()) {
  int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const TransportError&) {
      if (attempt >= attempts) {
        obs::MetricsRegistry::instance().counter("fault.retry.exhausted").add();
        throw;
      }
      obs::MetricsRegistry::instance().counter("fault.retry.retries").add();
      sleeper(policy.backoff(attempt));
    }
  }
}

}  // namespace omf
