// Error types shared across the OMF library.
//
// OMF uses exceptions for error reporting, following the C++ Core Guidelines
// (E.2): errors that prevent a function from meeting its postcondition throw.
// All OMF exceptions derive from omf::Error so callers can catch the whole
// family at an API boundary.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace omf {

/// Root of the OMF exception hierarchy.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a read runs past the end of a buffer, a length prefix is
/// inconsistent with the remaining bytes, or a wire message is otherwise
/// structurally truncated or corrupt.
class DecodeError : public Error {
public:
  explicit DecodeError(const std::string& what) : Error("decode error: " + what) {}
};

/// Thrown when in-memory data cannot be marshaled (e.g. a negative
/// size-field for a dynamic array, or a null pointer where data is required).
class EncodeError : public Error {
public:
  explicit EncodeError(const std::string& what) : Error("encode error: " + what) {}
};

/// Thrown by the XML lexer/parser and the schema reader. Carries the 1-based
/// source position of the offending construct.
class ParseError : public Error {
public:
  ParseError(const std::string& what, std::size_t line, std::size_t column)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

private:
  std::size_t line_;
  std::size_t column_;
};

/// Thrown when a format definition is internally inconsistent: duplicate
/// field names, unknown referenced types, dynamic arrays whose size field is
/// missing, and similar metadata-level problems.
class FormatError : public Error {
public:
  explicit FormatError(const std::string& what) : Error("format error: " + what) {}
};

/// Thrown when metadata discovery fails: the document cannot be located,
/// fetched, or parsed, and no fallback source in the discovery chain
/// succeeded either.
class DiscoveryError : public Error {
public:
  explicit DiscoveryError(const std::string& what)
      : Error("discovery error: " + what) {}
};

/// Thrown by the transport layer (sockets, event backbone) on I/O failure
/// or protocol violation.
class TransportError : public Error {
public:
  explicit TransportError(const std::string& what)
      : Error("transport error: " + what) {}

protected:
  struct Raw {};
  TransportError(Raw, const std::string& what) : Error(what) {}
};

/// Thrown when a blocking operation exceeds its Deadline (util/deadline.hpp).
/// Derives from TransportError so pre-deadline catch sites keep working;
/// catch TimeoutError first to distinguish "slow" from "broken".
class TimeoutError : public TransportError {
public:
  explicit TimeoutError(const std::string& what)
      : TransportError(Raw{}, "timeout: " + what) {}
};

}  // namespace omf
