// Minimal leveled logger. Components log discovery decisions, fallbacks,
// and transport events so examples can narrate what the system does; tests
// run with logging off by default.
//
// Structured fields: wrap values in kv("key", value) inside the streaming
// macros to get a uniform `key=value` format that log scrapers (and eyes)
// can split on:
//
//   OMF_LOG_WARN("discovery", "fetch failed", kv("locator", locator),
//                kv("status", resp.status));
//   // [warn] discovery: fetch failed locator=http://... status=503
//
// Post-mortem ring: every kWarn/kError line is captured into a fixed-size
// in-memory ring even when the global threshold suppresses printing, so a
// chaos-test failure can be diagnosed after the fact via
// recent_log_errors() (exposed through obs::stats_snapshot()).
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace omf {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global threshold; messages below it are discarded (kWarn and
/// above are still captured in the post-mortem ring).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one line to stderr as "[level] component: message" (thread-safe)
/// when `level` passes the threshold; always captures kWarn+ in the ring.
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

/// The last captured kWarn/kError lines, oldest first (bounded ring; the
/// capacity is small and fixed). Independent of the print threshold.
std::vector<std::string> recent_log_errors();

/// Empties the post-mortem ring (tests).
void clear_recent_log_errors();

/// Optional tap on the capture path: invoked (outside the logger's lock)
/// with every formatted kWarn/kError line right after it enters the ring.
/// Installed by the obs flight recorder so warn+ lines stream into the
/// crash-safe event ring; nullptr uninstalls. The hook must be cheap and
/// must not log.
using LogCaptureHook = void (*)(std::string_view line);
void set_log_capture_hook(LogCaptureHook hook) noexcept;

/// Structured key=value log field; stream it inside the OMF_LOG_* macros.
/// Prints as " key=value" (leading space, so fields chain after prose).
template <typename T>
struct LogField {
  std::string_view key;
  const T& value;
};

template <typename T>
LogField<T> kv(std::string_view key, const T& value) noexcept {
  return LogField<T>{key, value};
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const LogField<T>& f) {
  return os << ' ' << f.key << '=' << f.value;
}

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, std::string_view component, Args&&... args) {
  // kWarn+ always reaches log_line for ring capture; below that the
  // threshold check here skips the formatting cost entirely.
  if (level < log_level() && level < LogLevel::kWarn) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, component, os.str());
}
}  // namespace detail

#define OMF_LOG_DEBUG(component, ...) \
  ::omf::detail::log_fmt(::omf::LogLevel::kDebug, component, __VA_ARGS__)
#define OMF_LOG_INFO(component, ...) \
  ::omf::detail::log_fmt(::omf::LogLevel::kInfo, component, __VA_ARGS__)
#define OMF_LOG_WARN(component, ...) \
  ::omf::detail::log_fmt(::omf::LogLevel::kWarn, component, __VA_ARGS__)
#define OMF_LOG_ERROR(component, ...) \
  ::omf::detail::log_fmt(::omf::LogLevel::kError, component, __VA_ARGS__)

}  // namespace omf
