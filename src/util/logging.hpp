// Minimal leveled logger. Components log discovery decisions, fallbacks,
// and transport events so examples can narrate what the system does; tests
// run with logging off by default.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace omf {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one line to stderr as "[level] component: message" (thread-safe).
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, std::string_view component, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, component, os.str());
}
}  // namespace detail

#define OMF_LOG_DEBUG(component, ...) \
  ::omf::detail::log_fmt(::omf::LogLevel::kDebug, component, __VA_ARGS__)
#define OMF_LOG_INFO(component, ...) \
  ::omf::detail::log_fmt(::omf::LogLevel::kInfo, component, __VA_ARGS__)
#define OMF_LOG_WARN(component, ...) \
  ::omf::detail::log_fmt(::omf::LogLevel::kWarn, component, __VA_ARGS__)
#define OMF_LOG_ERROR(component, ...) \
  ::omf::detail::log_fmt(::omf::LogLevel::kError, component, __VA_ARGS__)

}  // namespace omf
