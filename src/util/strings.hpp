// Small string utilities used by the XML parser, schema reader, and HTTP
// code. All functions are pure and allocation-conscious (string_view in,
// string out only where a copy is unavoidable).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace omf {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Splits on a single-character separator. Empty pieces are preserved
/// ("a,,b" -> {"a", "", "b"}); an empty input yields one empty piece.
std::vector<std::string_view> split(std::string_view s, char sep);

/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// ASCII case-insensitive comparison (sufficient for HTTP header names).
bool iequals(std::string_view a, std::string_view b) noexcept;

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

/// Parses a decimal integer, rejecting trailing garbage, overflow, and empty
/// input. Returns nullopt on any failure rather than guessing.
std::optional<std::int64_t> parse_int(std::string_view s) noexcept;
std::optional<std::uint64_t> parse_uint(std::string_view s) noexcept;

/// Parses a floating-point number with the same strictness.
std::optional<double> parse_double(std::string_view s) noexcept;

/// True if `s` is a valid XML name (Name production, ASCII subset plus
/// accepting any byte >= 0x80 so UTF-8 names pass through untouched).
bool is_xml_name(std::string_view s) noexcept;

}  // namespace omf
