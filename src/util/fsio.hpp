// Durable file-system primitives shared by the crash-safe stores (the
// overload journal, the metacache disk tier).
//
// POSIX durability is a two-key protocol: fsync the file to make its bytes
// durable, then fsync the containing directory to make the *name* durable —
// a rename that was never followed by a directory fsync can vanish on power
// loss even though the data it pointed at survived. atomic_install()
// packages the full write-temp/fsync/rename/fsync-dir sequence so callers
// cannot forget the second key.
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>

#include "util/error.hpp"

namespace omf::fsio {

[[noreturn]] inline void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// write(2) until every byte is out, retrying EINTR.
inline void write_fully(int fd, const std::uint8_t* data, std::size_t n,
                        const char* what) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno(what);
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// fsync the directory itself so renames/creates within it survive power
/// loss. Best effort: not every filesystem supports directory fds.
inline void fsync_dir(const std::filesystem::path& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Atomically installs `bytes` at `target`: writes `target.parent/tmp_name`,
/// fsyncs it, renames over `target`, and fsyncs the parent directory. A
/// crash at any point leaves either the old file (or nothing) or the
/// complete new file — never a torn mix; a leftover temp file is inert
/// because readers only open the target name.
inline void atomic_install(const std::filesystem::path& target,
                           std::span<const std::uint8_t> bytes,
                           const std::string& tmp_name) {
  std::filesystem::path dir = target.parent_path();
  std::filesystem::path tmp = dir / tmp_name;
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("atomic_install: open " + tmp.string());
  try {
    write_fully(fd, bytes.data(), bytes.size(), "atomic_install: write");
    if (::fsync(fd) != 0) throw_errno("atomic_install: fsync");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    throw Error("atomic_install: rename " + tmp.string() + " -> " +
                target.string() + ": " + ec.message());
  }
  fsync_dir(dir);
}

}  // namespace omf::fsio
