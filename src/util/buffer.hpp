// Growable byte buffer and bounds-checked reader.
//
// Buffer is the unit of exchange between codecs and transports: encoders
// append into a Buffer, transports move Buffers, decoders wrap a received
// Buffer in a BufferReader. BufferReader throws DecodeError on any attempt
// to read past the end, so truncated or corrupt wire data is always caught
// at the read site instead of producing garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace omf {

/// Contiguous, growable byte buffer with typed append helpers.
class Buffer {
public:
  Buffer() = default;
  explicit Buffer(std::size_t reserve_bytes) { data_.reserve(reserve_bytes); }
  explicit Buffer(std::vector<std::uint8_t> bytes) : data_(std::move(bytes)) {}

  const std::uint8_t* data() const noexcept { return data_.data(); }
  std::uint8_t* data() noexcept { return data_.data(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  void clear() noexcept { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  std::span<const std::uint8_t> span() const noexcept {
    return {data_.data(), data_.size()};
  }

  /// Appends raw bytes.
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    data_.insert(data_.end(), b, b + n);
  }

  void append(std::span<const std::uint8_t> bytes) {
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }

  void append(std::string_view text) { append(text.data(), text.size()); }

  /// Appends `n` zero bytes (used for alignment padding in wire formats).
  void append_zeros(std::size_t n) { data_.insert(data_.end(), n, 0); }

  /// Appends an integer in the requested byte order.
  template <typename T>
  void append_int(T v, ByteOrder order) {
    std::uint8_t tmp[sizeof(T)];
    store_order<T>(tmp, v, order);
    append(tmp, sizeof(T));
  }

  /// Grows the buffer by `n` uninitialized-ish (zeroed) bytes and returns the
  /// offset of the start of the new region. Callers write into the region via
  /// data() + offset. Used by encoders that reserve fixed-size regions and
  /// patch them afterwards.
  std::size_t grow(std::size_t n) {
    std::size_t off = data_.size();
    data_.resize(off + n);
    return off;
  }

  /// Overwrites an integer at a previously reserved position.
  template <typename T>
  void patch_int(std::size_t offset, T v, ByteOrder order) {
    if (offset + sizeof(T) > data_.size()) {
      throw EncodeError("patch past end of buffer");
    }
    store_order<T>(data_.data() + offset, v, order);
  }

  bool operator==(const Buffer& other) const noexcept {
    return data_ == other.data_;
  }

  /// Hex dump for diagnostics and examples; at most `max_bytes` bytes.
  std::string hex(std::size_t max_bytes = 64) const;

private:
  std::vector<std::uint8_t> data_;
};

/// Bounds-checked sequential reader over a byte span. Does not own the bytes.
class BufferReader {
public:
  explicit BufferReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  BufferReader(const void* p, std::size_t n)
      : bytes_(static_cast<const std::uint8_t*>(p), n) {}
  explicit BufferReader(const Buffer& b) : bytes_(b.span()) {}

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == bytes_.size(); }

  /// Returns a pointer to the next `n` bytes and advances past them.
  const std::uint8_t* read_bytes(std::size_t n) {
    require(n);
    const std::uint8_t* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  /// Copies the next `n` bytes into `out`.
  void read_into(void* out, std::size_t n) {
    const std::uint8_t* p = read_bytes(n);
    std::memcpy(out, p, n);
  }

  template <typename T>
  T read_int(ByteOrder order) {
    const std::uint8_t* p = read_bytes(sizeof(T));
    return load_order<T>(p, order);
  }

  std::string read_string(std::size_t n) {
    const std::uint8_t* p = read_bytes(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  void skip(std::size_t n) { require(n), pos_ += n; }

  /// Moves the cursor to an absolute position (used by offset-based decoders).
  void seek(std::size_t pos) {
    if (pos > bytes_.size()) {
      throw DecodeError("seek past end of buffer");
    }
    pos_ = pos;
  }

private:
  void require(std::size_t n) const {
    if (n > remaining()) {
      throw DecodeError("truncated message: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()));
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace omf
