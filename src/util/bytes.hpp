// Byte-order primitives.
//
// NDR transmission sends data in the sender's byte order and lets the
// receiver swap only when the orders differ, so the library needs cheap,
// explicit byte-order manipulation rather than the always-canonicalize
// helpers (htonl & co.) that XDR-style systems use.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace omf {

/// Byte order of an architecture (host or a simulated remote peer).
enum class ByteOrder : std::uint8_t {
  kLittle = 0,
  kBig = 1,
};

/// The byte order this process runs under.
constexpr ByteOrder host_byte_order() noexcept {
  return std::endian::native == std::endian::little ? ByteOrder::kLittle
                                                    : ByteOrder::kBig;
}

constexpr std::uint8_t byteswap(std::uint8_t v) noexcept { return v; }

constexpr std::uint16_t byteswap(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

constexpr std::uint32_t byteswap(std::uint32_t v) noexcept {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

constexpr std::uint64_t byteswap(std::uint64_t v) noexcept {
  return (static_cast<std::uint64_t>(byteswap(static_cast<std::uint32_t>(v)))
          << 32) |
         byteswap(static_cast<std::uint32_t>(v >> 32));
}

/// Reverses `size` bytes in place. `size` must be 1, 2, 4, or 8.
inline void byteswap_inplace(void* p, std::size_t size) noexcept {
  auto* b = static_cast<std::uint8_t*>(p);
  switch (size) {
    case 1:
      break;
    case 2: {
      std::uint8_t t = b[0]; b[0] = b[1]; b[1] = t;
      break;
    }
    case 4: {
      std::uint8_t t0 = b[0], t1 = b[1];
      b[0] = b[3]; b[1] = b[2]; b[2] = t1; b[3] = t0;
      break;
    }
    case 8: {
      for (int i = 0; i < 4; ++i) {
        std::uint8_t t = b[i];
        b[i] = b[7 - i];
        b[7 - i] = t;
      }
      break;
    }
    default:
      // Non-power-of-two sizes never reach here: field sizes are validated
      // at format-registration time.
      break;
  }
}

/// Loads a little-endian integer of the given width from unaligned memory.
template <typename T>
T load_le(const void* p) noexcept {
  static_assert(std::is_integral_v<T>);
  T v;
  std::memcpy(&v, p, sizeof(T));
  if constexpr (sizeof(T) > 1) {
    if (host_byte_order() == ByteOrder::kBig) {
      v = static_cast<T>(byteswap(static_cast<std::make_unsigned_t<T>>(v)));
    }
  }
  return v;
}

/// Loads a big-endian integer of the given width from unaligned memory.
template <typename T>
T load_be(const void* p) noexcept {
  static_assert(std::is_integral_v<T>);
  T v;
  std::memcpy(&v, p, sizeof(T));
  if constexpr (sizeof(T) > 1) {
    if (host_byte_order() == ByteOrder::kLittle) {
      v = static_cast<T>(byteswap(static_cast<std::make_unsigned_t<T>>(v)));
    }
  }
  return v;
}

/// Stores an integer to unaligned memory in little-endian order.
template <typename T>
void store_le(void* p, T v) noexcept {
  static_assert(std::is_integral_v<T>);
  if constexpr (sizeof(T) > 1) {
    if (host_byte_order() == ByteOrder::kBig) {
      v = static_cast<T>(byteswap(static_cast<std::make_unsigned_t<T>>(v)));
    }
  }
  std::memcpy(p, &v, sizeof(T));
}

/// Stores an integer to unaligned memory in big-endian order.
template <typename T>
void store_be(void* p, T v) noexcept {
  static_assert(std::is_integral_v<T>);
  if constexpr (sizeof(T) > 1) {
    if (host_byte_order() == ByteOrder::kLittle) {
      v = static_cast<T>(byteswap(static_cast<std::make_unsigned_t<T>>(v)));
    }
  }
  std::memcpy(p, &v, sizeof(T));
}

/// Loads an integer in the byte order of `order`.
template <typename T>
T load_order(const void* p, ByteOrder order) noexcept {
  return order == ByteOrder::kLittle ? load_le<T>(p) : load_be<T>(p);
}

/// Stores an integer in the byte order of `order`.
template <typename T>
void store_order(void* p, T v, ByteOrder order) noexcept {
  if (order == ByteOrder::kLittle) {
    store_le<T>(p, v);
  } else {
    store_be<T>(p, v);
  }
}

/// Rounds `n` up to the next multiple of `align` (a power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace omf
