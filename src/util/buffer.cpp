#include "util/buffer.hpp"

namespace omf {

std::string Buffer::hex(std::size_t max_bytes) const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  std::size_t n = data_.size() < max_bytes ? data_.size() : max_bytes;
  out.reserve(n * 3 + 8);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) {
      out.push_back(i % 16 == 0 ? '\n' : ' ');
    }
    out.push_back(kDigits[data_[i] >> 4]);
    out.push_back(kDigits[data_[i] & 0xF]);
  }
  if (n < data_.size()) {
    out += " ... (" + std::to_string(data_.size() - n) + " more)";
  }
  return out;
}

}  // namespace omf
