// Deterministic pseudo-random generator for tests, property sweeps, and
// benchmark workload generation. SplitMix64: tiny, fast, and reproducible
// across platforms (unlike std::mt19937 seeded via seed_seq, whose stream we
// would rather not depend on for golden tests).
#pragma once

#include <cstdint>
#include <string>

namespace omf {

class Rng {
public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Computed in unsigned space so
  /// full-width ranges (e.g. [-2^62, 2^62]) don't overflow.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    std::uint64_t span = static_cast<std::uint64_t>(hi) -
                         static_cast<std::uint64_t>(lo) + 1;
    std::uint64_t offset = span == 0 ? next() : below(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) noexcept { return uniform() < p; }

  /// Random ASCII identifier of the given length, starting with a letter.
  std::string identifier(std::size_t len) {
    static constexpr char kFirst[] = "abcdefghijklmnopqrstuvwxyz";
    static constexpr char kRest[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    std::string s;
    s.reserve(len);
    if (len == 0) return s;
    s.push_back(kFirst[below(sizeof(kFirst) - 1)]);
    for (std::size_t i = 1; i < len; ++i) {
      s.push_back(kRest[below(sizeof(kRest) - 1)]);
    }
    return s;
  }

private:
  std::uint64_t state_;
};

}  // namespace omf
