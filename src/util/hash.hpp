// FNV-1a hashing, used to derive stable 64-bit format identifiers from
// format metadata so that two endpoints that independently register the same
// format agree on its wire id without a round-trip.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace omf {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Incrementally hashable FNV-1a accumulator.
class Fnv1a {
public:
  constexpr Fnv1a() = default;

  constexpr void update(std::string_view bytes) noexcept {
    for (char c : bytes) {
      state_ ^= static_cast<std::uint8_t>(c);
      state_ *= kFnvPrime;
    }
  }

  constexpr void update(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      state_ ^= static_cast<std::uint8_t>(v >> (i * 8));
      state_ *= kFnvPrime;
    }
  }

  constexpr std::uint64_t digest() const noexcept { return state_; }

private:
  std::uint64_t state_ = kFnvOffset;
};

constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  Fnv1a h;
  h.update(bytes);
  return h.digest();
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used as the frame
/// integrity check on the TCP transport: a length prefix survives TCP's
/// byte-stream semantics but says nothing about the bytes themselves, so
/// the framing layer appends a CRC and rejects corrupted frames before they
/// ever reach a decoder.
/// Slicing-by-8: eight derived tables let the loop consume 8 bytes per
/// iteration with independent lookups, so the checksum costs nanoseconds
/// per kilobyte instead of dominating large-frame round-trips.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) noexcept {
  static const auto table = [] {
    struct {
      std::uint32_t t[8][256];
    } out{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      out.t[0][i] = c;
    }
    for (int j = 1; j < 8; ++j) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t prev = out.t[j - 1][i];
        out.t[j][i] = (prev >> 8) ^ out.t[0][prev & 0xFFu];
      }
    }
    return out;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  while (n >= 8) {
    std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                              static_cast<std::uint32_t>(p[1]) << 8 |
                              static_cast<std::uint32_t>(p[2]) << 16 |
                              static_cast<std::uint32_t>(p[3]) << 24);
    std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                       static_cast<std::uint32_t>(p[5]) << 8 |
                       static_cast<std::uint32_t>(p[6]) << 16 |
                       static_cast<std::uint32_t>(p[7]) << 24;
    crc = table.t[7][lo & 0xFFu] ^ table.t[6][(lo >> 8) & 0xFFu] ^
          table.t[5][(lo >> 16) & 0xFFu] ^ table.t[4][lo >> 24] ^
          table.t[3][hi & 0xFFu] ^ table.t[2][(hi >> 8) & 0xFFu] ^
          table.t[1][(hi >> 16) & 0xFFu] ^ table.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) {
    crc = table.t[0][(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace omf
