// FNV-1a hashing, used to derive stable 64-bit format identifiers from
// format metadata so that two endpoints that independently register the same
// format agree on its wire id without a round-trip.
#pragma once

#include <cstdint>
#include <string_view>

namespace omf {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Incrementally hashable FNV-1a accumulator.
class Fnv1a {
public:
  constexpr Fnv1a() = default;

  constexpr void update(std::string_view bytes) noexcept {
    for (char c : bytes) {
      state_ ^= static_cast<std::uint8_t>(c);
      state_ *= kFnvPrime;
    }
  }

  constexpr void update(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      state_ ^= static_cast<std::uint8_t>(v >> (i * 8));
      state_ *= kFnvPrime;
    }
  }

  constexpr std::uint64_t digest() const noexcept { return state_; }

private:
  std::uint64_t state_ = kFnvOffset;
};

constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  Fnv1a h;
  h.update(bytes);
  return h.digest();
}

}  // namespace omf
