#include "util/strings.hpp"

#include <cerrno>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace omf {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_uint(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+; use it for
  // locale-independence.
  double v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

bool is_xml_name(std::string_view s) noexcept {
  if (s.empty()) return false;
  auto name_start = [](unsigned char c) {
    return std::isalpha(c) || c == '_' || c == ':' || c >= 0x80;
  };
  auto name_char = [&](unsigned char c) {
    return name_start(c) || std::isdigit(c) || c == '-' || c == '.';
  };
  if (!name_start(static_cast<unsigned char>(s[0]))) return false;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (!name_char(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

}  // namespace omf
