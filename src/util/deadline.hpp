// Deadlines for blocking operations.
//
// A Deadline is an absolute point in time by which a blocking call must
// complete; "never" means the call may block indefinitely (the historical
// behaviour of every transport call, still the default). Deadlines compose
// naturally across a multi-step operation — connect, send request, read
// response — because each step polls the same absolute time point instead of
// restarting a relative timeout. Expiry surfaces as TimeoutError (see
// util/error.hpp), which derives from TransportError so existing catch
// sites keep working.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace omf {

class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  /// Default-constructed deadlines never expire.
  constexpr Deadline() = default;

  /// A deadline that never expires.
  static constexpr Deadline never() { return Deadline(); }

  /// A deadline `d` from now. Non-positive durations are already expired.
  static Deadline after(std::chrono::milliseconds d) {
    Deadline out;
    out.infinite_ = false;
    out.when_ = Clock::now() + d;
    return out;
  }

  /// Converts a relative-timeout knob to a deadline: zero or negative
  /// means "no timeout" (never expires).
  static Deadline from_timeout(std::chrono::milliseconds timeout) {
    return timeout <= std::chrono::milliseconds::zero() ? never()
                                                        : after(timeout);
  }

  bool is_never() const noexcept { return infinite_; }

  bool expired() const noexcept {
    return !infinite_ && Clock::now() >= when_;
  }

  /// Remaining time, clamped to zero; an arbitrary large value when the
  /// deadline never expires.
  std::chrono::milliseconds remaining() const noexcept {
    if (infinite_) return std::chrono::milliseconds::max();
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        when_ - Clock::now());
    return left < std::chrono::milliseconds::zero()
               ? std::chrono::milliseconds::zero()
               : left;
  }

  /// Timeout argument for poll(2): -1 to block forever, otherwise the
  /// remaining milliseconds clamped into int range (0 when expired).
  int poll_timeout_ms() const noexcept {
    if (infinite_) return -1;
    auto left = remaining().count();
    constexpr auto kMax =
        static_cast<std::int64_t>(std::numeric_limits<int>::max());
    return static_cast<int>(left > kMax ? kMax : left);
  }

private:
  bool infinite_ = true;
  Clock::time_point when_{};
};

}  // namespace omf
