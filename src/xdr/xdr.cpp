#include "xdr/xdr.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace omf::xdr {

using pbio::ArrayKind;
using pbio::Field;
using pbio::FieldClass;
using pbio::Format;

namespace {

// --- Native struct memory access (host order, arbitrary width) -------------

std::uint64_t load_native_uint(const std::uint8_t* p, std::size_t size) {
  switch (size) {
    case 1: return *p;
    case 2: { std::uint16_t v; std::memcpy(&v, p, 2); return v; }
    case 4: { std::uint32_t v; std::memcpy(&v, p, 4); return v; }
    default: { std::uint64_t v; std::memcpy(&v, p, 8); return v; }
  }
}

std::int64_t load_native_int(const std::uint8_t* p, std::size_t size) {
  std::uint64_t v = load_native_uint(p, size);
  if (size < 8) {
    std::uint64_t sign_bit = 1ull << (size * 8 - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return static_cast<std::int64_t>(v);
}

void store_native_int(std::uint8_t* p, std::size_t size, std::uint64_t v) {
  switch (size) {
    case 1: { auto x = static_cast<std::uint8_t>(v); std::memcpy(p, &x, 1); break; }
    case 2: { auto x = static_cast<std::uint16_t>(v); std::memcpy(p, &x, 2); break; }
    case 4: { auto x = static_cast<std::uint32_t>(v); std::memcpy(p, &x, 4); break; }
    default: std::memcpy(p, &v, 8); break;
  }
}

std::int64_t read_count_field(const Format& format, const std::uint8_t* src,
                              const Field& array_field) {
  const Field& cf = format.fields()[array_field.count_field_index];
  return cf.type.cls == FieldClass::kInteger
             ? load_native_int(src + cf.offset, cf.size)
             : static_cast<std::int64_t>(
                   load_native_uint(src + cf.offset, cf.size));
}

constexpr std::size_t pad4(std::size_t n) { return (n + 3) & ~std::size_t{3}; }

// --- Encoding ---------------------------------------------------------------

void put_scalar(const Field& f, const std::uint8_t* elem, Buffer& out) {
  switch (f.type.cls) {
    case FieldClass::kInteger: {
      std::int64_t v = load_native_int(elem, f.size);
      if (f.size <= 4) {
        out.append_int<std::uint32_t>(static_cast<std::uint32_t>(v),
                                      ByteOrder::kBig);
      } else {
        out.append_int<std::uint64_t>(static_cast<std::uint64_t>(v),
                                      ByteOrder::kBig);
      }
      break;
    }
    case FieldClass::kUnsigned: {
      std::uint64_t v = load_native_uint(elem, f.size);
      if (f.size <= 4) {
        out.append_int<std::uint32_t>(static_cast<std::uint32_t>(v),
                                      ByteOrder::kBig);
      } else {
        out.append_int<std::uint64_t>(v, ByteOrder::kBig);
      }
      break;
    }
    case FieldClass::kFloat:
      if (f.size == 4) {
        std::uint32_t bits;
        std::memcpy(&bits, elem, 4);
        out.append_int<std::uint32_t>(bits, ByteOrder::kBig);
      } else {
        std::uint64_t bits;
        std::memcpy(&bits, elem, 8);
        out.append_int<std::uint64_t>(bits, ByteOrder::kBig);
      }
      break;
    case FieldClass::kChar:
      // A lone char is an XDR int occupying a full 4-byte unit.
      out.append_int<std::uint32_t>(*elem, ByteOrder::kBig);
      break;
    default:
      throw EncodeError("put_scalar on non-scalar field '" + f.name + "'");
  }
}

void encode_region(const Format& format, const std::uint8_t* src, Buffer& out);

void encode_field(const Format& format, const Field& f,
                  const std::uint8_t* src, Buffer& out) {
  // Resolve element base + count.
  const std::uint8_t* base = src + f.offset;
  std::size_t count = 1;
  if (f.type.array == ArrayKind::kStatic) {
    count = f.type.static_count;
  } else if (f.type.array == ArrayKind::kDynamic) {
    std::int64_t n = read_count_field(format, src, f);
    if (n < 0) throw EncodeError("negative count for '" + f.name + "'");
    const std::uint8_t* ptr = nullptr;
    std::memcpy(&ptr, src + f.offset, sizeof(ptr));
    if (n > 0 && ptr == nullptr) {
      throw EncodeError("null dynamic array '" + f.name + "'");
    }
    // XDR variable-length array: count prefix, then elements.
    out.append_int<std::uint32_t>(static_cast<std::uint32_t>(n),
                                  ByteOrder::kBig);
    base = ptr;
    count = static_cast<std::size_t>(n);
  }

  switch (f.type.cls) {
    case FieldClass::kString: {
      const char* s = nullptr;
      std::memcpy(&s, src + f.offset, sizeof(s));
      std::size_t len = s == nullptr ? 0 : std::strlen(s);
      out.append_int<std::uint32_t>(static_cast<std::uint32_t>(len),
                                    ByteOrder::kBig);
      if (len != 0) out.append(s, len);
      out.append_zeros(pad4(len) - len);
      break;
    }
    case FieldClass::kNested:
      for (std::size_t i = 0; i < count; ++i) {
        encode_region(*f.subformat, base + i * f.subformat->struct_size(),
                      out);
      }
      break;
    case FieldClass::kChar:
      if (f.type.array != ArrayKind::kNone) {
        // Char arrays travel as XDR opaque: raw bytes padded to 4.
        out.append(base, count);
        out.append_zeros(pad4(count) - count);
        break;
      }
      [[fallthrough]];
    default:
      for (std::size_t i = 0; i < count; ++i) {
        put_scalar(f, base + i * f.size, out);
      }
      break;
  }
}

void encode_region(const Format& format, const std::uint8_t* src, Buffer& out) {
  for (const Field& f : format.fields()) {
    encode_field(format, f, src, out);
  }
}

// --- Decoding ---------------------------------------------------------------

void get_scalar(const Field& f, BufferReader& in, std::uint8_t* elem) {
  switch (f.type.cls) {
    case FieldClass::kInteger: {
      std::int64_t v =
          f.size <= 4
              ? static_cast<std::int32_t>(in.read_int<std::uint32_t>(ByteOrder::kBig))
              : static_cast<std::int64_t>(in.read_int<std::uint64_t>(ByteOrder::kBig));
      store_native_int(elem, f.size, static_cast<std::uint64_t>(v));
      break;
    }
    case FieldClass::kUnsigned: {
      std::uint64_t v = f.size <= 4
                            ? in.read_int<std::uint32_t>(ByteOrder::kBig)
                            : in.read_int<std::uint64_t>(ByteOrder::kBig);
      store_native_int(elem, f.size, v);
      break;
    }
    case FieldClass::kFloat:
      if (f.size == 4) {
        std::uint32_t bits = in.read_int<std::uint32_t>(ByteOrder::kBig);
        std::memcpy(elem, &bits, 4);
      } else {
        std::uint64_t bits = in.read_int<std::uint64_t>(ByteOrder::kBig);
        std::memcpy(elem, &bits, 8);
      }
      break;
    case FieldClass::kChar: {
      std::uint32_t v = in.read_int<std::uint32_t>(ByteOrder::kBig);
      *elem = static_cast<std::uint8_t>(v);
      break;
    }
    default:
      throw DecodeError("get_scalar on non-scalar field '" + f.name + "'");
  }
}

void decode_region(const Format& format, BufferReader& in, std::uint8_t* dst,
                   pbio::DecodeArena& arena);

void decode_field(const Format& /*format*/, const Field& f, BufferReader& in,
                  std::uint8_t* dst, pbio::DecodeArena& arena) {
  std::uint8_t* base = dst + f.offset;
  std::size_t count = 1;
  if (f.type.array == ArrayKind::kStatic) {
    count = f.type.static_count;
  } else if (f.type.array == ArrayKind::kDynamic) {
    std::uint32_t n = in.read_int<std::uint32_t>(ByteOrder::kBig);
    std::size_t elem_native = f.type.cls == FieldClass::kNested
                                  ? f.subformat->struct_size()
                                  : f.size;
    void* mem = nullptr;
    if (n != 0) {
      // Sanity bound: even 1-byte elements need a byte on the wire.
      if (n > in.remaining()) {
        throw DecodeError("XDR array count exceeds remaining stream");
      }
      mem = arena.allocate(static_cast<std::size_t>(n) * elem_native,
                           f.type.cls == FieldClass::kNested
                               ? f.subformat->alignment()
                               : 8);
    }
    std::memcpy(dst + f.offset, &mem, sizeof(mem));
    base = static_cast<std::uint8_t*>(mem);
    count = n;
    if (count == 0) return;
  }

  switch (f.type.cls) {
    case FieldClass::kString: {
      std::uint32_t len = in.read_int<std::uint32_t>(ByteOrder::kBig);
      const char* out = nullptr;
      const std::uint8_t* bytes = in.read_bytes(pad4(len));
      out = arena.copy_string(reinterpret_cast<const char*>(bytes), len);
      std::memcpy(dst + f.offset, &out, sizeof(out));
      break;
    }
    case FieldClass::kNested:
      for (std::size_t i = 0; i < count; ++i) {
        decode_region(*f.subformat, in,
                      base + i * f.subformat->struct_size(), arena);
      }
      break;
    case FieldClass::kChar:
      if (f.type.array != ArrayKind::kNone) {
        const std::uint8_t* bytes = in.read_bytes(pad4(count));
        std::memcpy(base, bytes, count);
        break;
      }
      [[fallthrough]];
    default:
      for (std::size_t i = 0; i < count; ++i) {
        get_scalar(f, in, base + i * f.size);
      }
      break;
  }
}

void decode_region(const Format& format, BufferReader& in, std::uint8_t* dst,
                   pbio::DecodeArena& arena) {
  for (const Field& f : format.fields()) {
    decode_field(format, f, in, dst, arena);
  }
}

// --- Sizing -----------------------------------------------------------------

std::size_t region_size(const Format& format, const std::uint8_t* src);

std::size_t field_size(const Format& format, const Field& f,
                       const std::uint8_t* src) {
  std::size_t total = 0;
  const std::uint8_t* base = src + f.offset;
  std::size_t count = 1;
  if (f.type.array == ArrayKind::kStatic) {
    count = f.type.static_count;
  } else if (f.type.array == ArrayKind::kDynamic) {
    std::int64_t n = read_count_field(format, src, f);
    total += 4;  // count prefix
    const std::uint8_t* ptr = nullptr;
    std::memcpy(&ptr, src + f.offset, sizeof(ptr));
    base = ptr;
    count = n < 0 ? 0 : static_cast<std::size_t>(n);
  }

  switch (f.type.cls) {
    case FieldClass::kString: {
      const char* s = nullptr;
      std::memcpy(&s, src + f.offset, sizeof(s));
      total += 4 + pad4(s == nullptr ? 0 : std::strlen(s));
      break;
    }
    case FieldClass::kNested:
      for (std::size_t i = 0; i < count; ++i) {
        total += region_size(*f.subformat,
                             base + i * f.subformat->struct_size());
      }
      break;
    case FieldClass::kChar:
      if (f.type.array != ArrayKind::kNone) {
        total += pad4(count);
        break;
      }
      [[fallthrough]];
    default:
      total += count * (f.size <= 4 ? 4 : 8);
      break;
  }
  return total;
}

std::size_t region_size(const Format& format, const std::uint8_t* src) {
  std::size_t total = 0;
  for (const Field& f : format.fields()) {
    total += field_size(format, f, src);
  }
  return total;
}

}  // namespace

void encode(const Format& format, const void* data, Buffer& out) {
  encode_region(format, static_cast<const std::uint8_t*>(data), out);
}

Buffer encode_buffer(const Format& format, const void* data) {
  Buffer out(format.struct_size() * 2 + 64);
  encode(format, data, out);
  return out;
}

std::size_t decode(const Format& format, std::span<const std::uint8_t> bytes,
                   void* out_struct, pbio::DecodeArena& arena) {
  BufferReader in(bytes);
  decode_region(format, in, static_cast<std::uint8_t*>(out_struct), arena);
  return in.position();
}

std::size_t encoded_size(const Format& format, const void* data) {
  return region_size(format, static_cast<const std::uint8_t*>(data));
}

}  // namespace omf::xdr
