// XDR (RFC 1014) codec — the baseline "commercial platform" wire format.
//
// XDR is the canonical-representation approach the paper argues against:
// *every* scalar is converted to a fixed network representation (big-endian,
// padded to 4-byte units) on the sender and converted again on the
// receiver, even when both ends are identical little-endian machines. The
// codec here is driven by the same field metadata as the NDR path, so the
// NDR-vs-XDR benchmarks compare wire formats, not implementation quality.
//
// Encoding rules (per RFC 1014):
//   integers <= 4 bytes   -> 4-byte big-endian (sign-extended)
//   8-byte integers       -> XDR hyper: 8-byte big-endian
//   float / double        -> IEEE bits, big-endian, 4 / 8 bytes
//   char                  -> 4-byte unit (value in the last byte)
//   string                -> uint32 length + bytes + pad to 4
//   fixed array           -> elements in sequence
//   variable array        -> uint32 count + elements
//   struct                -> fields in declaration order
//
// An XDR stream carries no format id — sender and receiver must agree on
// the format out of band, which is exactly the inflexibility the paper's
// discovery separation addresses.
#pragma once

#include <span>

#include "pbio/arena.hpp"
#include "pbio/format.hpp"
#include "util/buffer.hpp"

namespace omf::xdr {

/// Marshals `data` (native-profile struct per `format`) into XDR.
void encode(const pbio::Format& format, const void* data, Buffer& out);

/// Convenience wrapper returning a fresh buffer.
Buffer encode_buffer(const pbio::Format& format, const void* data);

/// Unmarshals an XDR stream produced for `format` into `out_struct`
/// (native-profile layout); strings and dynamic arrays go into `arena`.
/// Throws DecodeError on truncation or inconsistent lengths. Returns the
/// number of bytes consumed.
std::size_t decode(const pbio::Format& format,
                   std::span<const std::uint8_t> bytes, void* out_struct,
                   pbio::DecodeArena& arena);

/// Exact size of the XDR encoding of `data`.
std::size_t encoded_size(const pbio::Format& format, const void* data);

}  // namespace omf::xdr
