// Live-message classification (paper §4.1.1).
//
// "Since the structure of a message will be represented using XML,
// schema-checking tools will be applicable to live messages received from
// other parties. This ability could be used to determine which of a set of
// structure definitions a message most closely fits."
//
// Binary NDR messages identify themselves exactly (the header carries the
// metadata id); text messages are matched structurally against the
// complexTypes of a schema document and ranked by fit.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pbio/format.hpp"
#include "schema/model.hpp"
#include "xml/dom.hpp"

namespace omf::core {

/// How well one complexType fits a message.
struct MatchScore {
  std::string type_name;
  double score = 0.0;          ///< matched / (matched+missing+unexpected), [0,1]
  std::size_t matched = 0;     ///< schema elements found (recursively)
  std::size_t missing = 0;     ///< schema elements absent from the message
  std::size_t unexpected = 0;  ///< message elements the schema doesn't know
};

/// Scores every complexType of `candidates` against a parsed text message
/// (the element tree of one record), best fit first. Ties break toward the
/// type whose name equals the message's root element name, then
/// alphabetically.
std::vector<MatchScore> classify_text_message(
    const xml::Node& message_root, const schema::SchemaDocument& candidates);

/// Convenience: parse `text` (one record document) and classify it.
std::vector<MatchScore> classify_text_message(
    std::string_view text, const schema::SchemaDocument& candidates);

/// Binary classification is exact: reads the wire header and looks the
/// format up by id. nullptr if the registry has never seen the format.
pbio::FormatHandle classify_wire_message(const pbio::FormatRegistry& registry,
                                         std::span<const std::uint8_t> message);

}  // namespace omf::core
