// Metadata discovery: locating the XML document that describes a format.
//
// The paper's architecture (§3, §4.1): discovery is an ordered chain of
// sources — remote (HTTP URL), local file, and compiled-in documents — with
// later sources acting as fault-tolerant fallbacks when earlier ones fail
// ("a system that uses remote discovery as a primary discovery method and
// compiled-in information as a fault-tolerant discovery method can provide
// a useful, if degraded, level of functionality"). Discovered documents are
// cached: discovery happens at stream-subscription time or when metadata
// changes, never per message.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "xml/dom.hpp"

namespace omf::core {

/// One place metadata documents can come from.
class MetadataSource {
public:
  virtual ~MetadataSource() = default;

  /// Human-readable source kind ("http", "file", "compiled-in").
  virtual std::string name() const = 0;

  /// Returns the document text for `locator`, or nullopt if this source
  /// cannot provide it (wrong scheme, missing file, network failure —
  /// failures are soft; the chain tries the next source).
  virtual std::optional<std::string> fetch(const std::string& locator) = 0;
};

/// Serves "http://..." locators via the HTTP client.
std::unique_ptr<MetadataSource> make_http_source();

/// Serves plain paths and "file://..." locators from the filesystem.
std::unique_ptr<MetadataSource> make_file_source();

/// Serves documents registered in-process — the compiled-in fallback. The
/// returned pointer stays valid for registering documents; the unique_ptr
/// owns it.
class CompiledInSource : public MetadataSource {
public:
  std::string name() const override { return "compiled-in"; }
  std::optional<std::string> fetch(const std::string& locator) override;

  /// Registers a document under a locator (any string; typically the same
  /// URL remote discovery would use, so the fallback is transparent).
  void add(const std::string& locator, std::string document_text);

private:
  std::mutex mutex_;
  std::map<std::string, std::string> documents_;
};

/// The discovery chain + parsed-document cache.
class DiscoveryManager {
public:
  struct Stats {
    std::size_t requests = 0;     ///< discover() calls
    std::size_t cache_hits = 0;   ///< served from cache
    std::size_t fetches = 0;      ///< source fetch attempts
    std::size_t fallbacks = 0;    ///< a non-first source provided the document
  };

  DiscoveryManager() = default;
  DiscoveryManager(const DiscoveryManager&) = delete;
  DiscoveryManager& operator=(const DiscoveryManager&) = delete;

  /// Appends a source; sources are tried in the order added.
  void add_source(std::unique_ptr<MetadataSource> source);

  /// Fetches and parses the document at `locator`, trying each source in
  /// order; caches the parsed result. Throws DiscoveryError when every
  /// source fails, ParseError when the fetched text is not well-formed XML.
  std::shared_ptr<const xml::Document> discover(const std::string& locator);

  /// Drops one cached document (e.g. after a metadata-change notification),
  /// forcing re-fetch on next discovery.
  void invalidate(const std::string& locator);

  void clear_cache();

  Stats stats() const;

private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<MetadataSource>> sources_;
  std::map<std::string, std::shared_ptr<const xml::Document>> cache_;
  Stats stats_;
};

}  // namespace omf::core
