// Metadata discovery: locating the XML document that describes a format.
//
// The paper's architecture (§3, §4.1): discovery is an ordered chain of
// sources — remote (HTTP URL), local file, and compiled-in documents — with
// later sources acting as fault-tolerant fallbacks when earlier ones fail
// ("a system that uses remote discovery as a primary discovery method and
// compiled-in information as a fault-tolerant discovery method can provide
// a useful, if degraded, level of functionality"). Discovered documents are
// cached: discovery happens at stream-subscription time or when metadata
// changes, never per message.
//
// Fault tolerance (beyond the chain's ordering): remote sources sit behind
// a per-source circuit breaker, so a repository that keeps failing is
// skipped — without paying a connect timeout per lookup — until a cooldown
// elapses; and invalidated documents are kept as a stale last-known-good
// copy that is served (flagged in Stats::stale_served) when every source
// fails, implementing the paper's "useful, if degraded, level of
// functionality".
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fault/circuit_breaker.hpp"
#include "util/retry.hpp"
#include "xml/dom.hpp"

namespace omf::core {

/// One place metadata documents can come from.
class MetadataSource {
public:
  virtual ~MetadataSource() = default;

  /// Human-readable source kind ("http", "file", "compiled-in").
  virtual std::string name() const = 0;

  /// True when this source talks to another process/machine and can
  /// therefore fail transiently. Remote sources are guarded by the
  /// discovery manager's circuit breakers; local ones are not.
  virtual bool remote() const { return false; }

  /// True when the locator is of a shape this source could ever serve
  /// (scheme match). A fetch that returns nullopt despite handles() being
  /// true counts as a real failure for breaker accounting.
  virtual bool handles(const std::string& locator) const {
    (void)locator;
    return true;
  }

  /// Returns the document text for `locator`, or nullopt if this source
  /// cannot provide it (wrong scheme, missing file, network failure —
  /// failures are soft; the chain tries the next source).
  virtual std::optional<std::string> fetch(const std::string& locator) = 0;
};

/// Knobs for the HTTP metadata source: how long one fetch (including every
/// retry) may take and how transient failures are retried (exponential
/// backoff with deterministic jitter; a 429/503 Retry-After from the
/// server overrides the schedule, capped by the fetch deadline). Defaults
/// keep the historical behaviour: one attempt, no timeout.
struct HttpSourceOptions {
  RetryPolicy retry{.max_attempts = 1};
  std::chrono::milliseconds fetch_timeout{0};  ///< whole fetch; 0 = none
};

/// Serves "http://..." locators via the HTTP client.
std::unique_ptr<MetadataSource> make_http_source();
std::unique_ptr<MetadataSource> make_http_source(
    const HttpSourceOptions& options);

/// Serves plain paths and "file://..." locators from the filesystem.
std::unique_ptr<MetadataSource> make_file_source();

/// Serves documents registered in-process — the compiled-in fallback. The
/// returned pointer stays valid for registering documents; the unique_ptr
/// owns it.
class CompiledInSource : public MetadataSource {
public:
  std::string name() const override { return "compiled-in"; }
  std::optional<std::string> fetch(const std::string& locator) override;

  /// Registers a document under a locator (any string; typically the same
  /// URL remote discovery would use, so the fallback is transparent).
  void add(const std::string& locator, std::string document_text);

private:
  std::mutex mutex_;
  std::map<std::string, std::string> documents_;
};

/// The discovery chain + parsed-document cache.
class DiscoveryManager {
public:
  /// Deprecated shim: per-instance counters kept for tests. Process-wide
  /// observation should read the registry aggregates ("discovery.requests",
  /// ".cache_hits", ".fetches", ".fallbacks", ".stale_served",
  /// ".breaker_skips" and the "discovery.fetch_ns" histogram).
  struct Stats {
    std::size_t requests = 0;     ///< discover() calls
    std::size_t cache_hits = 0;   ///< served from cache
    std::size_t fetches = 0;      ///< source fetch attempts
    std::size_t fallbacks = 0;    ///< a non-first source provided the document
    std::size_t stale_served = 0;   ///< every source failed; stale copy used
    std::size_t breaker_skips = 0;  ///< sources skipped by an open breaker
  };

  DiscoveryManager() = default;
  DiscoveryManager(const DiscoveryManager&) = delete;
  DiscoveryManager& operator=(const DiscoveryManager&) = delete;

  /// Appends a source; sources are tried in the order added. Remote
  /// sources get a circuit breaker with the current breaker config.
  void add_source(std::unique_ptr<MetadataSource> source);

  /// Replaces the source at `index` (in add order) in place, preserving the
  /// chain's ordering; the replacement gets a fresh breaker if remote. This
  /// is how the plain HTTP source is upgraded to the replicated, two-tier
  /// cached one (metacache::make_cached_http_source) without re-ordering
  /// the fault-tolerance chain. Config-time only: calling this while other
  /// threads are inside discover() is a data race on the snapshot.
  void set_source(std::size_t index, std::unique_ptr<MetadataSource> source);

  /// Breaker config for remote sources. Existing breakers are rebuilt
  /// (losing their state), so call this before the faults start flying.
  void set_breaker_config(const fault::CircuitBreaker::Config& config);

  /// The breaker guarding source `index` (in add order), or nullptr for
  /// local sources. For tests and diagnostics.
  const fault::CircuitBreaker* source_breaker(std::size_t index) const;

  /// Fetches and parses the document at `locator`, trying each source in
  /// order; caches the parsed result. When every source fails but a stale
  /// copy exists (from an earlier invalidate()), the stale copy is served
  /// instead (counted in Stats::stale_served). Throws DiscoveryError when
  /// every source fails and nothing stale is available, ParseError when
  /// the fetched text is not well-formed XML.
  std::shared_ptr<const xml::Document> discover(const std::string& locator);

  /// Drops one cached document (e.g. after a metadata-change notification),
  /// forcing re-fetch on next discovery. The dropped copy is retained as
  /// stale last-known-good metadata for graceful degradation.
  void invalidate(const std::string& locator);

  /// Drops everything, including stale copies.
  void clear_cache();

  Stats stats() const;

private:
  struct SourceEntry {
    std::unique_ptr<MetadataSource> source;
    std::unique_ptr<fault::CircuitBreaker> breaker;  // remote sources only
  };

  mutable std::mutex mutex_;
  std::vector<SourceEntry> sources_;
  fault::CircuitBreaker::Config breaker_config_;
  std::map<std::string, std::shared_ptr<const xml::Document>> cache_;
  std::map<std::string, std::shared_ptr<const xml::Document>> stale_;
  Stats stats_;
};

}  // namespace omf::core
