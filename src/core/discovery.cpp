#include "core/discovery.hpp"

#include <fstream>
#include <sstream>

#include "http/http.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "xml/parser.hpp"

namespace omf::core {

namespace {

// Process-wide discovery aggregates; DiscoveryManager::Stats stays as the
// per-instance view for tests.
struct DiscoveryMetrics {
  obs::Counter& requests;
  obs::Counter& cache_hits;
  obs::Counter& fetches;
  obs::Counter& fallbacks;
  obs::Counter& stale_served;
  obs::Counter& breaker_skips;
  obs::Histogram& fetch_ns;
  static const DiscoveryMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static DiscoveryMetrics m{reg.counter("discovery.requests"),
                              reg.counter("discovery.cache_hits"),
                              reg.counter("discovery.fetches"),
                              reg.counter("discovery.fallbacks"),
                              reg.counter("discovery.stale_served"),
                              reg.counter("discovery.breaker_skips"),
                              reg.histogram("discovery.fetch_ns")};
    return m;
  }
};

class HttpSource : public MetadataSource {
public:
  explicit HttpSource(const HttpSourceOptions& options) : options_(options) {}

  std::string name() const override { return "http"; }
  bool remote() const override { return true; }
  bool handles(const std::string& locator) const override {
    return starts_with(locator, "http://");
  }

  std::optional<std::string> fetch(const std::string& locator) override {
    if (!handles(locator)) return std::nullopt;
    try {
      // Whole-fetch deadline: retries (including any honored Retry-After)
      // must fit inside it, so a throttling origin cannot stretch one
      // discovery past the time the caller budgeted.
      http::Response resp = http::get_with_retry(
          http::Url::parse(locator), {}, options_.retry,
          Deadline::from_timeout(options_.fetch_timeout));
      if (resp.status != 200) {
        OMF_LOG_WARN("discovery", "http ", resp.status, " for ", locator);
        return std::nullopt;
      }
      return std::move(resp.body);
    } catch (const Error& e) {
      OMF_LOG_WARN("discovery", "http fetch failed for ", locator, ": ",
                   e.what());
      return std::nullopt;
    }
  }

private:
  HttpSourceOptions options_;
};

class FileSource : public MetadataSource {
public:
  std::string name() const override { return "file"; }
  bool handles(const std::string& locator) const override {
    return starts_with(locator, "file://") ||
           locator.find("://") == std::string::npos;
  }

  std::optional<std::string> fetch(const std::string& locator) override {
    std::string path = locator;
    if (starts_with(path, "file://")) {
      path = path.substr(7);
    } else if (path.find("://") != std::string::npos) {
      return std::nullopt;  // some other scheme
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

}  // namespace

std::unique_ptr<MetadataSource> make_http_source() {
  return make_http_source(HttpSourceOptions{});
}

std::unique_ptr<MetadataSource> make_http_source(
    const HttpSourceOptions& options) {
  return std::make_unique<HttpSource>(options);
}

std::unique_ptr<MetadataSource> make_file_source() {
  return std::make_unique<FileSource>();
}

std::optional<std::string> CompiledInSource::fetch(const std::string& locator) {
  std::lock_guard lock(mutex_);
  auto it = documents_.find(locator);
  if (it == documents_.end()) return std::nullopt;
  return it->second;
}

void CompiledInSource::add(const std::string& locator,
                           std::string document_text) {
  std::lock_guard lock(mutex_);
  documents_[locator] = std::move(document_text);
}

void DiscoveryManager::add_source(std::unique_ptr<MetadataSource> source) {
  std::lock_guard lock(mutex_);
  SourceEntry entry;
  if (source->remote()) {
    entry.breaker = std::make_unique<fault::CircuitBreaker>(breaker_config_);
  }
  entry.source = std::move(source);
  sources_.push_back(std::move(entry));
}

void DiscoveryManager::set_source(std::size_t index,
                                  std::unique_ptr<MetadataSource> source) {
  std::lock_guard lock(mutex_);
  if (index >= sources_.size()) {
    throw Error("set_source: no source at index " + std::to_string(index));
  }
  SourceEntry entry;
  if (source->remote()) {
    entry.breaker = std::make_unique<fault::CircuitBreaker>(breaker_config_);
  }
  entry.source = std::move(source);
  sources_[index] = std::move(entry);
}

void DiscoveryManager::set_breaker_config(
    const fault::CircuitBreaker::Config& config) {
  std::lock_guard lock(mutex_);
  breaker_config_ = config;
  for (SourceEntry& entry : sources_) {
    if (entry.source->remote()) {
      entry.breaker = std::make_unique<fault::CircuitBreaker>(config);
    }
  }
}

const fault::CircuitBreaker* DiscoveryManager::source_breaker(
    std::size_t index) const {
  std::lock_guard lock(mutex_);
  if (index >= sources_.size()) return nullptr;
  return sources_[index].breaker.get();
}

std::shared_ptr<const xml::Document> DiscoveryManager::discover(
    const std::string& locator) {
  const DiscoveryMetrics& metrics = DiscoveryMetrics::get();
  metrics.requests.add();
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    auto it = cache_.find(locator);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      metrics.cache_hits.add();
      return it->second;
    }
    if (sources_.empty()) {
      throw DiscoveryError("no metadata sources configured");
    }
  }

  // Cache miss means real discovery work: always traced (rare, ms-scale).
  obs::ScopedSpan span(obs::Phase::kDiscover, locator);

  // Fetch outside the lock: sources may block on the network.
  std::optional<std::string> text;
  std::string provider;
  std::size_t attempts = 0;
  std::size_t breaker_skips = 0;
  {
    // Snapshot the chain; sources are add-only, and breakers are only
    // replaced by set_breaker_config (documented as config-time-only), so
    // the raw pointers stay valid while we fetch unlocked.
    std::vector<std::pair<MetadataSource*, fault::CircuitBreaker*>> chain;
    {
      std::lock_guard lock(mutex_);
      for (const auto& entry : sources_) {
        chain.emplace_back(entry.source.get(), entry.breaker.get());
      }
    }
    for (auto [source, breaker] : chain) {
      bool applicable = source->handles(locator);
      if (breaker && applicable && !breaker->allow()) {
        ++breaker_skips;
        OMF_LOG_INFO("discovery", "source '", source->name(),
                     "' breaker open; skipping ", locator);
        continue;
      }
      ++attempts;
      metrics.fetches.add();
      {
        obs::ScopedTimer timer(metrics.fetch_ns);
        text = source->fetch(locator);
      }
      if (breaker && applicable) {
        if (text) {
          breaker->record_success();
        } else {
          breaker->record_failure();
        }
      }
      if (text) {
        provider = source->name();
        break;
      }
      OMF_LOG_INFO("discovery", "source '", source->name(),
                   "' could not provide ", locator, "; trying next");
    }
  }
  if (breaker_skips > 0) metrics.breaker_skips.add(breaker_skips);
  if (!text) {
    std::lock_guard lock(mutex_);
    stats_.fetches += attempts;
    stats_.breaker_skips += breaker_skips;
    auto it = stale_.find(locator);
    if (it != stale_.end()) {
      // Graceful degradation: every source failed, but we have seen this
      // document before — serve the last-known-good copy rather than
      // failing the subscription outright.
      ++stats_.stale_served;
      metrics.stale_served.add();
      obs::Tracer::instance().mark_trace(obs::current_trace_id(),
                                         "stale_served");
      OMF_LOG_WARN("discovery", "all sources failed for ", locator,
                   "; serving stale metadata");
      return it->second;
    }
    throw DiscoveryError("no source could provide metadata for '" + locator +
                         "' (" + std::to_string(attempts) + " sources tried)");
  }

  auto doc = std::make_shared<xml::Document>(xml::parse(*text));

  std::lock_guard lock(mutex_);
  stats_.fetches += attempts;
  stats_.breaker_skips += breaker_skips;
  if (attempts > 1) {
    ++stats_.fallbacks;
    metrics.fallbacks.add();
  }
  cache_[locator] = doc;
  stale_.erase(locator);  // fresh copy supersedes the stale one
  OMF_LOG_INFO("discovery", "discovered ", locator, " via ", provider);
  return doc;
}

void DiscoveryManager::invalidate(const std::string& locator) {
  std::lock_guard lock(mutex_);
  auto it = cache_.find(locator);
  if (it != cache_.end()) {
    stale_[locator] = std::move(it->second);
    cache_.erase(it);
  }
}

void DiscoveryManager::clear_cache() {
  std::lock_guard lock(mutex_);
  cache_.clear();
  stale_.clear();
}

DiscoveryManager::Stats DiscoveryManager::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace omf::core
