#include "core/discovery.hpp"

#include <fstream>
#include <sstream>

#include "http/http.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "xml/parser.hpp"

namespace omf::core {

namespace {

class HttpSource : public MetadataSource {
public:
  std::string name() const override { return "http"; }

  std::optional<std::string> fetch(const std::string& locator) override {
    if (!starts_with(locator, "http://")) return std::nullopt;
    try {
      http::Response resp = http::get(locator);
      if (resp.status != 200) {
        OMF_LOG_WARN("discovery", "http ", resp.status, " for ", locator);
        return std::nullopt;
      }
      return std::move(resp.body);
    } catch (const Error& e) {
      OMF_LOG_WARN("discovery", "http fetch failed for ", locator, ": ",
                   e.what());
      return std::nullopt;
    }
  }
};

class FileSource : public MetadataSource {
public:
  std::string name() const override { return "file"; }

  std::optional<std::string> fetch(const std::string& locator) override {
    std::string path = locator;
    if (starts_with(path, "file://")) {
      path = path.substr(7);
    } else if (path.find("://") != std::string::npos) {
      return std::nullopt;  // some other scheme
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

}  // namespace

std::unique_ptr<MetadataSource> make_http_source() {
  return std::make_unique<HttpSource>();
}

std::unique_ptr<MetadataSource> make_file_source() {
  return std::make_unique<FileSource>();
}

std::optional<std::string> CompiledInSource::fetch(const std::string& locator) {
  std::lock_guard lock(mutex_);
  auto it = documents_.find(locator);
  if (it == documents_.end()) return std::nullopt;
  return it->second;
}

void CompiledInSource::add(const std::string& locator,
                           std::string document_text) {
  std::lock_guard lock(mutex_);
  documents_[locator] = std::move(document_text);
}

void DiscoveryManager::add_source(std::unique_ptr<MetadataSource> source) {
  std::lock_guard lock(mutex_);
  sources_.push_back(std::move(source));
}

std::shared_ptr<const xml::Document> DiscoveryManager::discover(
    const std::string& locator) {
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    auto it = cache_.find(locator);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
    if (sources_.empty()) {
      throw DiscoveryError("no metadata sources configured");
    }
  }

  // Fetch outside the lock: sources may block on the network.
  std::optional<std::string> text;
  std::string provider;
  std::size_t attempts = 0;
  {
    // Snapshot the chain; sources are add-only.
    std::vector<MetadataSource*> chain;
    {
      std::lock_guard lock(mutex_);
      for (const auto& s : sources_) chain.push_back(s.get());
    }
    for (MetadataSource* source : chain) {
      ++attempts;
      text = source->fetch(locator);
      if (text) {
        provider = source->name();
        break;
      }
      OMF_LOG_INFO("discovery", "source '", source->name(),
                   "' could not provide ", locator, "; trying next");
    }
  }
  if (!text) {
    throw DiscoveryError("no source could provide metadata for '" + locator +
                         "' (" + std::to_string(attempts) + " sources tried)");
  }

  auto doc = std::make_shared<xml::Document>(xml::parse(*text));

  std::lock_guard lock(mutex_);
  stats_.fetches += attempts;
  if (attempts > 1) ++stats_.fallbacks;
  cache_[locator] = doc;
  OMF_LOG_INFO("discovery", "discovered ", locator, " via ", provider);
  return doc;
}

void DiscoveryManager::invalidate(const std::string& locator) {
  std::lock_guard lock(mutex_);
  cache_.erase(locator);
}

void DiscoveryManager::clear_cache() {
  std::lock_guard lock(mutex_);
  cache_.clear();
}

DiscoveryManager::Stats DiscoveryManager::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace omf::core
