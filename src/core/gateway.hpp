// Gateway re-encoding: converting messages between architecture-specific
// wire formats at an intermediary.
//
// Most NDR deployments never convert in the middle — the receiver makes
// right. But §4.4's format-scoping broker, and any bridge feeding a fleet
// of identical thin clients, may prefer to burn broker CPU once instead of
// client CPU N times: take an incoming message in whatever format the
// producer used, and re-emit it as the byte-exact message a sender on the
// *client's* architecture would have produced, so every client takes its
// zero-copy homogeneous path.
//
// Built entirely from existing pieces: plan-driven decode into a
// DynamicRecord, then wire synthesis for the target format.
#pragma once

#include <string>

#include "analysis/diagnostics.hpp"
#include "pbio/decode.hpp"
#include "pbio/format.hpp"
#include "pbio/record.hpp"

namespace omf::core {

class Gateway {
public:
  /// `registry` must know (or learn, via discovery/format service) every
  /// wire format the gateway will see. `staging` is the native-profile
  /// format records are staged through; `target` is the outgoing wire
  /// format (any profile). Fields are matched by name in both hops.
  /// `shared_plans` optionally shares a process-wide conversion-plan cache
  /// with other gateways/decoders (see pbio::PlanCache).
  Gateway(pbio::FormatRegistry& registry, pbio::FormatHandle staging,
          pbio::FormatHandle target,
          std::shared_ptr<pbio::PlanCache> shared_plans = nullptr);

  /// Converts one message. Throws DecodeError/FormatError per the decode
  /// and synthesis rules.
  Buffer convert(std::span<const std::uint8_t> message);

  /// Converts a burst in one pass: maximal runs of consecutive messages
  /// sharing a wire format decode through Decoder::decode_batch (one header
  /// parse + plan lookup + op walk per run, not per message) before
  /// re-encoding; messages already in the target format pass through as in
  /// convert(). Output order matches input order. The batch scratch (struct
  /// block + arena) is retained across calls, so a steady-state forwarding
  /// loop allocates nothing here once warm.
  std::vector<Buffer> convert_batch(
      std::span<const std::span<const std::uint8_t>> messages);

  /// Audit policy applied to register_remote_format. A gateway sits at a
  /// trust boundary, so the default is reject-on-error.
  void set_audit_policy(const analysis::AuditPolicy& policy) noexcept {
    audit_policy_ = policy;
  }
  const analysis::AuditPolicy& audit_policy() const noexcept {
    return audit_policy_;
  }

  /// Learns a producer's wire format from a serialized metadata bundle.
  /// The raw descriptors are statically audited *before* registration;
  /// a bundle with error-severity findings is rejected atomically with
  /// analysis::AuditError (structured diagnostics, nothing registered).
  /// Returns the bundle's top-level format.
  pbio::FormatHandle register_remote_format(
      std::span<const std::uint8_t> bundle);

  /// Peer label charged for this gateway's decode time in the attribution
  /// family (obs/attribution.hpp). Defaults to "local"; a forwarding loop
  /// serving one upstream sets it to that peer's address.
  void set_peer(std::string peer) { peer_ = std::move(peer); }
  const std::string& peer() const noexcept { return peer_; }

  /// Messages converted so far.
  std::size_t converted() const noexcept { return converted_; }

  /// Fast-path statistics: messages already in the target format are
  /// passed through untouched (no decode, no re-encode).
  std::size_t passed_through() const noexcept { return passed_through_; }

  /// One-call aggregate of this gateway's health: message counts plus the
  /// plan-cache view its decoder sees (shared or private). The process-wide
  /// picture — transport bytes, discovery, breaker state — lives in
  /// obs::stats_snapshot(); this struct is the per-gateway slice.
  struct StatsSnapshot {
    std::size_t converted = 0;
    std::size_t passed_through = 0;
    std::size_t cached_plans = 0;
    pbio::PlanCache::Stats plans;
  };
  StatsSnapshot stats_snapshot() const;

private:
  pbio::FormatRegistry* registry_;
  pbio::Decoder decoder_;
  pbio::FormatHandle staging_;
  pbio::FormatHandle target_;
  pbio::DynamicRecord scratch_;
  std::vector<std::uint8_t> batch_structs_;
  std::vector<void*> batch_ptrs_;
  pbio::DecodeArena batch_arena_;
  analysis::AuditPolicy audit_policy_;
  std::string peer_ = "local";
  std::size_t converted_ = 0;
  std::size_t passed_through_ = 0;
};

}  // namespace omf::core
