#include "core/http_formats.hpp"

#include "arch/profile.hpp"
#include "pbio/metaserde.hpp"
#include "schema/generator.hpp"
#include "util/error.hpp"

namespace omf::core {

std::string format_id_hex(pbio::FormatId id) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[id & 0xF];
    id >>= 4;
  }
  return out;
}

HttpFormatPublisher::HttpFormatPublisher(http::Server& server,
                                         std::string prefix)
    : server_(&server), prefix_(std::move(prefix)) {
  if (prefix_.empty() || prefix_.front() != '/' || prefix_.back() != '/') {
    throw Error("format publisher prefix must start and end with '/'");
  }
}

std::string HttpFormatPublisher::publish(const pbio::Format& format) {
  std::string hex = format_id_hex(format.id());

  Buffer bundle = pbio::serialize_format_bundle(format);
  server_->put_document(
      prefix_ + hex,
      std::string(reinterpret_cast<const char*>(bundle.data()),
                  bundle.size()),
      "application/octet-stream");

  if (format.profile() == arch::native()) {
    // The open, human-readable rendition (only meaningful where the XSD
    // type names map cleanly, i.e. this machine's ABI).
    server_->put_document(prefix_ + hex + ".xml",
                          schema::generate_schema_text(format), "text/xml");
  }
  return server_->url_for(prefix_ + hex);
}

pbio::FormatHandle HttpFormatResolver::resolve(pbio::FormatRegistry& registry,
                                               pbio::FormatId id) const {
  http::Response resp = http::get(base_url_ + format_id_hex(id));
  if (resp.status == 404) return nullptr;
  if (resp.status != 200) {
    throw TransportError("format server returned HTTP " +
                         std::to_string(resp.status));
  }
  return pbio::deserialize_format_bundle(
      registry, {reinterpret_cast<const std::uint8_t*>(resp.body.data()),
                 resp.body.size()});
}

void HttpFormatResolver::decode_resolving(
    pbio::Decoder& decoder, pbio::FormatRegistry& registry,
    std::span<const std::uint8_t> message, const pbio::Format& native,
    void* out_struct, pbio::DecodeArena& arena) const {
  pbio::FormatId id = pbio::Decoder::peek_format_id(message);
  if (!registry.by_id(id)) {
    if (!resolve(registry, id)) {
      throw FormatError("wire format " + format_id_hex(id) +
                        " is unknown locally and to the format server");
    }
  }
  decoder.decode(message, native, out_struct, arena);
}

}  // namespace omf::core
