#include "core/classify.hpp"

#include <algorithm>

#include "pbio/decode.hpp"
#include "xml/parser.hpp"

namespace omf::core {

namespace {

using schema::Occurs;
using schema::SchemaDocument;
using schema::SchemaElement;
using schema::SchemaType;

struct Tally {
  std::size_t matched = 0;
  std::size_t missing = 0;
  std::size_t unexpected = 0;
};

void match_region(const xml::Node& node, const SchemaType& type,
                  const SchemaDocument& doc, Tally& tally, int depth) {
  if (depth > 16) return;  // defensive bound on recursive schemas

  for (const SchemaElement& e : type.elements) {
    std::vector<const xml::Node*> occurrences = node.child_elements(e.name);
    if (occurrences.empty()) {
      // Zero occurrences are legitimate for dynamic arrays.
      if (e.occurs.kind == Occurs::Kind::kDynamicSized ||
          e.occurs.kind == Occurs::Kind::kDynamicUnbounded) {
        ++tally.matched;
      } else {
        ++tally.missing;
      }
      continue;
    }
    // Occurrence-count plausibility: a static array should appear exactly
    // `count` times, a scalar once.
    bool count_ok = true;
    switch (e.occurs.kind) {
      case Occurs::Kind::kScalar:
        count_ok = occurrences.size() == 1;
        break;
      case Occurs::Kind::kStatic:
        count_ok = occurrences.size() == e.occurs.count;
        break;
      default:
        break;
    }
    if (!count_ok) {
      ++tally.missing;  // structurally present but with the wrong shape
      continue;
    }
    ++tally.matched;
    if (!e.is_primitive) {
      if (const SchemaType* nested = doc.type_named(e.user_type)) {
        match_region(*occurrences[0], *nested, doc, tally, depth + 1);
      }
    }
  }

  for (const xml::Node* child : node.child_elements()) {
    if (type.element_named(child->name()) == nullptr) {
      ++tally.unexpected;
    }
  }
}

}  // namespace

std::vector<MatchScore> classify_text_message(const xml::Node& message_root,
                                              const SchemaDocument& candidates) {
  std::vector<MatchScore> out;
  out.reserve(candidates.types.size());
  for (const SchemaType& type : candidates.types) {
    Tally tally;
    match_region(message_root, type, candidates, tally, 0);
    MatchScore score;
    score.type_name = type.name;
    score.matched = tally.matched;
    score.missing = tally.missing;
    score.unexpected = tally.unexpected;
    std::size_t total = tally.matched + tally.missing + tally.unexpected;
    score.score = total == 0 ? 0.0
                             : static_cast<double>(tally.matched) /
                                   static_cast<double>(total);
    out.push_back(std::move(score));
  }
  const std::string& root_name = message_root.name();
  std::stable_sort(out.begin(), out.end(),
                   [&](const MatchScore& a, const MatchScore& b) {
                     if (a.score != b.score) return a.score > b.score;
                     bool a_named = a.type_name == root_name;
                     bool b_named = b.type_name == root_name;
                     if (a_named != b_named) return a_named;
                     return a.type_name < b.type_name;
                   });
  return out;
}

std::vector<MatchScore> classify_text_message(
    std::string_view text, const SchemaDocument& candidates) {
  xml::Document doc = xml::parse(text);
  return classify_text_message(*doc.root, candidates);
}

pbio::FormatHandle classify_wire_message(
    const pbio::FormatRegistry& registry,
    std::span<const std::uint8_t> message) {
  return registry.by_id(pbio::Decoder::peek_format_id(message));
}

}  // namespace omf::core
