#include "core/stream.hpp"

#include "pbio/decode.hpp"
#include "util/logging.hpp"

namespace omf::core {

StreamSubscriber::StreamSubscriber(Context& ctx,
                                   transport::EventBackbone& backbone,
                                   const std::string& channel,
                                   const std::string& type_name)
    : ctx_(&ctx), channel_(channel), type_name_(type_name) {
  auto locator = backbone.metadata_locator(channel);
  if (!locator) {
    throw DiscoveryError("channel '" + channel +
                         "' has not announced a metadata locator");
  }
  locator_ = *locator;
  // Subscribe before discovery so no message published during the
  // (possibly remote) metadata fetch is missed.
  subscription_ = backbone.subscribe(channel);
  format_ = ctx.discover_format(locator_, type_name);
}

pbio::DynamicRecord StreamSubscriber::decode(const Buffer& message) {
  pbio::FormatId id = pbio::Decoder::peek_format_id(message.span());
  if (!ctx_->registry().by_id(id)) {
    // Unknown wire format: the stream's metadata changed, or the sender
    // has a different ABI. React at run time, as §4.3 prescribes.
    OMF_LOG_INFO("stream", "channel '", channel_, "': unknown wire format ",
                 id, "; re-discovering metadata");
    ++rediscoveries_;
    ctx_->discovery().invalidate(locator_);
    ctx_->discover_and_register(locator_);
    if (auto latest = ctx_->registry().by_name(type_name_)) {
      format_ = latest;  // adopt the newest native view of the type
    }
    if (!ctx_->registry().by_id(id) && fallback_) {
      fallback_(ctx_->registry(), id);
    }
    if (!ctx_->registry().by_id(id)) {
      throw FormatError("channel '" + channel_ + "': wire format " +
                        std::to_string(id) +
                        " could not be resolved from '" + locator_ +
                        "' or the configured fallback");
    }
  }
  pbio::DynamicRecord record(format_);
  record.from_wire(ctx_->decoder(), message.span());
  return record;
}

std::optional<pbio::DynamicRecord> StreamSubscriber::receive() {
  auto message = subscription_.receive();
  if (!message) return std::nullopt;
  return decode(*message);
}

std::optional<pbio::DynamicRecord> StreamSubscriber::try_receive() {
  auto message = subscription_.try_receive();
  if (!message) return std::nullopt;
  return decode(*message);
}

}  // namespace omf::core
