#include "core/context.hpp"

#include "util/error.hpp"

namespace omf::core {

Context::Context(std::shared_ptr<pbio::PlanCache> shared_plans)
    : xml2wire_(registry_, arch::native()),
      decoder_(registry_, std::move(shared_plans)) {
  discovery_.add_source(make_http_source());
  discovery_.add_source(make_file_source());
  auto compiled = std::make_unique<CompiledInSource>();
  compiled_in_ = compiled.get();
  discovery_.add_source(std::move(compiled));
}

std::vector<pbio::FormatHandle> Context::discover_and_register(
    const std::string& locator) {
  std::shared_ptr<const xml::Document> doc = discovery_.discover(locator);
  return xml2wire_.register_document(*doc);
}

pbio::FormatHandle Context::discover_format(const std::string& locator,
                                            const std::string& type_name) {
  std::vector<pbio::FormatHandle> handles = discover_and_register(locator);
  for (const pbio::FormatHandle& h : handles) {
    if (h->name() == type_name) return h;
  }
  throw FormatError("metadata document '" + locator +
                    "' does not define complexType '" + type_name + "'");
}

void Context::check_binding(const pbio::FormatHandle& format,
                            std::size_t struct_size,
                            std::size_t alignment) const {
  if (!format) throw FormatError("bind: null format handle");
  if (!(format->profile() == arch::native())) {
    throw FormatError("bind: format '" + format->name() +
                      "' targets profile '" + format->profile().name +
                      "', not this machine");
  }
  if (format->struct_size() != struct_size) {
    throw FormatError(
        "bind: compiled struct is " + std::to_string(struct_size) +
        " bytes but format '" + format->name() + "' describes " +
        std::to_string(format->struct_size()) +
        " bytes — the metadata and the struct definition disagree");
  }
  if (format->alignment() > alignment) {
    throw FormatError("bind: format '" + format->name() +
                      "' requires stricter alignment than the compiled "
                      "struct provides");
  }
}

}  // namespace omf::core
