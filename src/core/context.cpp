#include "core/context.hpp"

#include "analysis/audit_format.hpp"
#include "analysis/audit_schema.hpp"
#include "analysis/verify_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "pbio/metaserde.hpp"
#include "schema/reader.hpp"
#include "util/error.hpp"

namespace omf::core {

namespace {
/// A context decodes wire data from peers it did not author, so its plans
/// must carry a bounds certificate before the cache serves them — the same
/// trust-boundary posture as the audit policy's reject-on-error default.
pbio::PlanOptions verified_plan_options() {
  analysis::install_plan_verifier();
  pbio::PlanOptions options;
  options.verify = true;
  return options;
}
}  // namespace

Context::Context(std::shared_ptr<pbio::PlanCache> shared_plans)
    : xml2wire_(registry_, arch::native()),
      decoder_(registry_, std::move(shared_plans), verified_plan_options()) {
  // Honor OMF_FLIGHT_RECORDER from the first pipeline, not the first
  // anomaly: the black box should already be rolling when trouble starts.
  obs::FlightRecorder::installed();
  discovery_.add_source(make_http_source());
  discovery_.add_source(make_file_source());
  auto compiled = std::make_unique<CompiledInSource>();
  compiled_in_ = compiled.get();
  discovery_.add_source(std::move(compiled));
}

std::vector<pbio::FormatHandle> Context::discover_and_register(
    const std::string& locator) {
  std::shared_ptr<const xml::Document> doc = discovery_.discover(locator);
  schema::SchemaDocument model = schema::read_schema(*doc);
  if (audit_policy_.enabled) {
    std::vector<analysis::Diagnostic> diags = analysis::audit_schema(model);
    std::vector<analysis::Diagnostic> dom = analysis::audit_schema_xml(*doc);
    diags.insert(diags.end(), std::make_move_iterator(dom.begin()),
                 std::make_move_iterator(dom.end()));
    analysis::enforce(locator, diags, audit_policy_);
  }
  return xml2wire_.register_schema(model);
}

pbio::FormatHandle Context::register_remote_bundle(
    std::span<const std::uint8_t> bundle) {
  if (audit_policy_.enabled) {
    std::vector<pbio::RawFormat> raws = pbio::decode_format_bundle(bundle);
    std::vector<analysis::FormatDescriptor> set;
    set.reserve(raws.size());
    for (const pbio::RawFormat& raw : raws) {
      set.push_back(analysis::describe(raw));
    }
    // Earlier registrations may satisfy references the bundle omits.
    analysis::enforce(set.empty() ? "format bundle" : set.back().name,
                      analysis::audit_formats(set, &registry_),
                      audit_policy_);
  }
  return pbio::deserialize_format_bundle(registry_, bundle);
}

pbio::FormatHandle Context::discover_format(const std::string& locator,
                                            const std::string& type_name) {
  std::vector<pbio::FormatHandle> handles = discover_and_register(locator);
  for (const pbio::FormatHandle& h : handles) {
    if (h->name() == type_name) return h;
  }
  throw FormatError("metadata document '" + locator +
                    "' does not define complexType '" + type_name + "'");
}

void Context::check_binding(const pbio::FormatHandle& format,
                            std::size_t struct_size,
                            std::size_t alignment) const {
  if (!format) throw FormatError("bind: null format handle");
  if (!(format->profile() == arch::native())) {
    throw FormatError("bind: format '" + format->name() +
                      "' targets profile '" + format->profile().name +
                      "', not this machine");
  }
  if (format->struct_size() != struct_size) {
    throw FormatError(
        "bind: compiled struct is " + std::to_string(struct_size) +
        " bytes but format '" + format->name() + "' describes " +
        std::to_string(format->struct_size()) +
        " bytes — the metadata and the struct definition disagree");
  }
  if (format->alignment() > alignment) {
    throw FormatError("bind: format '" + format->name() +
                      "' requires stricter alignment than the compiled "
                      "struct provides");
  }
}

}  // namespace omf::core
