// Format metadata over HTTP (the paper's future-work item: "a format
// registration mechanism on top of PBIO that incorporates the HTTP
// protocol so that the XML descriptions of PBIO formats can be retrieved
// from remote locations in the same manner that web browsers retrieve
// other XML documents").
//
// Two representations are published per format, at stable URLs derived
// from the format id:
//   <prefix><16-hex-id>       binary metadata bundle (self-contained,
//                             includes nested subformats)
//   <prefix><16-hex-id>.xml   the XML Schema document (human-readable,
//                             native-profile formats only)
//
// HttpFormatResolver gives receivers the missing half of the unknown-id
// story: peek the id off an undecodable message, GET the bundle, register,
// decode — without the custom TCP protocol of transport::FormatService.
#pragma once

#include <string>

#include "http/http.hpp"
#include "pbio/decode.hpp"
#include "pbio/format.hpp"

namespace omf::core {

/// Formats a format id as the 16-digit lowercase hex used in URLs.
std::string format_id_hex(pbio::FormatId id);

/// Publishes formats on an existing HTTP server.
class HttpFormatPublisher {
public:
  explicit HttpFormatPublisher(http::Server& server,
                               std::string prefix = "/formats/");

  /// Publishes the binary bundle (and, for native-profile formats, the XML
  /// Schema rendition). Returns the bundle URL.
  std::string publish(const pbio::Format& format);

  const std::string& prefix() const noexcept { return prefix_; }

private:
  http::Server* server_;
  std::string prefix_;
};

/// Fetches format bundles by id from a publisher's URL space.
class HttpFormatResolver {
public:
  /// `base_url` is the publisher's prefix URL, e.g.
  /// "http://127.0.0.1:8080/formats/".
  explicit HttpFormatResolver(std::string base_url)
      : base_url_(std::move(base_url)) {}

  /// Fetches and registers the format for `id`. Returns nullptr when the
  /// server does not know the id; throws TransportError when the server is
  /// unreachable and DecodeError on corrupt bundles.
  pbio::FormatHandle resolve(pbio::FormatRegistry& registry,
                             pbio::FormatId id) const;

  /// Decodes `message` into `out_struct`, resolving the wire format over
  /// HTTP first if the registry does not know it. The convenience wrapper
  /// for receive loops. Throws FormatError if resolution fails.
  void decode_resolving(pbio::Decoder& decoder,
                        pbio::FormatRegistry& registry,
                        std::span<const std::uint8_t> message,
                        const pbio::Format& native, void* out_struct,
                        pbio::DecodeArena& arena) const;

private:
  std::string base_url_;
};

}  // namespace omf::core
