// The assembled xml2wire runtime: registry + discovery chain + schema
// compiler + decoder, plus the binding step that ties a discovered format
// to concrete program data.
//
// This is the API an application uses end to end:
//
//   omf::core::Context ctx;
//   ctx.compiled_in().add("http://meta/flight.xml", kFallbackSchema);
//   auto format = ctx.discover_format("http://meta/flight.xml", "Flight");
//   auto channel = ctx.bind<FlightStruct>(format);     // binding
//   Buffer wire = channel.encode(&my_flight);          // marshaling
//   ...
//   FlightStruct out;
//   pbio::DecodeArena arena;
//   channel.decode(wire.span(), &out, arena);
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/discovery.hpp"
#include "core/xml2wire.hpp"
#include "pbio/decode.hpp"
#include "pbio/encode.hpp"
#include "pbio/record.hpp"

namespace omf::core {

/// The result of the *binding* step: a format descriptor usable for
/// marshaling. Lightweight and copyable; shares the context's decoder and
/// its conversion-plan cache.
class Marshaler {
public:
  Marshaler(pbio::Decoder& decoder, pbio::FormatHandle format)
      : decoder_(&decoder), format_(std::move(format)) {}

  const pbio::Format& format() const noexcept { return *format_; }
  const pbio::FormatHandle& handle() const noexcept { return format_; }

  /// Marshals a struct laid out per format().
  Buffer encode(const void* data) const { return pbio::encode(*format_, data); }
  void encode(const void* data, Buffer& out) const {
    pbio::encode(*format_, data, out);
  }

  /// Unmarshals any convertible wire message into `out_struct`.
  void decode(std::span<const std::uint8_t> message, void* out_struct,
              pbio::DecodeArena& arena) const {
    decoder_->decode(message, *format_, out_struct, arena);
  }

  /// Zero-copy homogeneous decode (see pbio::Decoder::decode_in_place).
  void* decode_in_place(std::uint8_t* message, std::size_t len) const {
    return pbio::Decoder::decode_in_place(*format_, message, len);
  }

  /// A zeroed DynamicRecord of this format.
  pbio::DynamicRecord make_record() const {
    return pbio::DynamicRecord(format_);
  }

private:
  pbio::Decoder* decoder_;
  pbio::FormatHandle format_;
};

class Context {
public:
  /// Builds the standard discovery chain: HTTP, then local files, then
  /// compiled-in documents (the fault-tolerance ordering of §3.3).
  /// `shared_plans` lets several contexts (or other decoders in the same
  /// process) share one conversion-plan cache, so a plan is compiled once
  /// per format pair process-wide; nullptr keeps a private cache.
  explicit Context(std::shared_ptr<pbio::PlanCache> shared_plans = nullptr);
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  pbio::FormatRegistry& registry() noexcept { return registry_; }
  DiscoveryManager& discovery() noexcept { return discovery_; }
  CompiledInSource& compiled_in() noexcept { return *compiled_in_; }
  Xml2Wire& xml2wire() noexcept { return xml2wire_; }
  pbio::Decoder& decoder() noexcept { return decoder_; }

  /// Metadata audit policy. Discovered documents and remote bundles are
  /// audited before registration; with the default policy, metadata the
  /// analyzer proves unsafe is rejected (analysis::AuditError carries the
  /// full diagnostic list) and merely-suspicious metadata is logged.
  void set_audit_policy(const analysis::AuditPolicy& policy) noexcept {
    audit_policy_ = policy;
  }
  const analysis::AuditPolicy& audit_policy() const noexcept {
    return audit_policy_;
  }

  /// Discovery + registration in one step: fetches the metadata document at
  /// `locator` (through the source chain), compiles it, audits it per the
  /// audit policy, registers every complexType, and returns the handles.
  std::vector<pbio::FormatHandle> discover_and_register(
      const std::string& locator);

  /// Registers a serialized format bundle received from a remote peer
  /// (format service, gateway hand-off). The raw descriptors are audited
  /// *before* anything is registered — with the default policy a bad bundle
  /// is rejected atomically, leaving the registry untouched. Returns the
  /// bundle's top-level format.
  pbio::FormatHandle register_remote_bundle(
      std::span<const std::uint8_t> bundle);

  /// Like discover_and_register, returning just the named type. Throws
  /// FormatError if the document does not define it.
  pbio::FormatHandle discover_format(const std::string& locator,
                                     const std::string& type_name);

  /// Binding with a compile-time layout check: the compiled struct and the
  /// discovered metadata must agree on the total size (the cheap invariant
  /// a programmer-supplied binding can verify; per the paper, deeper
  /// compatibility is the metadata author's contract).
  template <typename T>
  Marshaler bind(const pbio::FormatHandle& format) {
    check_binding(format, sizeof(T), alignof(T));
    return Marshaler(decoder_, format);
  }

  /// Binding for metadata-only records (DynamicRecord carries its own
  /// layout, so no size check is possible or needed).
  Marshaler bind_dynamic(const pbio::FormatHandle& format) {
    return Marshaler(decoder_, format);
  }

private:
  void check_binding(const pbio::FormatHandle& format, std::size_t struct_size,
                     std::size_t alignment) const;

  pbio::FormatRegistry registry_;
  DiscoveryManager discovery_;
  CompiledInSource* compiled_in_;  // owned by discovery_'s chain
  Xml2Wire xml2wire_;
  pbio::Decoder decoder_;
  analysis::AuditPolicy audit_policy_;
};

}  // namespace omf::core
