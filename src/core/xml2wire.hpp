// xml2wire: the paper's primary contribution.
//
// Converts XML Schema metadata documents into registered PBIO formats. Two
// modules, as in the paper (§4.2.1): the parsing module (src/xml +
// src/schema) builds an internal representation of each format; this module
// converts that representation into the native metadata of the underlying
// BCM (PBIO) and registers it, computing per-architecture field sizes and
// offsets the same way the target machine's C compiler would.
//
// Field size is *not* present in the XML metadata — "integer" is whatever
// width the target profile's C int has — which is exactly the architecture
// independence the paper claims for run-time (vs compile-time) metadata
// tools. Offsets come from the profile's struct-layout rules (the paper
// used a C++ template over each concrete type; a run-time layout calculator
// is the equivalent for formats that exist only as metadata).
#pragma once

#include <string_view>
#include <vector>

#include "arch/profile.hpp"
#include "pbio/format.hpp"
#include "schema/model.hpp"
#include "xml/dom.hpp"

namespace omf::core {

class Xml2Wire {
public:
  /// Registers formats into `registry` (which must outlive this object),
  /// laid out for `profile` — the native profile for real use; a foreign
  /// profile to model what a remote sender would register.
  explicit Xml2Wire(pbio::FormatRegistry& registry,
                    const arch::Profile& profile = arch::native())
      : registry_(&registry), profile_(profile) {}

  /// Parses a metadata document and registers every complexType, in
  /// document order (so later types can nest earlier ones). Returns the
  /// registered formats, one per complexType.
  std::vector<pbio::FormatHandle> register_document(const xml::Document& doc);

  /// Convenience: parse text, then register_document.
  std::vector<pbio::FormatHandle> register_text(std::string_view xml_text);

  /// Registers every type of an already-read schema.
  std::vector<pbio::FormatHandle> register_schema(
      const schema::SchemaDocument& doc);

  /// Registers one type. Referenced user types must already be registered
  /// (in this document earlier, or previously) — the Catalog discipline of
  /// the paper. Throws FormatError otherwise.
  pbio::FormatHandle register_type(const schema::SchemaType& type);

  const arch::Profile& profile() const noexcept { return profile_; }
  pbio::FormatRegistry& registry() const noexcept { return *registry_; }

  /// Name used for the synthesized count field of a maxOccurs="*" array.
  static std::string implicit_count_name(std::string_view element_name) {
    return std::string(element_name) + "_count";
  }

private:
  pbio::FormatRegistry* registry_;
  arch::Profile profile_;
};

}  // namespace omf::core
