// Metadata-aware stream subscription.
//
// Packages the subscriber-side lifecycle the paper describes: at
// subscription time, discover the channel's announced metadata and
// register it; per message, decode into the subscriber's native view; when
// a message arrives in an unknown wire format (the stream's metadata
// changed, or the sender runs a different ABI), react at run time —
// re-discover the XML document, then fall back to a caller-provided
// resolver (format service / HTTP format server) — and continue. No
// recompilation, no downtime.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/context.hpp"
#include "transport/backbone.hpp"

namespace omf::core {

class StreamSubscriber {
public:
  /// Resolves a wire format id the XML metadata didn't cover (e.g. a
  /// foreign-architecture sender). Returns true if the id is now in the
  /// registry. See HttpFormatResolver / transport::FormatServiceClient.
  using FormatFallback =
      std::function<bool(pbio::FormatRegistry&, pbio::FormatId)>;

  /// Subscribes to `channel` and discovers its announced metadata. The
  /// channel must have a metadata locator announced (DiscoveryError
  /// otherwise). `type_name` is the complexType to bind.
  StreamSubscriber(Context& ctx, transport::EventBackbone& backbone,
                   const std::string& channel, const std::string& type_name);

  /// Installs the unknown-id fallback.
  void set_format_fallback(FormatFallback fallback) {
    fallback_ = std::move(fallback);
  }

  /// Blocking receive+decode; nullopt when the channel closes. Throws
  /// FormatError when a message's format cannot be resolved by any means.
  std::optional<pbio::DynamicRecord> receive();

  /// Non-blocking variant.
  std::optional<pbio::DynamicRecord> try_receive();

  /// The subscriber's current native view of the stream's type (updates
  /// after a metadata-change re-discovery).
  const pbio::FormatHandle& format() const noexcept { return format_; }

  /// How many times metadata had to be re-discovered or resolved.
  std::size_t rediscoveries() const noexcept { return rediscoveries_; }

private:
  pbio::DynamicRecord decode(const Buffer& message);

  Context* ctx_;
  std::string channel_;
  std::string locator_;
  std::string type_name_;
  transport::EventBackbone::Subscription subscription_;
  pbio::FormatHandle format_;
  FormatFallback fallback_;
  std::size_t rediscoveries_ = 0;
};

}  // namespace omf::core
