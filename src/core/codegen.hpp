// C++ code generation from format metadata — the paper's future-work item
// "generation of language-level message object representations in C++".
//
// Given a registered (native-profile) format, emits a self-contained C++
// header defining the equivalent struct(s), plus static_asserts pinning
// sizeof and every offsetof to the metadata, so a compile of the generated
// header *proves* the layout agreement that Context::bind can only
// spot-check at run time.
#pragma once

#include <string>

#include "pbio/format.hpp"

namespace omf::core {

struct CodegenOptions {
  /// Include guard style "#pragma once" when empty, else a macro name.
  std::string include_guard;
  /// Emit static_asserts for sizeof/offsetof (requires <cstddef>).
  bool emit_layout_asserts = true;
};

/// Generates a header defining `format` (and its nested formats, emitted
/// first). Throws FormatError for non-native-profile formats — generated
/// code is compiled on this machine, so the layout must be this machine's.
std::string generate_cpp_header(const pbio::Format& format,
                                const CodegenOptions& options = {});

}  // namespace omf::core
