#include "core/xml2wire.hpp"

#include "schema/reader.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "xml/parser.hpp"

namespace omf::core {

namespace {

using schema::Occurs;
using schema::SchemaElement;
using schema::XsdPrimitive;

/// Maps a primitive to its PBIO base type and width on `profile`.
void map_primitive(XsdPrimitive prim, const arch::Profile& profile,
                   std::string& base, std::size_t& size) {
  switch (prim) {
    case XsdPrimitive::kString: base = "string"; size = 0; return;
    case XsdPrimitive::kInt: base = "integer"; size = profile.int_size; return;
    case XsdPrimitive::kLong: base = "integer"; size = profile.long_size; return;
    case XsdPrimitive::kShort: base = "integer"; size = 2; return;
    case XsdPrimitive::kByte: base = "integer"; size = 1; return;
    case XsdPrimitive::kUnsignedInt:
      base = "unsigned"; size = profile.int_size; return;
    case XsdPrimitive::kUnsignedLong:
      base = "unsigned"; size = profile.long_size; return;
    case XsdPrimitive::kUnsignedShort: base = "unsigned"; size = 2; return;
    case XsdPrimitive::kUnsignedByte: base = "unsigned"; size = 1; return;
    case XsdPrimitive::kFloat: base = "float"; size = 4; return;
    case XsdPrimitive::kDouble: base = "float"; size = 8; return;
    case XsdPrimitive::kBoolean: base = "unsigned"; size = 1; return;
    case XsdPrimitive::kChar: base = "char"; size = 1; return;
  }
  throw FormatError("unmapped primitive");
}

}  // namespace

pbio::FormatHandle Xml2Wire::register_type(const schema::SchemaType& type) {
  std::vector<pbio::FieldSpec> specs;
  specs.reserve(type.elements.size() + 2);

  for (const SchemaElement& elem : type.elements) {
    pbio::FieldSpec spec;
    spec.name = elem.name;
    spec.element_size = 0;
    spec.default_text = elem.default_value;

    std::string base;
    if (elem.is_primitive) {
      map_primitive(elem.primitive, profile_, base, spec.element_size);
      if (base == "string" && elem.occurs.kind != Occurs::Kind::kScalar) {
        throw FormatError("complexType '" + type.name + "': element '" +
                          elem.name +
                          "': arrays of strings are not supported");
      }
    } else {
      // Composition by nesting: the referenced type must already be in the
      // Catalog for this profile.
      if (!registry_->by_name_profile(elem.user_type, profile_)) {
        throw FormatError("complexType '" + type.name + "': element '" +
                          elem.name + "' references type '" + elem.user_type +
                          "', which has not been registered yet (define it "
                          "earlier in the document or register it first)");
      }
      base = elem.user_type;
    }

    bool synthesize_count = false;
    std::string count_name;
    switch (elem.occurs.kind) {
      case Occurs::Kind::kScalar:
        spec.type = base;
        break;
      case Occurs::Kind::kStatic:
        spec.type = base + "[" + std::to_string(elem.occurs.count) + "]";
        break;
      case Occurs::Kind::kDynamicSized:
        spec.type = base + "[" + elem.occurs.size_field + "]";
        break;
      case Occurs::Kind::kDynamicUnbounded:
        count_name = implicit_count_name(elem.name);
        spec.type = base + "[" + count_name + "]";
        // If the schema already declares an element with the conventional
        // name, use it instead of synthesizing a duplicate.
        synthesize_count = type.element_named(count_name) == nullptr;
        break;
    }
    specs.push_back(std::move(spec));

    if (synthesize_count) {
      pbio::FieldSpec count;
      count.name = count_name;
      count.type = "integer";
      count.element_size = profile_.int_size;
      specs.push_back(std::move(count));
    }
  }

  pbio::FormatHandle handle =
      registry_->register_computed(type.name, specs, profile_);
  OMF_LOG_DEBUG("xml2wire", "registered '", type.name, "' (", profile_.name,
                "), ", handle->fields().size(), " fields, struct size ",
                handle->struct_size(), ", id ", handle->id());
  return handle;
}

std::vector<pbio::FormatHandle> Xml2Wire::register_schema(
    const schema::SchemaDocument& doc) {
  std::vector<pbio::FormatHandle> out;
  out.reserve(doc.types.size());
  for (const schema::SchemaType& type : doc.types) {
    out.push_back(register_type(type));
  }
  return out;
}

std::vector<pbio::FormatHandle> Xml2Wire::register_document(
    const xml::Document& doc) {
  return register_schema(schema::read_schema(doc));
}

std::vector<pbio::FormatHandle> Xml2Wire::register_text(
    std::string_view xml_text) {
  return register_document(xml::parse(xml_text));
}

}  // namespace omf::core
