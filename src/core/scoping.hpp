// Format scoping (paper §4.4).
//
// "The server can also be extended to dynamically generate metadata ...
// based on information such as requestor location or authentication
// credentials. With sufficient support from the BCM, this ability can
// introduce 'format-scoping' behaviors where certain 'slices' of each
// information stream are exposed or hidden based on attributes of each
// subscribing application."
//
// A ScopePolicy says which elements of which complexTypes an audience may
// see; scope_schema() carves that slice out of a full metadata document.
// The BCM support the paper alludes to is PBIO's evolution machinery: a
// subscriber holding the scoped format decodes full-format messages with
// the hidden fields simply absent, so the publisher never re-encodes.
//
// ScopedMetadataServer wires a policy into the HTTP metadata server: GET
// /path?audience=NAME returns the slice for NAME (unknown audiences get
// the empty-by-default or full-by-default view, per policy configuration).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "http/http.hpp"
#include "schema/model.hpp"

namespace omf::core {

/// Visibility rules keyed by (audience, complexType).
class ScopePolicy {
public:
  /// Audiences with no rules see everything (true) or nothing (false).
  explicit ScopePolicy(bool default_visible = false)
      : default_visible_(default_visible) {}

  /// Makes one element of `type` visible to `audience`.
  ScopePolicy& allow(const std::string& audience, const std::string& type,
                     const std::string& element);

  /// Makes every element of `type` (present and future) visible.
  ScopePolicy& allow_all(const std::string& audience, const std::string& type);

  bool visible(const std::string& audience, const std::string& type,
               const std::string& element) const;

  /// True if the audience has any rule at all (otherwise the default
  /// visibility applies).
  bool has_rules_for(const std::string& audience) const;

private:
  struct TypeRule {
    bool all = false;
    std::set<std::string> elements;
  };
  bool default_visible_;
  std::map<std::string, std::map<std::string, TypeRule>> rules_;
};

/// Returns the audience's slice of `doc`:
///  * invisible elements are removed;
///  * count elements referenced by a visible dynamic array are force-kept
///    (the wire needs them);
///  * elements whose nested type ends up with no visible elements are
///    removed, and such types are dropped entirely;
///  * simpleTypes are kept as-is (they carry no data).
/// Throws FormatError if nothing remains visible (an audience with no
/// access should get an HTTP 404, not an empty schema).
schema::SchemaDocument scope_schema(const schema::SchemaDocument& doc,
                                    const ScopePolicy& policy,
                                    const std::string& audience);

/// Dynamic metadata generation on top of http::Server: serves
/// `GET <path>?audience=NAME` with the scoped slice of the document
/// registered at `path`. Unscoped paths fall through to the server's
/// static documents.
class ScopedMetadataServer {
public:
  ScopedMetadataServer(http::Server& server, ScopePolicy policy);

  /// Registers a full document (parsed once) to be served scoped.
  void add_document(const std::string& path, const std::string& schema_text);

  /// The URL a subscriber with the given audience should discover from.
  std::string url_for(const std::string& path,
                      const std::string& audience) const;

private:
  struct Shared;  // document map + mutex, co-owned by the HTTP handler
  http::Server* server_;
  ScopePolicy policy_;
  std::shared_ptr<Shared> shared_;
};

}  // namespace omf::core
