#include "core/scoping.hpp"

#include <mutex>

#include "schema/generator.hpp"
#include "schema/reader.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace omf::core {

ScopePolicy& ScopePolicy::allow(const std::string& audience,
                                const std::string& type,
                                const std::string& element) {
  rules_[audience][type].elements.insert(element);
  return *this;
}

ScopePolicy& ScopePolicy::allow_all(const std::string& audience,
                                    const std::string& type) {
  rules_[audience][type].all = true;
  return *this;
}

bool ScopePolicy::visible(const std::string& audience, const std::string& type,
                          const std::string& element) const {
  auto audience_it = rules_.find(audience);
  if (audience_it == rules_.end()) return default_visible_;
  auto type_it = audience_it->second.find(type);
  if (type_it == audience_it->second.end()) return false;
  return type_it->second.all ||
         type_it->second.elements.count(element) != 0;
}

bool ScopePolicy::has_rules_for(const std::string& audience) const {
  return rules_.count(audience) != 0;
}

schema::SchemaDocument scope_schema(const schema::SchemaDocument& doc,
                                    const ScopePolicy& policy,
                                    const std::string& audience) {
  using schema::Occurs;
  using schema::SchemaElement;
  using schema::SchemaType;

  schema::SchemaDocument out;
  out.target_namespace = doc.target_namespace;
  out.documentation = doc.documentation;
  out.simple_types = doc.simple_types;

  // Pass 1: per-type visible element sets (policy only).
  // Pass 2 (iterate to fixpoint): drop elements whose nested type has
  // become empty, then drop empty types, until stable.
  std::map<std::string, std::vector<SchemaElement>> kept;
  for (const SchemaType& type : doc.types) {
    std::vector<SchemaElement> elements;
    for (const SchemaElement& e : type.elements) {
      if (policy.visible(audience, type.name, e.name)) {
        elements.push_back(e);
      }
    }
    // Force-include count elements of visible dynamic arrays.
    for (const SchemaElement& e : type.elements) {
      if (e.occurs.kind != Occurs::Kind::kDynamicSized) continue;
      bool array_kept = false;
      bool count_kept = false;
      for (const SchemaElement& k : elements) {
        if (k.name == e.name) array_kept = true;
        if (k.name == e.occurs.size_field) count_kept = true;
      }
      if (array_kept && !count_kept) {
        const SchemaElement* count = type.element_named(e.occurs.size_field);
        if (count != nullptr) elements.push_back(*count);
      }
    }
    kept[type.name] = std::move(elements);
  }

  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [type_name, elements] : kept) {
      for (auto it = elements.begin(); it != elements.end();) {
        bool drop = false;
        if (!it->is_primitive) {
          auto nested = kept.find(it->user_type);
          drop = nested == kept.end() || nested->second.empty();
        }
        if (drop) {
          it = elements.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
  }

  for (const SchemaType& type : doc.types) {
    auto& elements = kept[type.name];
    if (elements.empty()) continue;
    SchemaType scoped;
    scoped.name = type.name;
    scoped.documentation = type.documentation;
    scoped.elements = std::move(elements);
    out.types.push_back(std::move(scoped));
  }

  if (out.types.empty()) {
    throw FormatError("audience '" + audience +
                      "' has no visible elements in this document");
  }
  return out;
}

struct ScopedMetadataServer::Shared {
  std::mutex mutex;
  std::map<std::string, schema::SchemaDocument> documents;
};

ScopedMetadataServer::ScopedMetadataServer(http::Server& server,
                                           ScopePolicy policy)
    : server_(&server),
      policy_(std::move(policy)),
      shared_(std::make_shared<Shared>()) {
  // The handler co-owns the document map and holds a copy of the policy so
  // it stays valid for the server's lifetime.
  auto shared = shared_;
  auto held_policy = policy_;
  server.set_handler(
      [shared, held_policy](
          const std::string& path) -> std::optional<std::string> {
        std::size_t q = path.find('?');
        std::string bare = path.substr(0, q);
        std::string audience;
        if (q != std::string::npos) {
          // Hoisted: split() returns views into this string, which must
          // outlive the loop (C++20 range-for does not extend inner
          // temporaries).
          std::string query = path.substr(q + 1);
          for (std::string_view param : split(query, '&')) {
            if (starts_with(param, "audience=")) {
              audience = std::string(param.substr(9));
            }
          }
        }
        std::lock_guard lock(shared->mutex);
        auto it = shared->documents.find(bare);
        if (it == shared->documents.end()) return std::nullopt;
        try {
          return schema::write_schema_text(
              scope_schema(it->second, held_policy, audience));
        } catch (const Error&) {
          return std::nullopt;  // nothing visible -> 404
        }
      });
}

void ScopedMetadataServer::add_document(const std::string& path,
                                        const std::string& schema_text) {
  schema::SchemaDocument doc = schema::read_schema_text(schema_text);
  std::lock_guard lock(shared_->mutex);
  shared_->documents[path] = std::move(doc);
}

std::string ScopedMetadataServer::url_for(const std::string& path,
                                          const std::string& audience) const {
  return server_->url_for(path) + "?audience=" + audience;
}

}  // namespace omf::core
