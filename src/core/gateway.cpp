#include "core/gateway.hpp"

#include "pbio/encode.hpp"
#include "pbio/synth.hpp"
#include "util/error.hpp"

namespace omf::core {

Gateway::Gateway(pbio::FormatRegistry& registry, pbio::FormatHandle staging,
                 pbio::FormatHandle target,
                 std::shared_ptr<pbio::PlanCache> shared_plans)
    : decoder_(registry, std::move(shared_plans)),
      staging_(std::move(staging)),
      target_(std::move(target)),
      scratch_(staging_) {
  if (!staging_ || !target_) {
    throw FormatError("gateway: null format handle");
  }
  if (!(staging_->profile() == arch::native())) {
    throw FormatError("gateway: the staging format must be native-profile");
  }
}

Buffer Gateway::convert(std::span<const std::uint8_t> message) {
  if (pbio::Decoder::peek_format_id(message) == target_->id()) {
    ++passed_through_;
    Buffer copy(message.size());
    copy.append(message);
    return copy;
  }
  scratch_.from_wire(decoder_, message);
  ++converted_;
  if (target_->id() == staging_->id()) {
    // Target is this machine's own format: the ordinary encoder is the
    // fastest way to produce it.
    return pbio::encode(*staging_, scratch_.data());
  }
  return pbio::synthesize_wire(*target_, scratch_);
}

}  // namespace omf::core
