#include "core/gateway.hpp"

#include <cstring>

#include "analysis/audit_format.hpp"
#include "analysis/verify_plan.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "pbio/encode.hpp"
#include "pbio/metaserde.hpp"
#include "pbio/synth.hpp"
#include "util/error.hpp"

namespace omf::core {

namespace {
struct GatewayMetrics {
  obs::Counter& converted;
  obs::Counter& passed_through;
  static const GatewayMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static GatewayMetrics m{reg.counter("gateway.converted"),
                            reg.counter("gateway.passed_through")};
    return m;
  }
};
/// Gateways sit at a trust boundary (they decode producers' wire data), so
/// their plans must carry a bounds certificate before the cache serves
/// them — the same posture as register_remote_format's audit.
pbio::PlanOptions verified_plan_options() {
  analysis::install_plan_verifier();
  pbio::PlanOptions options;
  options.verify = true;
  return options;
}
}  // namespace

Gateway::Gateway(pbio::FormatRegistry& registry, pbio::FormatHandle staging,
                 pbio::FormatHandle target,
                 std::shared_ptr<pbio::PlanCache> shared_plans)
    : registry_(&registry),
      decoder_(registry, std::move(shared_plans), verified_plan_options()),
      staging_(std::move(staging)),
      target_(std::move(target)),
      scratch_(staging_) {
  if (!staging_ || !target_) {
    throw FormatError("gateway: null format handle");
  }
  if (!(staging_->profile() == arch::native())) {
    throw FormatError("gateway: the staging format must be native-profile");
  }
}

Buffer Gateway::convert(std::span<const std::uint8_t> message) {
  if (pbio::Decoder::peek_format_id(message) == target_->id()) {
    ++passed_through_;
    GatewayMetrics::get().passed_through.add();
    Buffer copy(message.size());
    copy.append(message);
    return copy;
  }
  const pbio::FormatId source = pbio::Decoder::peek_format_id(message);
  const std::uint64_t t0 = obs::monotonic_ns();
  scratch_.from_wire(decoder_, message);
  ++converted_;
  GatewayMetrics::get().converted.add();
  Buffer out = target_->id() == staging_->id()
                   // Target is this machine's own format: the ordinary
                   // encoder is the fastest way to produce it.
                   ? pbio::encode(*staging_, scratch_.data())
                   : pbio::synthesize_wire(*target_, scratch_);
  obs::Attribution::instance().charge(
      source, peer_,
      obs::AttrDelta{.decode_ns = obs::monotonic_ns() - t0});
  return out;
}

std::vector<Buffer> Gateway::convert_batch(
    std::span<const std::span<const std::uint8_t>> messages) {
  const GatewayMetrics& metrics = GatewayMetrics::get();
  std::vector<Buffer> out;
  out.reserve(messages.size());
  const std::size_t stride = staging_->struct_size();
  std::size_t i = 0;
  while (i < messages.size()) {
    pbio::FormatId id = pbio::Decoder::peek_format_id(messages[i]);
    if (id == target_->id()) {
      ++passed_through_;
      metrics.passed_through.add();
      Buffer copy(messages[i].size());
      copy.append(messages[i]);
      out.push_back(std::move(copy));
      ++i;
      continue;
    }
    // Maximal run of consecutive messages in this wire format.
    std::size_t j = i + 1;
    while (j < messages.size() &&
           pbio::Decoder::peek_format_id(messages[j]) == id) {
      ++j;
    }
    const std::size_t n = j - i;
    const std::uint64_t t0 = obs::monotonic_ns();
    batch_structs_.resize(n * stride);
    batch_ptrs_.clear();
    for (std::size_t k = 0; k < n; ++k) {
      batch_ptrs_.push_back(batch_structs_.data() + k * stride);
    }
    batch_arena_.reset();
    decoder_.decode_batch(messages.data() + i, n, *staging_,
                          batch_ptrs_.data(), batch_arena_);
    for (std::size_t k = 0; k < n; ++k) {
      ++converted_;
      metrics.converted.add();
      if (target_->id() == staging_->id()) {
        out.push_back(pbio::encode(*staging_, batch_ptrs_[k]));
      } else {
        // synthesize_wire reads from a DynamicRecord; stage the decoded
        // struct through the scratch record (its pointers into batch_arena_
        // stay valid until the next convert_batch call resets it).
        std::memcpy(scratch_.data(), batch_ptrs_[k], stride);
        out.push_back(pbio::synthesize_wire(*target_, scratch_));
      }
    }
    // One charge per run: the whole decode+re-encode of the run is this
    // format's cost.
    obs::Attribution::instance().charge(
        id, peer_, obs::AttrDelta{.decode_ns = obs::monotonic_ns() - t0});
    i = j;
  }
  return out;
}

Gateway::StatsSnapshot Gateway::stats_snapshot() const {
  StatsSnapshot snap;
  snap.converted = converted_;
  snap.passed_through = passed_through_;
  snap.cached_plans = decoder_.plan_cache()->size();
  snap.plans = decoder_.plan_cache()->stats();
  return snap;
}

pbio::FormatHandle Gateway::register_remote_format(
    std::span<const std::uint8_t> bundle) {
  if (audit_policy_.enabled) {
    std::vector<pbio::RawFormat> raws = pbio::decode_format_bundle(bundle);
    std::vector<analysis::FormatDescriptor> set;
    set.reserve(raws.size());
    for (const pbio::RawFormat& raw : raws) {
      set.push_back(analysis::describe(raw));
    }
    analysis::enforce(set.empty() ? "format bundle" : set.back().name,
                      analysis::audit_formats(set, registry_),
                      audit_policy_);
  }
  return pbio::deserialize_format_bundle(*registry_, bundle);
}

}  // namespace omf::core
