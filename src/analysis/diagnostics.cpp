#include "analysis/diagnostics.hpp"

#include "util/logging.hpp"

namespace omf::analysis {

std::string render(const Diagnostic& d) {
  std::string out;
  if (!d.file.empty()) {
    out += d.file;
    out += ':';
    if (d.line != 0) {
      out += std::to_string(d.line);
      out += ':';
      if (d.column != 0) {
        out += std::to_string(d.column);
        out += ':';
      }
    }
    out += ' ';
  }
  out += d.severity == Severity::kError ? "error[" : "warning[";
  out += d.code;
  out += "]: ";
  out += d.message;
  if (!d.path.empty()) {
    out += " [";
    out += d.path;
    out += ']';
  }
  return out;
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::span<const CodeInfo> diagnostic_codes() {
  static constexpr CodeInfo kTable[] = {
      {"OMF001", Severity::kError, "input file cannot be parsed"},
      {"OMF002", Severity::kError, "schema rejected by the format compiler"},
      {"OMF100", Severity::kError, "unparseable PBIO type string"},
      {"OMF101", Severity::kError, "duplicate field name"},
      {"OMF102", Severity::kError, "field slots overlap"},
      {"OMF103", Severity::kError,
       "field extends past the declared struct size"},
      {"OMF104", Severity::kError, "offset/size arithmetic overflows"},
      {"OMF105", Severity::kWarning,
       "field offset violates the profile's alignment rule"},
      {"OMF106", Severity::kWarning,
       "struct size is not padded to the struct alignment"},
      {"OMF107", Severity::kError, "nested field references an unknown format"},
      {"OMF108", Severity::kError, "cycle in nested format references"},
      {"OMF109", Severity::kError, "dynamic array's count field is missing"},
      {"OMF110", Severity::kWarning,
       "count field is declared after the array it sizes"},
      {"OMF111", Severity::kError, "count field is not a scalar integer"},
      {"OMF112", Severity::kError,
       "count field is wider than the receiver's size_t"},
      {"OMF113", Severity::kError, "invalid scalar width for the field class"},
      {"OMF114", Severity::kError, "format declares no fields"},
      {"OMF201", Severity::kWarning,
       "integer narrowing may lose high-order bits"},
      {"OMF202", Severity::kWarning, "double-to-float narrowing loses precision"},
      {"OMF203", Severity::kWarning,
       "signed/unsigned reinterpretation changes value ranges"},
      {"OMF204", Severity::kWarning,
       "static array truncated: receiver keeps fewer elements"},
      {"OMF205", Severity::kWarning, "wire field unknown to the receiver is dropped"},
      {"OMF210", Severity::kError,
       "compiled plan accesses bytes outside the message extent"},
      {"OMF211", Severity::kError,
       "fused and unfused plans audit differently (analyzer invariant)"},
      {"OMF301", Severity::kWarning,
       "count element is declared after the array it sizes"},
      {"OMF302", Severity::kError,
       "synthesized count name collides with an incompatible element"},
      {"OMF303", Severity::kWarning,
       "element is reused as an implicit count field"},
      {"OMF304", Severity::kWarning, "one count element sizes several arrays"},
      {"OMF305", Severity::kError,
       "element references a type defined later (or itself)"},
      {"OMF306", Severity::kWarning,
       "element references a type not defined in this document"},
      {"OMF307", Severity::kWarning, "construct is ignored by xml2wire"},
      {"OMF309", Severity::kError, "unsupported array element type"},
  };
  return kTable;
}

AuditError::AuditError(std::string subject, std::vector<Diagnostic> diagnostics)
    : Error([&] {
        std::string what = "metadata audit rejected '" + subject + "': ";
        std::size_t errors = 0;
        const Diagnostic* first = nullptr;
        for (const Diagnostic& d : diagnostics) {
          if (d.severity == Severity::kError) {
            if (first == nullptr) first = &d;
            ++errors;
          }
        }
        if (first != nullptr) {
          what += render(*first);
          if (errors > 1) {
            what += " (+" + std::to_string(errors - 1) + " more)";
          }
        }
        return what;
      }()),
      subject_(std::move(subject)),
      diagnostics_(std::move(diagnostics)) {}

void enforce(const std::string& subject,
             const std::vector<Diagnostic>& diagnostics,
             const AuditPolicy& policy) {
  if (!policy.enabled) return;
  if (policy.log_warnings) {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kWarning) {
        OMF_LOG_WARN("audit", subject, ": ", render(d));
      }
    }
  }
  if (policy.reject_on_error && has_errors(diagnostics)) {
    throw AuditError(subject, diagnostics);
  }
}

}  // namespace omf::analysis
