#include "analysis/diagnostics.hpp"

#include "util/logging.hpp"

namespace omf::analysis {

std::string render(const Diagnostic& d) {
  std::string out;
  if (!d.file.empty()) {
    out += d.file;
    out += ':';
    if (d.line != 0) {
      out += std::to_string(d.line);
      out += ':';
      if (d.column != 0) {
        out += std::to_string(d.column);
        out += ':';
      }
    }
    out += ' ';
  }
  out += d.severity == Severity::kError ? "error[" : "warning[";
  out += d.code;
  out += "]: ";
  out += d.message;
  if (!d.path.empty()) {
    out += " [";
    out += d.path;
    out += ']';
  }
  return out;
}

namespace {
// Minimal JSON string escaping: quotes, backslash, control characters.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}
}  // namespace

std::string render_json(const Diagnostic& d) {
  std::string out = "{";
  if (!d.file.empty()) {
    out += "\"file\":";
    append_json_string(out, d.file);
    out += ',';
    if (d.line != 0) {
      out += "\"line\":" + std::to_string(d.line) + ',';
      if (d.column != 0) {
        out += "\"column\":" + std::to_string(d.column) + ',';
      }
    }
  }
  out += "\"code\":";
  append_json_string(out, d.code);
  out += ",\"severity\":\"";
  out += d.severity == Severity::kError ? "error" : "warning";
  out += "\",\"message\":";
  append_json_string(out, d.message);
  if (!d.path.empty()) {
    out += ",\"path\":";
    append_json_string(out, d.path);
  }
  out += '}';
  return out;
}

std::string render_json(std::span<const Diagnostic> diagnostics) {
  std::string out = "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    if (i != 0) out += ',';
    out += '\n';
    out += render_json(diagnostics[i]);
  }
  if (!diagnostics.empty()) out += '\n';
  out += ']';
  return out;
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::span<const CodeInfo> diagnostic_codes() {
  static constexpr CodeInfo kTable[] = {
      {"OMF001", Severity::kError, "input file cannot be parsed",
       "a truncated OBMF bundle, or a `.fmt` line that is not a directive"},
      {"OMF002", Severity::kError, "schema rejected by the format compiler",
       "an `.xsd` whose root element never resolves to a complex type"},
      {"OMF100", Severity::kError, "unparseable PBIO type string",
       "`field x quaternion 4 0` — `quaternion` is not a known class"},
      {"OMF101", Severity::kError, "duplicate field name",
       "two `field eta ...` lines in one format"},
      {"OMF102", Severity::kError, "field slots overlap",
       "`a` at offset 0 size 8 and `b` at offset 4 size 4"},
      {"OMF103", Severity::kError,
       "field extends past the declared struct size",
       "`field tail integer 8 60` in a `size=64` struct"},
      {"OMF104", Severity::kError, "offset/size arithmetic overflows",
       "offset 0xFFFFFFFFFFFFFFF8 + size 16 wraps past SIZE_MAX"},
      {"OMF105", Severity::kWarning,
       "field offset violates the profile's alignment rule",
       "an 8-byte float at offset 4 under an align-8 profile"},
      {"OMF106", Severity::kWarning,
       "struct size is not padded to the struct alignment",
       "`size=12` for a struct whose widest member needs align 8"},
      {"OMF107", Severity::kError, "nested field references an unknown format",
       "`field hdr nested:Header 16 0` with no `Header` registered"},
      {"OMF108", Severity::kError, "cycle in nested format references",
       "`A` embeds `B` embeds `A`"},
      {"OMF109", Severity::kError, "dynamic array's count field is missing",
       "`var_array[n]` with no field named `n`"},
      {"OMF110", Severity::kWarning,
       "count field is declared after the array it sizes",
       "`items` at offset 8, its count `n` at offset 24"},
      {"OMF111", Severity::kError, "count field is not a scalar integer",
       "`var_array[f]` where `f` is a float64"},
      {"OMF112", Severity::kError,
       "count field is wider than the receiver's size_t",
       "an 8-byte count decoded on a 32-bit profile"},
      {"OMF113", Severity::kError, "invalid scalar width for the field class",
       "`field x float 3 0` — floats are 4 or 8 bytes"},
      {"OMF114", Severity::kError, "format declares no fields",
       "`format Empty size=0` followed by no `field` lines"},
      {"OMF201", Severity::kWarning,
       "integer narrowing may lose high-order bits",
       "wire `int64` landing in a native `int32`"},
      {"OMF202", Severity::kWarning,
       "double-to-float narrowing loses precision",
       "wire `float64` landing in a native `float32`"},
      {"OMF203", Severity::kWarning,
       "signed/unsigned reinterpretation changes value ranges",
       "wire `integer` landing in a native `unsigned`"},
      {"OMF204", Severity::kWarning,
       "static array truncated: receiver keeps fewer elements",
       "wire `int32[8]` landing in a native `int32[4]`"},
      {"OMF205", Severity::kWarning,
       "wire field unknown to the receiver is dropped",
       "sender's `debug_tag` has no native counterpart"},
      {"OMF210", Severity::kError,
       "compiled plan accesses bytes outside the message extent",
       "an op whose src_offset+size exceeds the wire struct size"},
      {"OMF211", Severity::kError,
       "fused and unfused plans audit differently (analyzer invariant)",
       "run fusion changed the lossiness multiset for a convert pair"},
      {"OMF301", Severity::kWarning,
       "count element is declared after the array it sizes",
       "`<element name=\"n\"/>` following the array it counts"},
      {"OMF302", Severity::kError,
       "synthesized count name collides with an incompatible element",
       "array `xs` needs count `xs_count`, but `xs_count` is a string"},
      {"OMF303", Severity::kWarning,
       "element is reused as an implicit count field",
       "existing `<element name=\"n\" type=\"xs:int\"/>` adopted as a count"},
      {"OMF304", Severity::kWarning, "one count element sizes several arrays",
       "`n` counting both `xs[n]` and `ys[n]`"},
      {"OMF305", Severity::kError,
       "element references a type defined later (or itself)",
       "`<element type=\"Pose\"/>` before `Pose`'s complexType"},
      {"OMF306", Severity::kWarning,
       "element references a type not defined in this document",
       "`type=\"ext:Vector\"` with no local definition"},
      {"OMF307", Severity::kWarning, "construct is ignored by xml2wire",
       "`<xs:attribute>` inside a mapped complexType"},
      {"OMF309", Severity::kError, "unsupported array element type",
       "an array of `xs:anyType`"},
      {"OMF400", Severity::kError,
       "plan op reads outside the wire struct region",
       "a fused run whose src span ends past the struct size; the "
       "counterexample is the minimum admissible body length"},
      {"OMF401", Severity::kError,
       "plan op writes outside the native struct",
       "zero_tail extending one byte past the destination slot"},
      {"OMF402", Severity::kError,
       "plan ops write overlapping native bytes",
       "two ops whose dst spans share byte 12 — last-writer-wins would "
       "depend on op order"},
      {"OMF403", Severity::kError,
       "plan op carries an element width the interpreter cannot certify",
       "a kInt op with src_size=3 (store_int would write 8 bytes)"},
      {"OMF404", Severity::kError,
       "variable-section guard cannot be proven safe",
       "a kDynArray op with src_size=0 — the runtime overflow guard "
       "divides by element size"},
  };
  return kTable;
}

std::string diagnostics_markdown() {
  std::string out =
      "# OMF diagnostic codes\n"
      "\n"
      "Generated from `diagnostic_codes()` in `src/analysis/diagnostics.cpp`"
      " — regenerate with `omf-lint --codes-md`. A tier-1 test"
      " (`DiagnosticsDoc.InSyncWithCodeTable`) fails when this file and the"
      " table diverge.\n"
      "\n"
      "Code ranges: OMF0xx input/compile failures, OMF1xx format-descriptor"
      " audits, OMF2xx conversion-plan audits, OMF3xx XML Schema audits,"
      " OMF4xx plan bounds certification (omf-verify).\n"
      "\n"
      "| Code | Severity | Meaning | Example |\n"
      "|------|----------|---------|---------|\n";
  for (const CodeInfo& info : diagnostic_codes()) {
    out += "| ";
    out += info.code;
    out += " | ";
    out += info.severity == Severity::kError ? "error" : "warning";
    out += " | ";
    out += info.summary;
    out += " | ";
    out += info.example;
    out += " |\n";
  }
  return out;
}

AuditError::AuditError(std::string subject, std::vector<Diagnostic> diagnostics)
    : Error([&] {
        std::string what = "metadata audit rejected '" + subject + "': ";
        std::size_t errors = 0;
        const Diagnostic* first = nullptr;
        for (const Diagnostic& d : diagnostics) {
          if (d.severity == Severity::kError) {
            if (first == nullptr) first = &d;
            ++errors;
          }
        }
        if (first != nullptr) {
          what += render(*first);
          if (errors > 1) {
            what += " (+" + std::to_string(errors - 1) + " more)";
          }
        }
        return what;
      }()),
      subject_(std::move(subject)),
      diagnostics_(std::move(diagnostics)) {}

void enforce(const std::string& subject,
             const std::vector<Diagnostic>& diagnostics,
             const AuditPolicy& policy) {
  if (!policy.enabled) return;
  if (policy.log_warnings) {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kWarning) {
        OMF_LOG_WARN("audit", subject, ": ", render(d));
      }
    }
  }
  if (policy.reject_on_error && has_errors(diagnostics)) {
    throw AuditError(subject, diagnostics);
  }
}

}  // namespace omf::analysis
