#include "analysis/audit_format.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "pbio/field.hpp"

namespace omf::analysis {

namespace {

using pbio::ArrayKind;
using pbio::FieldClass;
using pbio::TypeSpec;

bool add_overflows(std::uint64_t a, std::uint64_t b, std::uint64_t& out) {
  return __builtin_add_overflow(a, b, &out);
}

bool mul_overflows(std::uint64_t a, std::uint64_t b, std::uint64_t& out) {
  return __builtin_mul_overflow(a, b, &out);
}

void emit(std::vector<Diagnostic>& out, const char* code, Severity severity,
          std::string message, std::string path, std::size_t line = 0) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.path = std::move(path);
  d.line = line;
  out.push_back(std::move(d));
}

/// A field with its parsed type (when parseable) and computed slot extent.
struct ParsedField {
  const FieldDescriptor* desc = nullptr;
  TypeSpec type;
  bool type_ok = false;
  std::uint64_t slot_size = 0;
  bool slot_ok = false;  ///< slot_size is meaningful (no overflow, resolved)
};

/// Resolves a nested format name: set members win, then the registry.
const FormatDescriptor* find_in_set(std::span<const FormatDescriptor> set,
                                    const std::string& name) {
  for (const FormatDescriptor& f : set) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

/// Struct size of a referenced nested format, or nullopt if unresolvable.
std::optional<std::uint64_t> nested_struct_size(
    const std::string& name, const arch::Profile& profile,
    std::span<const FormatDescriptor> set,
    const pbio::FormatRegistry* registry) {
  if (const FormatDescriptor* d = find_in_set(set, name)) {
    return d->struct_size;
  }
  if (registry != nullptr) {
    if (pbio::FormatHandle h = registry->by_name_profile(name, profile)) {
      return h->struct_size();
    }
  }
  return std::nullopt;
}

/// Alignment a descriptor's struct would need, from its declared metadata.
/// Cycle-guarded (a recursive reference contributes alignment 1; the cycle
/// itself is reported separately as OMF108).
std::uint64_t descriptor_alignment(
    const FormatDescriptor& fmt, std::span<const FormatDescriptor> set,
    const pbio::FormatRegistry* registry,
    std::vector<const FormatDescriptor*>& stack) {
  for (const FormatDescriptor* on_stack : stack) {
    if (on_stack == &fmt) return 1;
  }
  stack.push_back(&fmt);
  std::uint64_t align = 1;
  for (const FieldDescriptor& f : fmt.fields) {
    TypeSpec type;
    try {
      type = pbio::parse_type_string(f.type);
    } catch (const Error&) {
      continue;
    }
    std::uint64_t a = 1;
    if (type.cls == FieldClass::kString || type.array == ArrayKind::kDynamic) {
      a = fmt.profile.scalar_align(fmt.profile.pointer_size);
    } else if (type.cls == FieldClass::kNested) {
      if (const FormatDescriptor* sub = find_in_set(set, type.nested_name)) {
        a = descriptor_alignment(*sub, set, registry, stack);
      } else if (registry != nullptr) {
        if (pbio::FormatHandle h =
                registry->by_name_profile(type.nested_name, fmt.profile)) {
          a = h->alignment();
        }
      }
    } else if (f.size != 0 && f.size <= 16) {
      a = fmt.profile.scalar_align(static_cast<std::size_t>(f.size));
    }
    align = std::max(align, a);
  }
  stack.pop_back();
  return align;
}

/// Per-format checks (everything except cross-set cycle detection).
void audit_one(const FormatDescriptor& fmt,
               std::span<const FormatDescriptor> set,
               const pbio::FormatRegistry* registry,
               std::vector<Diagnostic>& out) {
  const arch::Profile& profile = fmt.profile;

  if (fmt.fields.empty()) {
    emit(out, codes::kEmptyFormat, Severity::kError,
         "format '" + fmt.name + "' declares no fields", fmt.name, fmt.line);
    return;
  }
  if (profile.pointer_size != 4 && profile.pointer_size != 8) {
    emit(out, codes::kInvalidScalarWidth, Severity::kError,
         "profile '" + profile.name + "' declares pointer size " +
             std::to_string(profile.pointer_size) +
             "; only 4 and 8 are meaningful",
         fmt.name, fmt.line);
  }

  std::vector<ParsedField> fields(fmt.fields.size());
  std::unordered_set<std::string_view> seen_names;

  for (std::size_t i = 0; i < fmt.fields.size(); ++i) {
    const FieldDescriptor& f = fmt.fields[i];
    ParsedField& pf = fields[i];
    pf.desc = &f;
    auto path = [&] { return fmt.name + "." + f.name; };

    if (!seen_names.insert(f.name).second) {
      emit(out, codes::kDuplicateField, Severity::kError,
           "duplicate field name '" + f.name + "'", path(), f.line);
    }

    try {
      pf.type = pbio::parse_type_string(f.type);
      pf.type_ok = true;
    } catch (const Error& e) {
      emit(out, codes::kBadTypeString, Severity::kError,
           "type string '" + f.type + "' does not parse: " + e.what(),
           path(), f.line);
      continue;
    }

    // Scalar width sanity for the marshaling class.
    bool width_ok = true;
    switch (pf.type.cls) {
      case FieldClass::kInteger:
      case FieldClass::kUnsigned:
        width_ok = f.size == 1 || f.size == 2 || f.size == 4 || f.size == 8;
        break;
      case FieldClass::kFloat:
        width_ok = f.size == 4 || f.size == 8;
        break;
      case FieldClass::kChar:
        width_ok = f.size == 1;
        break;
      case FieldClass::kString:
      case FieldClass::kNested:
        break;  // size is derived, not declared
    }
    if (!width_ok) {
      emit(out, codes::kInvalidScalarWidth, Severity::kError,
           "field '" + f.name + "' declares " + std::to_string(f.size) +
               "-byte " + std::string(pbio::field_class_name(pf.type.cls)) +
               " elements; the conversion kernels only handle natural widths",
           path(), f.line);
    }

    // Slot extent within the struct, overflow-safe.
    std::uint64_t elem = f.size;
    bool resolved = true;
    if (pf.type.cls == FieldClass::kNested) {
      auto sub =
          nested_struct_size(pf.type.nested_name, profile, set, registry);
      if (!sub) {
        emit(out, codes::kUnknownNestedFormat, Severity::kError,
             "field '" + f.name + "' references format '" +
                 pf.type.nested_name +
                 "', which is neither in this bundle nor registered",
             path(), f.line);
        resolved = false;
      } else {
        elem = *sub;
      }
    }

    if (resolved) {
      if (pf.type.cls == FieldClass::kString ||
          pf.type.array == ArrayKind::kDynamic) {
        pf.slot_size = profile.pointer_size;
        pf.slot_ok = true;
      } else if (pf.type.array == ArrayKind::kStatic) {
        if (mul_overflows(elem, pf.type.static_count, pf.slot_size)) {
          emit(out, codes::kOffsetOverflow, Severity::kError,
               "static array extent " + std::to_string(elem) + " x " +
                   std::to_string(pf.type.static_count) +
                   " overflows 64-bit arithmetic",
               path(), f.line);
        } else {
          pf.slot_ok = true;
        }
      } else {
        pf.slot_size = elem;
        pf.slot_ok = true;
      }
    }

    if (pf.slot_ok) {
      std::uint64_t end = 0;
      if (add_overflows(f.offset, pf.slot_size, end)) {
        emit(out, codes::kOffsetOverflow, Severity::kError,
             "offset " + std::to_string(f.offset) + " + slot " +
                 std::to_string(pf.slot_size) +
                 " overflows 64-bit arithmetic",
             path(), f.line);
        pf.slot_ok = false;
      } else if (end > fmt.struct_size) {
        emit(out, codes::kFieldOutsideStruct, Severity::kError,
             "field '" + f.name + "' ends at byte " + std::to_string(end) +
                 " but the struct is declared as " +
                 std::to_string(fmt.struct_size) + " bytes",
             path(), f.line);
      }
    }

    // Alignment (warning): the offset a C compiler for this profile would
    // never produce suggests hand-forged or corrupted metadata.
    if (pf.slot_ok) {
      std::uint64_t align = 1;
      if (pf.type.cls == FieldClass::kString ||
          pf.type.array == ArrayKind::kDynamic) {
        align = profile.scalar_align(profile.pointer_size);
      } else if (pf.type.cls == FieldClass::kNested) {
        if (const FormatDescriptor* sub =
                find_in_set(set, pf.type.nested_name)) {
          std::vector<const FormatDescriptor*> stack;
          align = descriptor_alignment(*sub, set, registry, stack);
        } else if (registry != nullptr) {
          if (pbio::FormatHandle h =
                  registry->by_name_profile(pf.type.nested_name, profile)) {
            align = h->alignment();
          }
        }
      } else if (f.size != 0 && f.size <= 16) {
        align = profile.scalar_align(static_cast<std::size_t>(f.size));
      }
      if (align > 1 && f.offset % align != 0) {
        emit(out, codes::kMisalignedField, Severity::kWarning,
             "field '" + f.name + "' at offset " + std::to_string(f.offset) +
                 " is not " + std::to_string(align) +
                 "-byte aligned for profile '" + profile.name + "'",
             path(), f.line);
      }
    }
  }

  // Dynamic arrays: count-field discipline.
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const ParsedField& pf = fields[i];
    if (!pf.type_ok || pf.type.array != ArrayKind::kDynamic) continue;
    const FieldDescriptor& f = *pf.desc;
    auto path = [&] { return fmt.name + "." + f.name; };

    std::size_t count_idx = SIZE_MAX;
    for (std::size_t j = 0; j < fmt.fields.size(); ++j) {
      if (fmt.fields[j].name == pf.type.size_field) {
        count_idx = j;
        break;
      }
    }
    if (count_idx == SIZE_MAX) {
      emit(out, codes::kCountFieldMissing, Severity::kError,
           "dynamic array '" + f.name + "' is sized by field '" +
               pf.type.size_field + "', which does not exist",
           path(), f.line);
      continue;
    }
    const ParsedField& count = fields[count_idx];
    const FieldDescriptor& cf = fmt.fields[count_idx];
    if (count.type_ok &&
        ((count.type.cls != FieldClass::kInteger &&
          count.type.cls != FieldClass::kUnsigned) ||
         count.type.array != ArrayKind::kNone)) {
      emit(out, codes::kCountFieldNotInteger, Severity::kError,
           "count field '" + cf.name + "' for dynamic array '" + f.name +
               "' must be a scalar integer, not '" + cf.type + "'",
           path(), cf.line != 0 ? cf.line : f.line);
    }
    if (cf.size > sizeof(std::size_t)) {
      emit(out, codes::kCountFieldTooWide, Severity::kError,
           "count field '" + cf.name + "' is " + std::to_string(cf.size) +
               " bytes wide — wider than the receiver's size_t (" +
               std::to_string(sizeof(std::size_t)) +
               " bytes); element counts could silently wrap",
           path(), cf.line != 0 ? cf.line : f.line);
    }
    if (count_idx > i) {
      emit(out, codes::kCountFieldAfterData, Severity::kWarning,
           "count field '" + cf.name + "' is declared after the array '" +
               f.name +
               "' it sizes; streaming decoders cannot size the array when "
               "they reach it",
           path(), f.line);
    }
  }

  // Overlap: sort by offset, each slot must end at or before the next start.
  std::vector<const ParsedField*> by_offset;
  for (const ParsedField& pf : fields) {
    if (pf.slot_ok) by_offset.push_back(&pf);
  }
  std::sort(by_offset.begin(), by_offset.end(),
            [](const ParsedField* a, const ParsedField* b) {
              return a->desc->offset < b->desc->offset;
            });
  for (std::size_t i = 1; i < by_offset.size(); ++i) {
    const ParsedField& prev = *by_offset[i - 1];
    const ParsedField& cur = *by_offset[i];
    // No overflow: prev passed the add_overflows check above.
    if (prev.desc->offset + prev.slot_size > cur.desc->offset) {
      emit(out, codes::kFieldOverlap, Severity::kError,
           "field '" + cur.desc->name + "' (offset " +
               std::to_string(cur.desc->offset) + ") overlaps field '" +
               prev.desc->name + "' (bytes " +
               std::to_string(prev.desc->offset) + ".." +
               std::to_string(prev.desc->offset + prev.slot_size) + ")",
           fmt.name + "." + cur.desc->name, cur.desc->line);
    }
  }

  // Struct-size consistency with the struct's own alignment (warning).
  {
    std::vector<const FormatDescriptor*> stack;
    std::uint64_t align = descriptor_alignment(fmt, set, registry, stack);
    if (align > 1 && fmt.struct_size % align != 0) {
      emit(out, codes::kUnpaddedStruct, Severity::kWarning,
           "struct size " + std::to_string(fmt.struct_size) +
               " is not a multiple of the struct alignment " +
               std::to_string(align) +
               "; arrays of this struct would misalign their elements",
           fmt.name, fmt.line);
    }
  }
}

/// DFS from `fmt` through nested references inside `set`; reports one
/// OMF108 per field of `fmt` whose reference chain reaches `fmt` again.
void audit_cycles(const FormatDescriptor& fmt,
                  std::span<const FormatDescriptor> set,
                  std::vector<Diagnostic>& out) {
  auto reaches = [&](const FormatDescriptor* from, const FormatDescriptor* to,
                     auto&& self) -> bool {
    static thread_local std::unordered_set<const FormatDescriptor*> visiting;
    if (from == to) return true;
    if (!visiting.insert(from).second) return false;
    bool found = false;
    for (const FieldDescriptor& f : from->fields) {
      TypeSpec type;
      try {
        type = pbio::parse_type_string(f.type);
      } catch (const Error&) {
        continue;
      }
      if (type.cls != FieldClass::kNested) continue;
      const FormatDescriptor* sub = find_in_set(set, type.nested_name);
      if (sub != nullptr && self(sub, to, self)) {
        found = true;
        break;
      }
    }
    visiting.erase(from);
    return found;
  };

  for (const FieldDescriptor& f : fmt.fields) {
    TypeSpec type;
    try {
      type = pbio::parse_type_string(f.type);
    } catch (const Error&) {
      continue;
    }
    if (type.cls != FieldClass::kNested) continue;
    const FormatDescriptor* sub = find_in_set(set, type.nested_name);
    if (sub == nullptr) continue;
    if (reaches(sub, &fmt, reaches)) {
      emit(out, codes::kNestedCycle, Severity::kError,
           "field '" + f.name + "' makes format '" + fmt.name +
               "' contain itself (via '" + type.nested_name +
               "'); a fixed-size struct cannot recurse",
           fmt.name + "." + f.name, f.line);
    }
  }
}

}  // namespace

FormatDescriptor describe(const pbio::Format& format) {
  FormatDescriptor out;
  out.name = format.name();
  out.profile = format.profile();
  out.struct_size = format.struct_size();
  out.fields.reserve(format.fields().size());
  for (const pbio::Field& f : format.fields()) {
    FieldDescriptor fd;
    fd.name = f.name;
    fd.type = pbio::type_string(f.type);
    fd.size = f.size;
    fd.offset = f.offset;
    fd.default_text = f.default_text;
    out.fields.push_back(std::move(fd));
  }
  return out;
}

FormatDescriptor describe(const pbio::RawFormat& raw) {
  FormatDescriptor out;
  out.name = raw.name;
  out.profile = raw.profile;
  out.struct_size = raw.struct_size;
  out.fields.reserve(raw.fields.size());
  for (const pbio::RawField& f : raw.fields) {
    FieldDescriptor fd;
    fd.name = f.name;
    fd.type = f.type;
    fd.size = f.size;
    fd.offset = f.offset;
    fd.default_text = f.default_text;
    out.fields.push_back(std::move(fd));
  }
  return out;
}

std::vector<Diagnostic> audit_format(const FormatDescriptor& format,
                                     std::span<const FormatDescriptor> siblings,
                                     const pbio::FormatRegistry* registry) {
  std::vector<Diagnostic> out;
  audit_one(format, siblings, registry, out);
  audit_cycles(format, siblings, out);
  return out;
}

std::vector<Diagnostic> audit_formats(std::span<const FormatDescriptor> set,
                                      const pbio::FormatRegistry* registry) {
  std::vector<Diagnostic> out;
  for (const FormatDescriptor& fmt : set) {
    audit_one(fmt, set, registry, out);
    audit_cycles(fmt, set, out);
  }
  return out;
}

std::vector<Diagnostic> audit_format(const pbio::Format& format) {
  // Collect the transitive nested closure, dependencies first, so
  // references resolve inside the set.
  std::vector<FormatDescriptor> set;
  auto collect = [&](const pbio::Format& f, auto&& self) -> void {
    for (const pbio::Field& field : f.fields()) {
      if (field.subformat) self(*field.subformat, self);
    }
    for (const FormatDescriptor& existing : set) {
      if (existing.name == f.name()) return;
    }
    set.push_back(describe(f));
  };
  collect(format, collect);
  return audit_formats(set);
}

std::vector<Diagnostic> audit_bundle(std::span<const std::uint8_t> bytes) {
  std::vector<pbio::RawFormat> raws = pbio::decode_format_bundle(bytes);
  std::vector<FormatDescriptor> set;
  set.reserve(raws.size());
  for (const pbio::RawFormat& raw : raws) {
    set.push_back(describe(raw));
  }
  return audit_formats(set);
}

}  // namespace omf::analysis
