// Static audit of format descriptors — the metadata a receiver must trust
// before it compiles conversion plans for a remote sender's messages.
//
// The auditor deliberately does NOT take a registered pbio::Format as its
// only input: hostile metadata must be auditable *before* anything resolves
// or trusts it. FormatDescriptor is the raw, unvalidated shape (as carried
// by serialized bundles, textual descriptor files, or produced from a
// registered Format for re-checking), and audit_formats() runs every check
// with overflow-safe arithmetic so the descriptor's own numbers cannot
// corrupt the audit.
#pragma once

#include <span>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "arch/profile.hpp"
#include "pbio/format.hpp"
#include "pbio/metaserde.hpp"

namespace omf::analysis {

/// One field as declared, nothing validated.
struct FieldDescriptor {
  std::string name;
  std::string type;  ///< PBIO type string, as written
  std::uint64_t size = 0;
  std::uint64_t offset = 0;
  std::string default_text;
  std::size_t line = 0;  ///< 1-based source line when read from a file
};

/// One format as declared.
struct FormatDescriptor {
  std::string name;
  arch::Profile profile;
  std::uint64_t struct_size = 0;
  std::vector<FieldDescriptor> fields;
  std::size_t line = 0;
};

/// Introspection adapters.
FormatDescriptor describe(const pbio::Format& format);
FormatDescriptor describe(const pbio::RawFormat& raw);

/// Audits one descriptor. Nested references resolve against `siblings`
/// (e.g. the other members of a bundle, dependencies first) and, when
/// given, `registry`; an unresolvable reference is OMF107.
std::vector<Diagnostic> audit_format(
    const FormatDescriptor& format,
    std::span<const FormatDescriptor> siblings = {},
    const pbio::FormatRegistry* registry = nullptr);

/// Audits a whole descriptor set (a bundle): per-format checks for every
/// member plus cycle detection across the set's nested references.
std::vector<Diagnostic> audit_formats(
    std::span<const FormatDescriptor> set,
    const pbio::FormatRegistry* registry = nullptr);

/// Convenience: audits a registered format (and, transitively, the nested
/// formats it references). Registered formats already passed registration
/// validation; this re-derives the full diagnostic set — alignment and
/// count-field-ordering warnings included — for policy decisions and lint.
std::vector<Diagnostic> audit_format(const pbio::Format& format);

/// Convenience: raw-decodes a serialized bundle and audits it without
/// registering anything. Throws DecodeError only on framing corruption.
std::vector<Diagnostic> audit_bundle(std::span<const std::uint8_t> bytes);

}  // namespace omf::analysis
