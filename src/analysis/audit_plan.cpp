#include "analysis/audit_plan.hpp"

#include <string>

#include "pbio/field.hpp"

namespace omf::analysis {

namespace {

using pbio::ArrayKind;
using pbio::ConvOp;
using pbio::ConversionPlan;
using pbio::Field;
using pbio::FieldClass;
using pbio::Format;

void emit(std::vector<Diagnostic>& out, const char* code, Severity severity,
          std::string message, std::string path) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.path = std::move(path);
  out.push_back(std::move(d));
}

bool is_integral(FieldClass cls) {
  return cls == FieldClass::kInteger || cls == FieldClass::kUnsigned;
}

/// Stack-linked chain of enclosing nested-field names; the dotted path
/// string is materialized only when a diagnostic actually fires, so a clean
/// audit allocates nothing.
struct Scope {
  const Scope* parent;
  const std::string* name;
};

std::string join(const Scope* scope, const std::string& leaf) {
  std::vector<const std::string*> parts;
  for (const Scope* s = scope; s != nullptr; s = s->parent) {
    parts.push_back(s->name);
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    out += **it;
    out += '.';
  }
  out += leaf;
  return out;
}

/// The lossiness lattice: every by-name field pairing that cannot be
/// round-tripped exactly gets a warning with its dotted path.
void audit_lossiness(const Format& wire, const Format& native,
                     const Scope* scope, std::vector<Diagnostic>& out) {
  const std::vector<Field>& wire_fields = wire.fields();
  std::size_t matched = 0;
  for (std::size_t i = 0; i < native.fields().size(); ++i) {
    const Field& nf = native.fields()[i];
    // Formats that pair at all almost always declare fields in the same
    // order, so try the index-aligned slot before the linear scan.
    const Field* wf = i < wire_fields.size() && wire_fields[i].name == nf.name
                          ? &wire_fields[i]
                          : wire.field_named(nf.name);
    if (wf == nullptr) continue;  // zero/default fill loses nothing sent
    ++matched;
    auto path = [&] { return join(scope, nf.name); };

    // Element counts for static arrays; dynamic arrays convert elementwise
    // with the sender's count, so only element types matter there.
    if (wf->type.array == ArrayKind::kStatic &&
        nf.type.array == ArrayKind::kStatic &&
        nf.type.static_count < wf->type.static_count) {
      emit(out, codes::kArrayTruncation, Severity::kWarning,
           "static array '" + nf.name + "' shrinks from " +
               std::to_string(wf->type.static_count) + " to " +
               std::to_string(nf.type.static_count) +
               " elements; the tail is discarded",
           path());
    }

    if (is_integral(wf->type.cls) && is_integral(nf.type.cls)) {
      if (nf.size < wf->size) {
        emit(out, codes::kLossyIntNarrowing, Severity::kWarning,
             "integer narrows from " + std::to_string(wf->size) + " to " +
                 std::to_string(nf.size) +
                 " bytes; high-order bits are truncated",
             path());
      }
      if (wf->type.cls != nf.type.cls) {
        emit(out, codes::kSignChange, Severity::kWarning,
             std::string("field is ") +
                 std::string(pbio::field_class_name(wf->type.cls)) +
                 " on the wire but " +
                 std::string(pbio::field_class_name(nf.type.cls)) +
                 " natively; out-of-range values reinterpret",
             path());
      }
    } else if (wf->type.cls == FieldClass::kFloat &&
               nf.type.cls == FieldClass::kFloat && nf.size < wf->size) {
      emit(out, codes::kLossyFloatNarrowing, Severity::kWarning,
           "floating-point narrows from binary64 to binary32; precision "
           "and range are lost",
           path());
    } else if (wf->type.cls == FieldClass::kNested &&
               nf.type.cls == FieldClass::kNested && wf->subformat &&
               nf.subformat) {
      Scope inner{scope, &nf.name};
      audit_lossiness(*wf->subformat, *nf.subformat, &inner, out);
    }
  }

  // Wire fields the receiver has no slot for are silently skipped. Field
  // names are unique per format, so `matched` counts exactly the wire
  // fields with a counterpart; when all have one, skip the reverse scan.
  if (matched != wire_fields.size()) {
    for (const Field& wf : wire_fields) {
      if (native.field_named(wf.name) == nullptr) {
        emit(out, codes::kDroppedField, Severity::kWarning,
             "wire field '" + wf.name +
                 "' has no counterpart in the native format and is dropped",
             join(scope, wf.name));
      }
    }
  }
}

/// Wire field whose slot starts at `offset` — the first field of a fused
/// run, since coalesce/fusion always keep the run head's offset. Falls back
/// to the nearest field at or before the offset (an op can only start
/// inside a field's slot). nullptr for an empty format.
const Field* field_at(const Format& wire, std::uint64_t offset) {
  const Field* best = nullptr;
  for (const Field& f : wire.fields()) {
    if (f.offset == offset) return &f;
    if (f.offset < offset && (best == nullptr || f.offset > best->offset)) {
      best = &f;
    }
  }
  return best;
}

/// Proves every struct-region read of the op program is inside
/// `region_len` readable bytes, fused RunOps included: a run's proof covers
/// the whole `count * src_size` (or `count` bytes for copy runs) span the
/// merged fields occupy, and its diagnostic names the run's head field with
/// the number of fields the run fused. Recurses into subplans with the
/// element extent.
void audit_bounds(const ConversionPlan& plan, std::uint64_t region_len,
                  std::vector<Diagnostic>& out) {
  const std::uint64_t ptr_size = plan.wire().profile().pointer_size;
  // Every string below is built only on a failed check — the proof runs at
  // plan-compile time and the passing path must stay allocation-free.
  auto check_read = [&](const ConvOp& op, std::uint64_t offset,
                        std::uint64_t size, const char* what) {
    // Overflow-safe: never form offset + size.
    if (offset > region_len || size > region_len - offset) {
      const Field* leaf = field_at(plan.wire(), op.src_offset);
      std::string where = "'" + plan.wire().name() + "' wire struct";
      std::string path = leaf != nullptr
                             ? plan.wire().name() + "." + leaf->name
                             : where;
      std::string run;
      if (op.fused_fields > 1) {
        run = " (fused run of " + std::to_string(op.fused_fields) +
              " fields starting at '" +
              (leaf != nullptr ? leaf->name : std::string("?")) + "')";
      }
      emit(out, codes::kPlanOutOfBounds, Severity::kError,
           std::string(what) + run + " reads bytes " +
               std::to_string(offset) + ".." + std::to_string(offset + size) +
               " but the " + where + " region is only " +
               std::to_string(region_len) +
               " bytes; executing this plan would read past the message "
               "extent",
           std::move(path));
    }
  };

  for (const ConvOp& op : plan.ops()) {
    switch (op.kind) {
      case ConvOp::Kind::kZero:
      case ConvOp::Kind::kDefault:
        break;  // no source reads
      case ConvOp::Kind::kCopy:
        check_read(op, op.src_offset, op.count, "block copy");
        break;
      case ConvOp::Kind::kInt:
      case ConvOp::Kind::kFloat:
        check_read(op, op.src_offset,
                   std::uint64_t{op.count} * op.src_size, "element loop");
        break;
      case ConvOp::Kind::kString:
        check_read(op, op.src_offset, ptr_size, "string pointer slot");
        break;
      case ConvOp::Kind::kDynArray:
        check_read(op, op.src_offset, ptr_size, "dynamic array pointer slot");
        check_read(op, op.src_count_offset, op.src_count_size,
                   "dynamic array count");
        if (op.subplan) {
          // Elements live in the variable section; each subplan run sees
          // exactly one wire element of src_size bytes.
          audit_bounds(*op.subplan, op.src_size, out);
        }
        break;
      case ConvOp::Kind::kNestedStatic:
        check_read(op, op.src_offset,
                   std::uint64_t{op.count} * op.src_size, "embedded struct");
        if (op.subplan) {
          audit_bounds(*op.subplan, op.src_size, out);
        }
        break;
    }
  }
}

}  // namespace

std::vector<Diagnostic> audit_conversion(const Format& wire,
                                         const Format& native) {
  std::vector<Diagnostic> out;
  audit_lossiness(wire, native, nullptr, out);
  return out;
}

std::vector<Diagnostic> audit_plan(const ConversionPlan& plan) {
  std::vector<Diagnostic> out;
  audit_lossiness(plan.wire(), plan.native(), nullptr, out);
  audit_bounds(plan, plan.wire().struct_size(), out);
  return out;
}

}  // namespace omf::analysis
