// SIMD/scalar kernel equivalence oracle (omf-verify --kernels).
//
// The bounds certifier (verify_plan) proves *where* a plan touches memory;
// this oracle proves *what* the fused SIMD kernels compute: for every
// element shape the dispatch tier vectorizes, the vector kernel must be
// byte-identical to the portable scalar kernel the simd-off build runs —
// across every source alignment (0–63, both buffers deliberately
// misaligned against each other) and every tail length (0–32 elements, so
// full vector iterations, partial tails, and the empty run are all hit).
// Destinations carry a canary past the written region, so a kernel that
// writes even one byte beyond count*dst_size fails the sweep too.
//
// Runs as a tier-1 test at whatever tier the host dispatches (CI sweeps
// OMF_SIMD_TIER=scalar/sse2/avx2) and as `omf-verify --kernels`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace omf::analysis {

struct KernelSweepResult {
  std::size_t tier = 0;    ///< arch::SimdTier the sweep dispatched at
  std::size_t shapes = 0;  ///< element shapes with a vector form at this tier
  std::size_t cases = 0;   ///< (shape, alignment, tail) cases executed
  std::vector<std::string> mismatches;  ///< empty on success

  bool ok() const noexcept { return mismatches.empty(); }
};

/// Sweeps every (element class, widths, swap, signedness) shape through
/// select_simd_kernel and compares against select_scalar_kernel.
KernelSweepResult sweep_kernel_equivalence();

}  // namespace omf::analysis
