#include "analysis/verify_kernels.hpp"

#include <cstdint>
#include <cstring>

#include "arch/profile.hpp"
#include "pbio/convert.hpp"
#include "pbio/run_kernels.hpp"

namespace omf::analysis {

namespace {

// Sweep geometry: a 32-element body guarantees several full vector
// iterations at every width/tier (the widest AVX2 lane holds 32 one-byte
// elements), tails 0–32 cover every partial-vector residue, and alignments
// 0–63 cover every offset within the widest cache line. Source and
// destination are misaligned *against each other* (align vs 63-align) so a
// kernel cannot pass by assuming the two pointers share an offset.
constexpr std::size_t kBodyElems = 32;
constexpr std::size_t kMaxTail = 32;
constexpr std::size_t kMaxAlign = 64;
constexpr std::uint8_t kCanary = 0xCD;

std::uint8_t* align_up(std::uint8_t* p) {
  auto v = reinterpret_cast<std::uintptr_t>(p);
  v = (v + (kMaxAlign - 1)) & ~static_cast<std::uintptr_t>(kMaxAlign - 1);
  return reinterpret_cast<std::uint8_t*>(v);
}

struct Shape {
  bool is_float;
  std::size_t src_size;
  std::size_t dst_size;
  bool swap;
  bool sign_extend;

  std::string label() const {
    std::string s = is_float ? "float" : (sign_extend ? "int" : "uint");
    s += std::to_string(src_size * 8) + "->" + std::to_string(dst_size * 8);
    if (swap) s += " swap";
    return s;
  }
};

}  // namespace

KernelSweepResult sweep_kernel_equivalence() {
  KernelSweepResult result;
  result.tier = static_cast<std::size_t>(arch::simd_tier());

  std::vector<Shape> shapes;
  for (std::size_t ss : {1, 2, 4, 8}) {
    for (std::size_t ds : {1, 2, 4, 8}) {
      for (bool swap : {false, true}) {
        for (bool sign : {false, true}) {
          shapes.push_back(Shape{false, ss, ds, swap, sign});
        }
      }
    }
  }
  for (std::size_t ss : {4, 8}) {
    for (std::size_t ds : {4, 8}) {
      for (bool swap : {false, true}) {
        shapes.push_back(Shape{true, ss, ds, swap, false});
      }
    }
  }

  constexpr std::size_t kMaxElems = kBodyElems + kMaxTail;
  constexpr std::size_t kBufBytes = kMaxAlign + kMaxAlign + kMaxElems * 8 +
                                    kMaxAlign;  // align slack + data + canary
  std::vector<std::uint8_t> src_buf(kBufBytes);
  std::vector<std::uint8_t> dst_scalar(kBufBytes);
  std::vector<std::uint8_t> dst_simd(kBufBytes);

  // Deterministic LCG byte stream: over the sweep every lane sees sign
  // bits, zero bytes, and (for floats) NaN/denormal patterns.
  std::uint32_t lcg = 0x12345678;
  auto next_byte = [&lcg]() {
    lcg = lcg * 1664525u + 1013904223u;
    return static_cast<std::uint8_t>(lcg >> 24);
  };

  for (const Shape& s : shapes) {
    pbio::ScalarKernel simd = pbio::select_simd_kernel(
        s.is_float, s.src_size, s.dst_size, s.swap, s.sign_extend);
    if (simd == nullptr) continue;  // no vector form at this tier
    pbio::ScalarKernel scalar = pbio::select_scalar_kernel(
        s.is_float, s.src_size, s.dst_size, s.swap, s.sign_extend);
    if (scalar == nullptr) {
      result.mismatches.push_back(
          s.label() + ": vector form exists but no scalar ground truth");
      continue;
    }
    ++result.shapes;

    bool shape_failed = false;
    for (std::size_t align = 0; align < kMaxAlign && !shape_failed; ++align) {
      for (std::size_t tail = 0; tail <= kMaxTail; ++tail) {
        const std::size_t count = kBodyElems + tail;
        const std::size_t src_bytes = count * s.src_size;
        const std::size_t dst_bytes = count * s.dst_size;

        std::uint8_t* src = align_up(src_buf.data()) + align;
        std::uint8_t* da =
            align_up(dst_scalar.data()) + (kMaxAlign - 1 - align);
        std::uint8_t* db = align_up(dst_simd.data()) + (kMaxAlign - 1 - align);

        for (std::size_t i = 0; i < src_bytes; ++i) src[i] = next_byte();
        std::memset(da, kCanary, dst_bytes + kMaxAlign);
        std::memset(db, kCanary, dst_bytes + kMaxAlign);

        scalar(src, da, count);
        simd(src, db, count);
        ++result.cases;

        // Compare past the written region too: the scalar kernel never
        // touches the canary, so a vector kernel writing even one byte
        // beyond count*dst_size fails here.
        if (std::memcmp(da, db, dst_bytes + kMaxAlign) != 0) {
          std::size_t byte = 0;
          while (da[byte] == db[byte]) ++byte;
          result.mismatches.push_back(
              s.label() + ": align " + std::to_string(align) + ", count " +
              std::to_string(count) + ": byte " + std::to_string(byte) +
              (byte >= dst_bytes
                   ? " (PAST the destination run — out-of-bounds write)"
                   : "") +
              " differs (scalar 0x" + std::to_string(da[byte]) +
              " vs simd 0x" + std::to_string(db[byte]) + ")");
          shape_failed = true;  // one report per shape keeps output readable
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace omf::analysis
