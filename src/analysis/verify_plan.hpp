// Symbolic bounds certification of compiled conversion plans (omf-verify).
//
// PR 2's audit_plan checks plans heuristically against the formats they were
// compiled from; this pass *proves* memory safety of the op program itself.
// It is an abstract interpretation over an interval domain: every ConvOp
// (fused RunOps included) is mapped to the exact byte intervals execute_op
// touches — reads against the wire struct region, writes against the native
// struct — computed symbolically from the op's offsets, element widths,
// counts, and zero tails. Variable-section accesses (strings, dynamic
// arrays) are handled as *guarded* obligations: their byte ranges depend on
// message content, so instead of an interval the verifier discharges the
// soundness conditions of the runtime guard (count-field range × element
// size cannot overflow or divide by zero, pointer-slot widths are loadable,
// subplans exist and are themselves certified).
//
// The output is either a BoundsCertificate — a machine-checkable artifact
// listing every interval, re-validatable by BoundsCertificate::check()
// without rerunning the inference — or OMF4xx diagnostics, each carrying a
// concrete counterexample message length for which the access escapes.
//
// The pass certifies the *minimum admissible* message: the decoder admits
// any body with body_len >= wire struct size, so a static read is safe only
// if it fits in [0, wire_struct_size). That is exactly the bound the PR 6
// fused kernels must respect for the batched fast paths to be safe on
// hostile input.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "pbio/convert.hpp"

namespace omf::analysis {

/// One proven access: op `op_index` touches bytes [begin, end) of the wire
/// struct region (reads) or the native struct (writes). `guarded` marks
/// variable-section accesses whose bound is enforced by a runtime guard the
/// verifier proved sound, rather than by a static interval.
struct AccessInterval {
  std::size_t op_index = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  ///< half-open; begin == end for empty accesses
  bool guarded = false;
};

/// The machine-checkable artifact a certified plan carries. check() is a
/// deliberately dumb re-validation — interval containment and write
/// disjointness only, independent of the interpretation that produced the
/// intervals — so a certificate can be trusted without trusting the
/// inference.
struct BoundsCertificate {
  std::string plan;             ///< "wire -> native"
  std::uint64_t wire_extent = 0;    ///< wire struct size (min admissible body)
  std::uint64_t native_extent = 0;  ///< native struct size
  std::uint8_t ptr_size = 8;        ///< wire pointer-slot width
  std::vector<AccessInterval> reads;   ///< static reads, ⊆ [0, wire_extent)
  std::vector<AccessInterval> writes;  ///< static writes, ⊆ [0, native_extent)
  std::size_t guarded_accesses = 0;  ///< runtime-guarded accesses proven sound
  std::size_t subplans = 0;          ///< nested plans certified recursively

  /// Re-validates the certificate: every read ⊆ [0, wire_extent), every
  /// write ⊆ [0, native_extent), no two unguarded writes overlap.
  bool check() const;

  /// Human-readable rendering for `omf-verify`.
  std::string to_string() const;
};

struct VerifyResult {
  /// Present iff certification succeeded (no error diagnostics).
  std::optional<BoundsCertificate> certificate;
  std::vector<Diagnostic> diagnostics;

  bool certified() const noexcept { return certificate.has_value(); }
};

/// A raw op program plus the extents it claims to operate in — the
/// verifier's input shape. Compiled plans are converted to this; hostile
/// mutants (tests/verify_corpus/*.plan) are parsed into it directly, since
/// plans compiled from registered formats are always in bounds.
struct PlanShape {
  std::string name = "plan";
  std::uint64_t wire_extent = 0;
  std::uint64_t native_extent = 0;
  std::uint8_t ptr_size = 8;
  std::vector<pbio::ConvOp> ops;
  /// Optional: the wire format, for naming fields in diagnostics.
  pbio::FormatHandle wire;
};

/// Certifies a raw op program.
VerifyResult verify_ops(const PlanShape& shape);

/// Certifies a compiled plan (recursing into subplans).
VerifyResult verify_plan(const pbio::ConversionPlan& plan);

/// Parses the textual `.plan` corpus format:
///
///   # comment
///   plan <name> wire_size=<N> native_size=<M> [ptr_size=<P>]
///   op <kind> [src=<o>] [dst=<o>] [src_size=<n>] [dst_size=<n>]
///      [count=<n>] [zero_tail=<n>] [count_off=<o>] [count_size=<n>]
///      [bits=<v>] [elem=int|uint|float|char|nested] [swap] [sign]
///      [signed_count]
///
/// with <kind> one of copy|int|float|string|dyn_array|nested_static|zero|
/// default. Parse problems become OMF001 diagnostics stamped with
/// `filename`, mirroring lint_buffer.
PlanShape parse_plan_text(std::string_view text, const std::string& filename,
                          std::vector<Diagnostic>& diagnostics);

/// Registers the certifier as the process-wide PlanCache verification hook
/// (PlanCache::set_plan_verifier): plans requested with PlanOptions::verify
/// that fail certification make get_or_build throw AuditError, exactly how
/// AuditPolicy rejects hostile bundles. Idempotent.
void install_plan_verifier();

}  // namespace omf::analysis
