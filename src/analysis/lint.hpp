// File-level lint driver: the engine behind the omf-lint tool.
//
// Dispatches on the input's shape and runs every applicable auditor:
//
//   * serialized format bundles ("OBMF" magic)  -> audit_bundle
//   * textual descriptor files (*.fmt)          -> audit_formats
//   * anything else                             -> XML Schema pipeline
//     (parse -> read_schema -> audit_schema + audit_schema_xml -> lay the
//      types out for a profile and audit the resulting formats)
//
// The *.fmt format exists so the lint corpus (and users) can write raw
// descriptors — including ones the registry would refuse — as text:
//
//   # comment
//   format <name> [profile=<builtin-profile>] size=<struct-size>
//   field <name> <pbio-type> <size> <offset> [default=<text>]
//
// Every diagnostic is stamped with the file name; parse problems in the
// input itself become OMF001 diagnostics rather than exceptions, so a lint
// run always produces a report.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/audit_format.hpp"
#include "analysis/diagnostics.hpp"

namespace omf::analysis {

/// A parsed *.fmt file: the descriptor set plus the `convert` directives.
/// Exposed so omf-verify can compile and certify exactly the conversions
/// omf-lint audits, without re-implementing the directive grammar.
struct FmtFile {
  struct Convert {
    std::string wire;
    std::string native;
    std::size_t line = 0;
  };
  std::vector<FormatDescriptor> formats;
  std::vector<Convert> converts;
  std::vector<Diagnostic> diagnostics;  ///< parse problems (OMF001)
};

/// Parses the `.fmt` directive grammar (see the header comment). Purely
/// syntactic: no auditors run, parse problems land in `diagnostics`.
FmtFile parse_fmt_text(std::string_view content);

struct LintResult {
  std::string file;
  std::vector<Diagnostic> diagnostics;
  std::size_t errors = 0;
  std::size_t warnings = 0;

  bool ok() const noexcept { return errors == 0; }
};

/// Lints an in-memory input. `name` is used for dispatch (the .fmt
/// extension) and stamped on every diagnostic.
LintResult lint_buffer(const std::string& name, std::string_view content);

/// Reads and lints a file. An unreadable file yields a single OMF001.
LintResult lint_file(const std::string& path);

}  // namespace omf::analysis
