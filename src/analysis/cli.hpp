// Testable drivers behind the omf-lint and omf-verify executables.
//
// The tools' mains are thin argv adapters over these functions, so the
// exit-code contract and the output formats are unit-testable
// (tests/test_analysis.cpp, tests/test_verify.cpp) without spawning
// processes.
//
// Shared exit-code contract:
//   0  no error diagnostics (warnings allowed, unless --werror)
//   1  error diagnostics found — or warnings under --werror, or an
//      uncertified plan (omf-verify), or a kernel-equivalence mismatch
//   2  usage error: unknown option, or no inputs
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace omf::analysis {

/// omf-lint driver. `args` excludes argv[0]; diagnostics go to `err`,
/// machine output (--json / --codes / --codes-md) to `out`.
int lint_cli(const std::vector<std::string>& args, std::FILE* out,
             std::FILE* err);

/// omf-verify driver: bounds-certifies `.plan` op programs and the
/// conversions declared by `convert` directives in `.fmt` files;
/// `--kernels` runs the SIMD/scalar equivalence sweep instead.
int verify_cli(const std::vector<std::string>& args, std::FILE* out,
               std::FILE* err);

}  // namespace omf::analysis
