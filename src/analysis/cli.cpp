#include "analysis/cli.hpp"

#include <fstream>
#include <sstream>

#include "analysis/lint.hpp"
#include "analysis/verify_kernels.hpp"
#include "analysis/verify_plan.hpp"
#include "arch/profile.hpp"
#include "pbio/format.hpp"
#include "util/strings.hpp"

namespace omf::analysis {

namespace {

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

int lint_usage(std::FILE* err) {
  std::fprintf(err,
               "usage: omf-lint [--quiet] [--werror] [--json] <file>...\n"
               "       omf-lint --codes | --codes-md\n"
               "\n"
               "Statically audits OMF metadata: XML Schema documents,\n"
               "textual descriptor files (*.fmt), and serialized format\n"
               "bundles. --json emits one JSON array of diagnostics on\n"
               "stdout; --codes-md prints docs/DIAGNOSTICS.md.\n"
               "\n"
               "exit codes:\n"
               "  0  no error diagnostics (warnings allowed without"
               " --werror)\n"
               "  1  error diagnostics found, or any warning with --werror\n"
               "  2  usage error (unknown option, no input files)\n");
  return kExitUsage;
}

int verify_usage(std::FILE* err) {
  std::fprintf(
      err,
      "usage: omf-verify [--quiet] [--json] [--cert] <file>...\n"
      "       omf-verify --kernels\n"
      "\n"
      "Bounds-certifies conversion plans: every read must fit the wire\n"
      "struct region of the minimum admissible message and every write\n"
      "the native struct, or an OMF4xx diagnostic with a counterexample\n"
      "message length is emitted. Inputs are raw op programs (*.plan)\n"
      "or descriptor files (*.fmt) whose `convert` directives are\n"
      "compiled and certified. --cert prints the certificate for every\n"
      "proven plan; --kernels runs the SIMD/scalar equivalence sweep.\n"
      "\n"
      "exit codes:\n"
      "  0  every plan certified (/ kernel sweep clean)\n"
      "  1  a plan was rejected or the kernel sweep found a mismatch\n"
      "  2  usage error (unknown option, no input files)\n");
  return kExitUsage;
}

int print_codes(std::FILE* out) {
  std::fprintf(out, "%-8s %-8s %s\n", "code", "severity", "summary");
  for (const CodeInfo& info : diagnostic_codes()) {
    std::fprintf(out, "%-8s %-8s %s\n", info.code,
                 info.severity == Severity::kError ? "error" : "warning",
                 info.summary);
  }
  return kExitClean;
}

/// Certifies one input file for verify_cli: *.plan op programs directly,
/// *.fmt via plan compilation of each `convert` directive.
void verify_one_file(const std::string& path, bool want_cert, std::FILE* out,
                     bool quiet, std::vector<Diagnostic>& all) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Diagnostic d{codes::kInputParse, Severity::kError, "cannot open file",
                 "", path};
    all.push_back(std::move(d));
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  auto emit_result = [&](VerifyResult result) {
    if (result.certified() && want_cert && !quiet) {
      std::fprintf(out, "%s", result.certificate->to_string().c_str());
    }
    for (Diagnostic& d : result.diagnostics) {
      if (d.file.empty()) d.file = path;
      all.push_back(std::move(d));
    }
  };

  if (ends_with(path, ".fmt")) {
    FmtFile parsed = parse_fmt_text(content);
    for (Diagnostic& d : parsed.diagnostics) {
      if (d.file.empty()) d.file = path;
      all.push_back(std::move(d));
    }
    if (has_errors(all)) return;
    pbio::FormatRegistry scratch;
    for (const FormatDescriptor& fmt : parsed.formats) {
      std::vector<pbio::IOField> fields;
      fields.reserve(fmt.fields.size());
      for (const FieldDescriptor& f : fmt.fields) {
        fields.emplace_back(f.name, f.type, f.size, f.offset, f.default_text);
      }
      try {
        scratch.register_format(fmt.name, fields, fmt.struct_size,
                                fmt.profile);
      } catch (const Error& e) {
        all.push_back(Diagnostic{codes::kInputParse, Severity::kError,
                                 "format '" + fmt.name +
                                     "' rejected by the registry: " + e.what(),
                                 "", path, fmt.line});
        return;
      }
    }
    for (const FmtFile::Convert& req : parsed.converts) {
      try {
        pbio::FormatHandle wire = scratch.by_name(req.wire);
        pbio::FormatHandle native = scratch.by_name(req.native);
        emit_result(verify_plan(
            *pbio::ConversionPlan::build(wire, native, pbio::PlanOptions{})));
      } catch (const Error& e) {
        all.push_back(Diagnostic{codes::kInputParse, Severity::kError,
                                 "convert '" + req.wire + "' -> '" +
                                     req.native + "': " + e.what(),
                                 "", path, req.line});
      }
    }
    return;
  }

  std::vector<Diagnostic> parse_diags;
  PlanShape shape = parse_plan_text(content, path, parse_diags);
  if (!parse_diags.empty()) {
    for (Diagnostic& d : parse_diags) all.push_back(std::move(d));
    return;
  }
  emit_result(verify_ops(shape));
}

}  // namespace

int lint_cli(const std::vector<std::string>& args, std::FILE* out,
             std::FILE* err) {
  bool quiet = false;
  bool werror = false;
  bool json = false;
  std::vector<std::string> files;

  for (const std::string& arg : args) {
    if (arg == "--codes") return print_codes(out);
    if (arg == "--codes-md") {
      std::fprintf(out, "%s", diagnostics_markdown().c_str());
      return kExitClean;
    }
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      lint_usage(err);
      return kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(err, "omf-lint: unknown option '%s'\n", arg.c_str());
      return lint_usage(err);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return lint_usage(err);

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::vector<Diagnostic> all;
  for (const std::string& file : files) {
    LintResult result = lint_file(file);
    errors += result.errors;
    warnings += result.warnings;
    if (json) {
      all.insert(all.end(),
                 std::make_move_iterator(result.diagnostics.begin()),
                 std::make_move_iterator(result.diagnostics.end()));
    } else if (!quiet) {
      for (const Diagnostic& d : result.diagnostics) {
        std::fprintf(err, "%s\n", render(d).c_str());
      }
    }
  }
  if (json) {
    std::fprintf(out, "%s\n", render_json(all).c_str());
  } else if (!quiet && (errors != 0 || warnings != 0)) {
    std::fprintf(err, "omf-lint: %zu error(s), %zu warning(s) in %zu file(s)\n",
                 errors, warnings, files.size());
  }
  return (errors != 0 || (werror && warnings != 0)) ? kExitFindings
                                                    : kExitClean;
}

int verify_cli(const std::vector<std::string>& args, std::FILE* out,
               std::FILE* err) {
  bool quiet = false;
  bool json = false;
  bool want_cert = false;
  bool kernels = false;
  std::vector<std::string> files;

  for (const std::string& arg : args) {
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--cert") {
      want_cert = true;
    } else if (arg == "--kernels") {
      kernels = true;
    } else if (arg == "--help" || arg == "-h") {
      verify_usage(err);
      return kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(err, "omf-verify: unknown option '%s'\n", arg.c_str());
      return verify_usage(err);
    } else {
      files.push_back(arg);
    }
  }

  if (kernels) {
    KernelSweepResult sweep = sweep_kernel_equivalence();
    if (!quiet) {
      std::fprintf(out,
                   "kernel equivalence: tier %zu, %zu vectorized shape(s), "
                   "%zu case(s): %s\n",
                   sweep.tier, sweep.shapes, sweep.cases,
                   sweep.ok() ? "all byte-identical" : "MISMATCH");
      for (const std::string& m : sweep.mismatches) {
        std::fprintf(err, "omf-verify: %s\n", m.c_str());
      }
    }
    return sweep.ok() ? kExitClean : kExitFindings;
  }
  if (files.empty()) return verify_usage(err);

  std::vector<Diagnostic> all;
  for (const std::string& file : files) {
    verify_one_file(file, want_cert, out, quiet, all);
  }
  if (json) {
    std::fprintf(out, "%s\n", render_json(all).c_str());
  } else if (!quiet) {
    for (const Diagnostic& d : all) {
      std::fprintf(err, "%s\n", render(d).c_str());
    }
    if (has_errors(all)) {
      std::fprintf(err, "omf-verify: %zu finding(s) in %zu file(s)\n",
                   all.size(), files.size());
    }
  }
  return has_errors(all) ? kExitFindings : kExitClean;
}

}  // namespace omf::analysis
