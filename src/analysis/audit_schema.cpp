#include "analysis/audit_schema.hpp"

#include <string>
#include <unordered_map>

namespace omf::analysis {

namespace {

/// Mirrors core::Xml2Wire::implicit_count_name (analysis sits below core in
/// the layering, so the one-line convention is duplicated, not included).
std::string implicit_count_name(std::string_view element_name) {
  return std::string(element_name) + "_count";
}

using schema::Occurs;
using schema::SchemaDocument;
using schema::SchemaElement;
using schema::SchemaType;
using schema::XsdPrimitive;

void emit(std::vector<Diagnostic>& out, const char* code, Severity severity,
          std::string message, std::string path, std::size_t line,
          std::size_t column) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.path = std::move(path);
  d.line = line;
  d.column = column;
  out.push_back(std::move(d));
}

bool integral_count_element(const SchemaElement& e) {
  return e.is_primitive && e.occurs.kind == Occurs::Kind::kScalar &&
         e.primitive != XsdPrimitive::kString &&
         e.primitive != XsdPrimitive::kFloat &&
         e.primitive != XsdPrimitive::kDouble;
}

std::size_t element_index(const SchemaType& type, std::string_view name) {
  for (std::size_t i = 0; i < type.elements.size(); ++i) {
    if (type.elements[i].name == name) return i;
  }
  return SIZE_MAX;
}

void audit_type(const SchemaDocument& doc, std::size_t type_index,
                std::vector<Diagnostic>& out) {
  const SchemaType& type = doc.types[type_index];

  // How many arrays each count element sizes (explicit and implicit).
  std::unordered_map<std::string, std::vector<const SchemaElement*>> counts;

  for (std::size_t i = 0; i < type.elements.size(); ++i) {
    const SchemaElement& e = type.elements[i];
    // Built only when a diagnostic fires; the audit runs on every
    // registration and a clean document must stay cheap.
    auto path = [&] { return type.name + "." + e.name; };

    // Type references: forward/self references fail at registration time
    // (the Catalog registers in document order); flag them here with the
    // source position. Types absent from the document entirely may be
    // pre-registered — legal, but worth a note when linting a lone file.
    if (!e.is_primitive) {
      bool found_earlier = false;
      bool found_later_or_self = false;
      for (std::size_t t = 0; t < doc.types.size(); ++t) {
        if (doc.types[t].name != e.user_type) continue;
        (t < type_index ? found_earlier : found_later_or_self) = true;
      }
      if (found_later_or_self) {
        emit(out, codes::kForwardTypeReference, Severity::kError,
             "element '" + e.name + "' references complexType '" +
                 e.user_type +
                 "', which is defined later in the document (or is this "
                 "type itself); xml2wire registers types in document order",
             path(), e.line, e.column);
      } else if (!found_earlier) {
        emit(out, codes::kExternalTypeReference, Severity::kWarning,
             "element '" + e.name + "' references type '" + e.user_type +
                 "', which this document does not define; registration "
                 "requires it to be in the catalog already",
             path(), e.line, e.column);
      }
    }

    // Arrays of strings have no PBIO representation.
    if (e.is_primitive && e.primitive == XsdPrimitive::kString &&
        e.occurs.kind != Occurs::Kind::kScalar) {
      emit(out, codes::kUnsupportedArrayElement, Severity::kError,
           "element '" + e.name +
               "' is an array of strings, which PBIO cannot marshal",
           path(), e.line, e.column);
    }

    if (e.occurs.kind == Occurs::Kind::kDynamicSized) {
      counts[e.occurs.size_field].push_back(&e);
      std::size_t count_idx = element_index(type, e.occurs.size_field);
      if (count_idx != SIZE_MAX && count_idx > i) {
        emit(out, codes::kCountElementAfterArray, Severity::kWarning,
             "count element '" + e.occurs.size_field +
                 "' is declared after the array '" + e.name +
                 "' it sizes; reorder them so streaming consumers see the "
                 "count first",
             path(), e.line, e.column);
      }
    }

    if (e.occurs.kind == Occurs::Kind::kDynamicUnbounded) {
      std::string implicit = implicit_count_name(e.name);
      const SchemaElement* existing = type.element_named(implicit);
      if (existing != nullptr) {
        if (!integral_count_element(*existing)) {
          emit(out, codes::kCountNameCollision, Severity::kError,
               "unbounded array '" + e.name +
                   "' synthesizes a count field named '" + implicit +
                   "', but the document declares an element of that name "
                   "that is not a scalar integer",
               path(), existing->line != 0 ? existing->line : e.line,
               existing->line != 0 ? existing->column : e.column);
        } else {
          emit(out, codes::kCountNameReused, Severity::kWarning,
               "declared element '" + implicit +
                   "' doubles as the count field of unbounded array '" +
                   e.name + "'; senders must fill it consistently",
               path(), existing->line, existing->column);
          counts[implicit].push_back(&e);
        }
      }
    }
  }

  for (const auto& [count_name, arrays] : counts) {
    if (arrays.size() < 2) continue;
    std::string list;
    for (const SchemaElement* a : arrays) {
      if (!list.empty()) list += "', '";
      list += a->name;
    }
    emit(out, codes::kSharedCountElement, Severity::kWarning,
         "count element '" + count_name + "' sizes " +
             std::to_string(arrays.size()) + " arrays ('" + list +
             "'); they are forced to always have equal lengths",
         type.name + "." + count_name, arrays.front()->line,
         arrays.front()->column);
  }
}

// --- DOM-level scan for ignored constructs (OMF307) ------------------------

/// `context` is a callable producing the location description, so the
/// common all-supported scan never builds the string.
template <typename ContextFn>
void note_ignored(std::vector<Diagnostic>& out, const xml::Node& node,
                  const ContextFn& context) {
  std::string where = context();
  emit(out, codes::kIgnoredConstruct, Severity::kWarning,
       "<" + node.name() + "> inside " + where +
           " is not part of the supported dialect and is silently ignored",
       std::move(where), node.line(), node.column());
}

bool local_is(const xml::Node& n, std::string_view name) {
  return n.local_name() == name;
}

template <typename ContextFn>
void scan_element_decl(const xml::Node& elem, const ContextFn& context,
                       std::vector<Diagnostic>& out) {
  for (const auto& child : elem.children()) {
    if (!child->is_element()) continue;
    // Inline type definitions and facets are not supported; only
    // annotations are read.
    if (!local_is(*child, "annotation")) {
      note_ignored(out, *child, context);
    }
  }
}

void scan_type_body(const xml::Node& body, const std::string& type_name,
                    std::vector<Diagnostic>& out) {
  auto type_context = [&] { return "complexType '" + type_name + "'"; };
  for (const auto& child : body.children()) {
    if (!child->is_element()) continue;
    if (local_is(*child, "element")) {
      scan_element_decl(
          *child,
          [&] {
            return type_context() + " element '" +
                   std::string(child->attribute_or("name", "?")) + "'";
          },
          out);
    } else if (local_is(*child, "sequence")) {
      scan_type_body(*child, type_name, out);
    } else if (!local_is(*child, "annotation")) {
      // xsd:attribute, xsd:choice, xsd:all, anything else.
      note_ignored(out, *child, type_context);
    }
  }
}

}  // namespace

std::vector<Diagnostic> audit_schema(const SchemaDocument& doc) {
  std::vector<Diagnostic> out;
  for (std::size_t i = 0; i < doc.types.size(); ++i) {
    audit_type(doc, i, out);
  }
  return out;
}

std::vector<Diagnostic> audit_schema_xml(const xml::Document& doc) {
  std::vector<Diagnostic> out;
  if (!doc.root) return out;
  const xml::Node& root = *doc.root;
  if (root.local_name() != "schema") return out;  // read_schema rejects it

  for (const auto& child : root.children()) {
    if (!child->is_element()) continue;
    if (local_is(*child, "complexType")) {
      std::string name(child->attribute_or("name", "?"));
      scan_type_body(*child, name, out);
    } else if (local_is(*child, "simpleType") ||
               local_is(*child, "annotation")) {
      // Fully handled by the reader.
    } else {
      // xsd:import, xsd:include, xsd:redefine, top-level xsd:element, ...
      note_ignored(out, *child, [] { return std::string("the schema root"); });
    }
  }
  return out;
}

}  // namespace omf::analysis
