#include "analysis/lint.hpp"

#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/audit_format.hpp"
#include "analysis/audit_plan.hpp"
#include "analysis/audit_schema.hpp"
#include "arch/profile.hpp"
#include "pbio/convert.hpp"
#include "pbio/format.hpp"
#include "schema/reader.hpp"
#include "util/strings.hpp"
#include "xml/parser.hpp"

namespace omf::analysis {

namespace {

using schema::Occurs;
using schema::SchemaElement;
using schema::SchemaType;
using schema::XsdPrimitive;

void emit(std::vector<Diagnostic>& out, const char* code, Severity severity,
          std::string message, std::size_t line = 0, std::size_t column = 0) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.line = line;
  d.column = column;
  out.push_back(std::move(d));
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

// --- Textual descriptor files (*.fmt) --------------------------------------

/// Runs the plan auditor over every `convert` directive. Each pair is
/// audited twice — once with the production plan options (run fusion and
/// SIMD kernel selection on) and once with PlanOptions::per_field() — and
/// the two diagnostic sets are compared as multisets of (code, path).
/// Fusion is a pure execution-strategy change, so any divergence means the
/// analyzer (not the metadata) is broken: that invariant violation is
/// reported as OMF211. The fused plan's diagnostics are then appended,
/// pinned to the directive's line.
void audit_convert_directives(const std::vector<FormatDescriptor>& set,
                              const std::vector<FmtFile::Convert>& requests,
                              std::vector<Diagnostic>& diags) {
  // Lay the descriptors out in a scratch registry. The format audit has
  // already passed clean, so registration is expected to succeed; any
  // residual rejection is still reported rather than swallowed.
  pbio::FormatRegistry scratch;
  for (const FormatDescriptor& fmt : set) {
    std::vector<pbio::IOField> fields;
    fields.reserve(fmt.fields.size());
    for (const FieldDescriptor& f : fmt.fields) {
      fields.emplace_back(f.name, f.type, f.size, f.offset, f.default_text);
    }
    try {
      scratch.register_format(fmt.name, fields, fmt.struct_size, fmt.profile);
    } catch (const Error& e) {
      emit(diags, codes::kInputParse, Severity::kError,
           "format '" + fmt.name + "' rejected by the registry: " + e.what(),
           fmt.line);
      return;
    }
  }

  auto descriptor_named = [&](const std::string& name) -> const
      FormatDescriptor* {
    for (auto it = set.rbegin(); it != set.rend(); ++it) {
      if (it->name == name) return &*it;
    }
    return nullptr;
  };

  for (const FmtFile::Convert& req : requests) {
    const FormatDescriptor* wd = descriptor_named(req.wire);
    const FormatDescriptor* nd = descriptor_named(req.native);
    if (wd == nullptr || nd == nullptr) {
      emit(diags, codes::kInputParse, Severity::kError,
           "'convert' references unknown format '" +
               (wd == nullptr ? req.wire : req.native) + "'",
           req.line);
      continue;
    }
    pbio::FormatHandle wire = scratch.by_name_profile(req.wire, wd->profile);
    pbio::FormatHandle native =
        scratch.by_name_profile(req.native, nd->profile);

    std::vector<Diagnostic> fused;
    std::vector<Diagnostic> per_field;
    try {
      fused = audit_plan(*pbio::ConversionPlan::build(wire, native,
                                                      pbio::PlanOptions{}));
      per_field = audit_plan(*pbio::ConversionPlan::build(
          wire, native, pbio::PlanOptions::per_field()));
    } catch (const Error& e) {
      emit(diags, codes::kInputParse, Severity::kError,
           "conversion plan '" + req.wire + "' -> '" + req.native +
               "' failed to compile: " + e.what(),
           req.line);
      continue;
    }

    auto keys = [](const std::vector<Diagnostic>& ds) {
      std::multiset<std::string> out;
      for (const Diagnostic& d : ds) out.insert(d.code + " " + d.path);
      return out;
    };
    if (keys(fused) != keys(per_field)) {
      emit(diags, codes::kFusedAuditDivergence, Severity::kError,
           "plan '" + req.wire + "' -> '" + req.native +
               "' audits differently with run fusion on (" +
               std::to_string(fused.size()) + " findings) vs per-field (" +
               std::to_string(per_field.size()) +
               "); fusion must never change audit results",
           req.line);
    }
    for (Diagnostic& d : fused) {
      if (d.line == 0) d.line = req.line;
      diags.push_back(std::move(d));
    }
  }
}

std::vector<Diagnostic> lint_fmt_text(std::string_view content) {
  FmtFile parsed = parse_fmt_text(content);
  std::vector<Diagnostic> diags = std::move(parsed.diagnostics);

  std::vector<Diagnostic> audits = audit_formats(parsed.formats);
  diags.insert(diags.end(), std::make_move_iterator(audits.begin()),
               std::make_move_iterator(audits.end()));
  // Plan audits need registrable metadata; skip them when the descriptors
  // themselves are already broken.
  if (!parsed.converts.empty() && !has_errors(diags)) {
    audit_convert_directives(parsed.formats, parsed.converts, diags);
  }
  return diags;
}

}  // namespace

FmtFile parse_fmt_text(std::string_view content) {
  FmtFile out;
  std::vector<Diagnostic>& diags = out.diagnostics;
  std::vector<FormatDescriptor>& set = out.formats;
  std::vector<FmtFile::Convert>& requests = out.converts;
  FormatDescriptor* cur = nullptr;

  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    std::size_t eol = content.find('\n', pos);
    std::string_view line = content.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? content.size() + 1 : eol + 1;
    ++lineno;

    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> tok = tokenize(line);

    if (tok[0] == "format") {
      if (tok.size() < 2) {
        emit(diags, codes::kInputParse, Severity::kError,
             "'format' line needs a name", lineno);
        cur = nullptr;
        continue;
      }
      FormatDescriptor fmt;
      fmt.name = std::string(tok[1]);
      fmt.profile = arch::native();
      fmt.line = lineno;
      bool have_size = false;
      bool ok = true;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        if (starts_with(tok[i], "profile=")) {
          try {
            fmt.profile = arch::profile_by_name(
                std::string(tok[i].substr(std::strlen("profile="))));
          } catch (const Error& e) {
            emit(diags, codes::kInputParse, Severity::kError, e.what(),
                 lineno);
            ok = false;
          }
        } else if (starts_with(tok[i], "size=")) {
          auto n = parse_uint(tok[i].substr(std::strlen("size=")));
          if (!n) {
            emit(diags, codes::kInputParse, Severity::kError,
                 "unparseable size in '" + std::string(tok[i]) + "'", lineno);
            ok = false;
          } else {
            fmt.struct_size = *n;
            have_size = true;
          }
        } else {
          emit(diags, codes::kInputParse, Severity::kError,
               "unknown attribute '" + std::string(tok[i]) +
                   "' on format line",
               lineno);
          ok = false;
        }
      }
      if (!have_size) {
        emit(diags, codes::kInputParse, Severity::kError,
             "format '" + fmt.name + "' must declare size=<struct-bytes>",
             lineno);
        ok = false;
      }
      if (ok) {
        set.push_back(std::move(fmt));
        cur = &set.back();
      } else {
        cur = nullptr;
      }
      continue;
    }

    if (tok[0] == "field") {
      if (cur == nullptr) {
        emit(diags, codes::kInputParse, Severity::kError,
             "'field' line before any valid 'format' line", lineno);
        continue;
      }
      if (tok.size() < 5) {
        emit(diags, codes::kInputParse, Severity::kError,
             "'field' needs: field <name> <type> <size> <offset>", lineno);
        continue;
      }
      FieldDescriptor f;
      f.name = std::string(tok[1]);
      f.type = std::string(tok[2]);
      f.line = lineno;
      auto size = parse_uint(tok[3]);
      auto offset = parse_uint(tok[4]);
      if (!size || !offset) {
        emit(diags, codes::kInputParse, Severity::kError,
             "unparseable size/offset on field '" + f.name + "'", lineno);
        continue;
      }
      f.size = *size;
      f.offset = *offset;
      for (std::size_t i = 5; i < tok.size(); ++i) {
        if (starts_with(tok[i], "default=")) {
          f.default_text =
              std::string(tok[i].substr(std::strlen("default=")));
        } else {
          emit(diags, codes::kInputParse, Severity::kError,
               "unknown attribute '" + std::string(tok[i]) +
                   "' on field line",
               lineno);
        }
      }
      cur->fields.push_back(std::move(f));
      continue;
    }

    if (tok[0] == "convert") {
      if (tok.size() != 3) {
        emit(diags, codes::kInputParse, Severity::kError,
             "'convert' needs: convert <wire-format> <native-format>",
             lineno);
        continue;
      }
      requests.push_back(
          {std::string(tok[1]), std::string(tok[2]), lineno});
      continue;
    }

    emit(diags, codes::kInputParse, Severity::kError,
         "unrecognized directive '" + std::string(tok[0]) + "'", lineno);
  }

  return out;
}

namespace {

// --- XML Schema pipeline ----------------------------------------------------

/// Mirrors core::Xml2Wire's primitive mapping. Duplicated (about a dozen
/// lines) because analysis sits *below* core in the layering: core calls
/// into the auditors, so the auditors cannot link against core.
void map_primitive(XsdPrimitive prim, const arch::Profile& profile,
                   std::string& base, std::size_t& size) {
  switch (prim) {
    case XsdPrimitive::kString: base = "string"; size = 0; return;
    case XsdPrimitive::kInt: base = "integer"; size = profile.int_size; return;
    case XsdPrimitive::kLong:
      base = "integer"; size = profile.long_size; return;
    case XsdPrimitive::kShort: base = "integer"; size = 2; return;
    case XsdPrimitive::kByte: base = "integer"; size = 1; return;
    case XsdPrimitive::kUnsignedInt:
      base = "unsigned"; size = profile.int_size; return;
    case XsdPrimitive::kUnsignedLong:
      base = "unsigned"; size = profile.long_size; return;
    case XsdPrimitive::kUnsignedShort: base = "unsigned"; size = 2; return;
    case XsdPrimitive::kUnsignedByte: base = "unsigned"; size = 1; return;
    case XsdPrimitive::kFloat: base = "float"; size = 4; return;
    case XsdPrimitive::kDouble: base = "float"; size = 8; return;
    case XsdPrimitive::kBoolean: base = "unsigned"; size = 1; return;
    case XsdPrimitive::kChar: base = "char"; size = 1; return;
  }
  base = "integer";
  size = profile.int_size;
}

/// Lays the schema's types out for `profile` in a scratch registry — the
/// same field specs xml2wire would register — and runs the format auditor
/// over the result. Only *errors* are kept: warnings on schema inputs come
/// from the schema-level auditors (the synthesized trailing count field of
/// an unbounded array would otherwise warn OMF110 by construction).
void audit_schema_layout(const schema::SchemaDocument& doc,
                         const arch::Profile& profile,
                         std::vector<Diagnostic>& diags) {
  pbio::FormatRegistry scratch;
  for (const SchemaType& type : doc.types) {
    std::vector<pbio::FieldSpec> specs;
    specs.reserve(type.elements.size() + 2);
    for (const SchemaElement& elem : type.elements) {
      pbio::FieldSpec spec;
      spec.name = elem.name;
      spec.default_text = elem.default_value;
      std::string base;
      if (elem.is_primitive) {
        map_primitive(elem.primitive, profile, base, spec.element_size);
      } else {
        base = elem.user_type;
      }
      bool synthesize_count = false;
      std::string count_name;
      switch (elem.occurs.kind) {
        case Occurs::Kind::kScalar:
          spec.type = base;
          break;
        case Occurs::Kind::kStatic:
          spec.type = base + "[" + std::to_string(elem.occurs.count) + "]";
          break;
        case Occurs::Kind::kDynamicSized:
          spec.type = base + "[" + elem.occurs.size_field + "]";
          break;
        case Occurs::Kind::kDynamicUnbounded:
          count_name = elem.name + "_count";
          spec.type = base + "[" + count_name + "]";
          synthesize_count = type.element_named(count_name) == nullptr;
          break;
      }
      specs.push_back(std::move(spec));
      if (synthesize_count) {
        pbio::FieldSpec count;
        count.name = count_name;
        count.type = "integer";
        count.element_size = profile.int_size;
        specs.push_back(std::move(count));
      }
    }
    try {
      scratch.register_computed(type.name, specs, profile);
    } catch (const Error& e) {
      emit(diags, codes::kSchemaCompile, Severity::kError,
           std::string("layout for profile '") + profile.name +
               "' failed: " + e.what(),
           type.line, type.column);
      return;
    }
  }

  std::vector<FormatDescriptor> set;
  for (const pbio::FormatHandle& h : scratch.all()) {
    set.push_back(describe(*h));
  }
  for (Diagnostic& d : audit_formats(set)) {
    if (d.severity == Severity::kError) diags.push_back(std::move(d));
  }
}

std::vector<Diagnostic> lint_schema_text(std::string_view content) {
  std::vector<Diagnostic> diags;
  xml::Document doc;
  try {
    doc = xml::parse(content);
  } catch (const ParseError& e) {
    emit(diags, codes::kInputParse, Severity::kError, e.what(), e.line(),
         e.column());
    return diags;
  }

  schema::SchemaDocument model;
  try {
    model = schema::read_schema(doc);
  } catch (const Error& e) {
    emit(diags, codes::kSchemaCompile, Severity::kError, e.what());
    return diags;
  }

  diags = audit_schema(model);
  std::vector<Diagnostic> dom = audit_schema_xml(doc);
  diags.insert(diags.end(), std::make_move_iterator(dom.begin()),
               std::make_move_iterator(dom.end()));

  if (!has_errors(diags)) {
    audit_schema_layout(model, arch::native(), diags);
  }
  return diags;
}

}  // namespace

LintResult lint_buffer(const std::string& name, std::string_view content) {
  LintResult result;
  result.file = name;

  if (content.size() >= 4 && std::memcmp(content.data(), "OBMF", 4) == 0) {
    try {
      result.diagnostics = audit_bundle(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(content.data()),
          content.size()));
    } catch (const Error& e) {
      emit(result.diagnostics, codes::kInputParse, Severity::kError,
           e.what());
    }
  } else if (ends_with(name, ".fmt")) {
    result.diagnostics = lint_fmt_text(content);
  } else {
    result.diagnostics = lint_schema_text(content);
  }

  for (Diagnostic& d : result.diagnostics) {
    if (d.file.empty()) d.file = name;
    (d.severity == Severity::kError ? result.errors : result.warnings) += 1;
  }
  return result;
}

LintResult lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LintResult result;
    result.file = path;
    emit(result.diagnostics, codes::kInputParse, Severity::kError,
         "cannot open file");
    result.diagnostics.back().file = path;
    result.errors = 1;
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_buffer(path, buf.str());
}

}  // namespace omf::analysis
