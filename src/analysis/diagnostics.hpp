// Diagnostic model of the metadata static analyzer (omf-lint).
//
// The system trusts three metadata artifacts: format descriptors, compiled
// conversion plans, and XML Schema documents. Each auditor
// (audit_format/audit_plan/audit_schema) reports findings as Diagnostics —
// a stable machine-readable code, a severity, a human message, and the most
// precise location available (field path, source file:line:column). Codes
// are stable across releases so CI gates and tests can assert them.
//
// Code ranges:
//   OMF0xx  input/compile failures (file unreadable, schema rejected)
//   OMF1xx  format-descriptor audits (overlap, bounds, cycles, count fields)
//   OMF2xx  conversion-plan audits (lossiness lattice, bounds proof)
//   OMF3xx  XML Schema audits (xml2wire-time diagnostics)
//   OMF4xx  plan bounds certification (omf-verify interval interpreter)
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace omf::analysis {

enum class Severity : std::uint8_t {
  kWarning,  ///< suspicious but decodable; policy may log
  kError,    ///< unsafe or meaningless metadata; policy may reject
};

struct Diagnostic {
  std::string code;     ///< stable "OMFnnn" identifier
  Severity severity = Severity::kError;
  std::string message;  ///< human-readable, self-contained
  std::string path;     ///< dotted field path ("Flight.eta" ), may be empty
  std::string file;     ///< source file when auditing files, may be empty
  std::size_t line = 0;    ///< 1-based; 0 = unknown
  std::size_t column = 0;  ///< 1-based; 0 = unknown
};

/// GCC-style one-line rendering:
/// "file:line:col: error[OMF102]: message [path]".
std::string render(const Diagnostic& d);

/// One diagnostic as a JSON object — {"file":..., "line":..., "column":...,
/// "code":..., "severity":"error"|"warning", "message":..., "path":...}.
/// Zero line/column and empty file/path are omitted. The machine-readable
/// emitter shared by `omf-lint --json` and `omf-verify --json`.
std::string render_json(const Diagnostic& d);

/// A whole report as a JSON array (one render_json object per diagnostic,
/// newline-separated inside `[...]`) — what the CLI tools print per run.
std::string render_json(std::span<const Diagnostic> diagnostics);

/// True if any diagnostic has Severity::kError.
bool has_errors(const std::vector<Diagnostic>& diagnostics);

/// The registry of every code the analyzer can emit, for `omf-lint --codes`
/// and the README table.
struct CodeInfo {
  const char* code;
  Severity severity;
  const char* summary;
  /// A concrete instance of the finding — the metadata shape (or plan op)
  /// that triggers it. Rendered in docs/DIAGNOSTICS.md.
  const char* example;
};
std::span<const CodeInfo> diagnostic_codes();

/// docs/DIAGNOSTICS.md, generated from diagnostic_codes(): one table row per
/// code (id, severity, meaning, example). A tier-1 test asserts the checked-
/// in file matches this string byte for byte; `omf-lint --codes-md`
/// regenerates it.
std::string diagnostics_markdown();

// --- Stable code constants --------------------------------------------------

namespace codes {
// Input / compile failures.
inline constexpr const char* kInputParse = "OMF001";
inline constexpr const char* kSchemaCompile = "OMF002";
// Format descriptors.
inline constexpr const char* kBadTypeString = "OMF100";
inline constexpr const char* kDuplicateField = "OMF101";
inline constexpr const char* kFieldOverlap = "OMF102";
inline constexpr const char* kFieldOutsideStruct = "OMF103";
inline constexpr const char* kOffsetOverflow = "OMF104";
inline constexpr const char* kMisalignedField = "OMF105";
inline constexpr const char* kUnpaddedStruct = "OMF106";
inline constexpr const char* kUnknownNestedFormat = "OMF107";
inline constexpr const char* kNestedCycle = "OMF108";
inline constexpr const char* kCountFieldMissing = "OMF109";
inline constexpr const char* kCountFieldAfterData = "OMF110";
inline constexpr const char* kCountFieldNotInteger = "OMF111";
inline constexpr const char* kCountFieldTooWide = "OMF112";
inline constexpr const char* kInvalidScalarWidth = "OMF113";
inline constexpr const char* kEmptyFormat = "OMF114";
// Conversion plans.
inline constexpr const char* kLossyIntNarrowing = "OMF201";
inline constexpr const char* kLossyFloatNarrowing = "OMF202";
inline constexpr const char* kSignChange = "OMF203";
inline constexpr const char* kArrayTruncation = "OMF204";
inline constexpr const char* kDroppedField = "OMF205";
inline constexpr const char* kPlanOutOfBounds = "OMF210";
inline constexpr const char* kFusedAuditDivergence = "OMF211";
// XML Schema.
inline constexpr const char* kCountElementAfterArray = "OMF301";
inline constexpr const char* kCountNameCollision = "OMF302";
inline constexpr const char* kCountNameReused = "OMF303";
inline constexpr const char* kSharedCountElement = "OMF304";
inline constexpr const char* kForwardTypeReference = "OMF305";
inline constexpr const char* kExternalTypeReference = "OMF306";
inline constexpr const char* kIgnoredConstruct = "OMF307";
inline constexpr const char* kUnsupportedArrayElement = "OMF309";
// Plan bounds certification (analysis/verify_plan.cpp).
inline constexpr const char* kVerifyReadOutOfBounds = "OMF400";
inline constexpr const char* kVerifyWriteOutOfBounds = "OMF401";
inline constexpr const char* kVerifyWriteOverlap = "OMF402";
inline constexpr const char* kVerifyBadWidth = "OMF403";
inline constexpr const char* kVerifyUnprovableGuard = "OMF404";
}  // namespace codes

// --- Policy -----------------------------------------------------------------

/// What a registration path does with audit findings. The production
/// default is the paper-safe posture: refuse metadata the analyzer proves
/// unsafe, log anything merely suspicious.
struct AuditPolicy {
  bool enabled = true;          ///< run the audit at all
  bool reject_on_error = true;  ///< throw AuditError when errors are found
  bool log_warnings = true;     ///< OMF_LOG_WARN each warning diagnostic
};

/// Structured rejection: carries every diagnostic, not just a message, so
/// gateways and services can report (or transmit) exactly what was wrong
/// with the metadata they refused.
class AuditError : public Error {
public:
  AuditError(std::string subject, std::vector<Diagnostic> diagnostics);

  const std::string& subject() const noexcept { return subject_; }
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

private:
  std::string subject_;
  std::vector<Diagnostic> diagnostics_;
};

/// Applies `policy` to audit findings for `subject` (a format or document
/// name): logs warnings, throws AuditError if any error diagnostic is
/// present and the policy rejects. No-op when the policy is disabled.
void enforce(const std::string& subject,
             const std::vector<Diagnostic>& diagnostics,
             const AuditPolicy& policy);

}  // namespace omf::analysis
